"""Benchmark: Sec. 6.6(2) — scalability with network size.

Paper shape: PowerPunch-PG's latency reduction vs ConvOpt-PG at 0.01
flits/node/cycle grows with mesh size (43.4% / 54.9% / 69.1% for
4x4 / 8x8 / 16x16): conventional power-gating accumulates wakeup
latency per hop while punch signals keep it hidden.
"""

from repro.experiments.scalability import run_scalability

SIZES = (4, 8)


def run():
    return run_scalability(sizes=SIZES, load=0.01, measurement=2500, verbose=False)


def test_bench_scalability(once):
    results = once(run)
    per_size = {}
    for size, scheme, record in results:
        per_size.setdefault(size, {})[scheme] = record
    reductions = {}
    for size, per in per_size.items():
        conv = per["ConvOpt-PG"].avg_total_latency
        ppg = per["PowerPunch-PG"].avg_total_latency
        assert ppg < conv, size
        reductions[size] = 1 - ppg / conv
    # Substantial reduction at every size (paper: >= 43.4%).
    for size, reduction in reductions.items():
        assert reduction > 0.30, (size, reduction)
    # The absolute ConvOpt-PG penalty (cumulative wakeup latency)
    # grows with mesh size.
    conv_penalty = {
        size: per["ConvOpt-PG"].avg_total_latency - per["No-PG"].avg_total_latency
        for size, per in per_size.items()
    }
    assert conv_penalty[8] > conv_penalty[4]
