"""Microbenchmarks for the per-cycle simulation kernel.

Complements ``python -m repro.bench`` (the ``BENCH_kernel.json`` trend
runner): the runner sweeps the full scheme x rate x mesh matrix and
reports cycles/sec, while these microbenchmarks isolate the individual
hot paths under pytest-benchmark so per-path timings stay comparable
run to run:

* active-set vs naive kernel on the paper's low-load regime
  (8x8, 0.02 flits/node/cycle — PAPER Sec. 5),
* the controller-FSM parking layer alone (ConvOptPG: deadlines and
  wakeups, no punch fabric),
* the punch-fabric memoization layer alone (PowerPunchSignal:
  punches on top of an always-on mesh).

Every replay consumes a pre-recorded injection trace, so the timed
region is pure kernel work — no RNG, no traffic-pattern math.  Run via
``python -m pytest benchmarks/bench_kernel.py``; the tier-1 suite
(``testpaths = ["tests"]``) does not collect this file.
"""

from repro.bench import bench_config, record_trace, replay
from repro.noc import NoCConfig

CYCLES = 2000
RATE = 0.02
SEED = 7

_TRACES = {}


def _trace(width, height):
    """Record (once per session) the shared low-load trace for a mesh."""
    key = (width, height)
    if key not in _TRACES:
        _TRACES[key] = record_trace(
            NoCConfig(width=width, height=height), "uniform_random", RATE, SEED, CYCLES
        )
    return _TRACES[key]


def _replay(kernel, scheme, width=8, height=8):
    config = NoCConfig(width=width, height=height, kernel=kernel)
    net, _elapsed = replay(config, scheme, _trace(width, height), CYCLES)
    return net


# -- headline cell: both kernels on the paper's low-load regime --------


def test_kernel_active_8x8_low_load(once):
    net = once(_replay, "active", "PowerPunchPG")
    assert net.stats.delivered > 0


def test_kernel_naive_8x8_low_load(once):
    net = once(_replay, "naive", "PowerPunchPG")
    assert net.stats.delivered > 0


def test_kernel_active_16x16_low_load(once):
    net = once(_replay, "active", "PowerPunchPG", width=16, height=16)
    assert net.stats.delivered > 0


# -- layer isolation ----------------------------------------------------


def test_kernel_active_controller_parking(once):
    """FSM parking only: ConvOptPG has controllers but no punch fabric."""
    net = once(_replay, "active", "ConvOptPG")
    assert net.policy.total_off_cycles() > 0


def test_kernel_active_punch_memoization(once):
    """Punch memoization only: PowerPunchSignal never gates routers."""
    net = once(_replay, "active", "PowerPunchSignal")
    assert net.stats.delivered > 0


# -- exactness + regression guard --------------------------------------


def test_kernel_cell_exact_and_not_slower(once):
    """The headline cell stays cycle-exact and the active kernel does
    not regress below the naive kernel.

    ``bench_config`` raises on any stats-fingerprint divergence between
    the kernels, so timing it doubles as the end-to-end exactness
    check.  The speedup floor is deliberately loose (machine noise on
    shared CI runners easily swings 10-20%); the committed
    ``BENCH_kernel.json`` baseline tracks the real trend.
    """
    cell = once(bench_config, "PowerPunchPG", 8, 8, RATE, CYCLES, 1, SEED)
    assert cell["speedup"] > 0.8, cell
