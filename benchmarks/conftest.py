"""Shared configuration for the per-figure benchmark harness.

Each benchmark regenerates a scaled-down version of one paper artifact
(table or figure) inside ``benchmark.pedantic(..., rounds=1)`` — the
simulations are deterministic and heavy, so a single round is measured
— and then asserts the paper's qualitative shape on the result.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
