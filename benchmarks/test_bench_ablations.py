"""Benchmark: ablations over Power Punch design choices (DESIGN.md S2+).

Asserts the design arguments the paper makes in prose:

* the punch horizon must reach ceil(Twakeup/Trouter) hops before
  transit wakeup waits vanish;
* slack 1 and slack 2 each remove a further chunk of injection-side
  wakeup wait;
* the punch forewarning filter reduces wake thrash (fewer wake events
  for comparable gated-off time).
"""

from repro.experiments.ablations import (
    forewarning_ablation,
    punch_hops_sweep,
    slack_decomposition,
)

MEASURE = 2500


def test_bench_punch_hops(once):
    results = dict(once(punch_hops_sweep, measurement=MEASURE))
    # Twakeup=8 on a 3-stage router needs ceil(8/3)=3 hops: the wait
    # must drop sharply from 1-hop to 3-hop horizons...
    assert results[3]["wait"] < 0.6 * results[1]["wait"]
    assert results[2]["wait"] <= results[1]["wait"]
    # ...while 4 hops buys little more latency benefit.
    assert results[4]["latency"] <= results[3]["latency"] * 1.05


def test_bench_slack_decomposition(once):
    results = once(slack_decomposition, measurement=MEASURE)
    waits = [res["wait"] for _name, res in results]
    # Each slack strictly reduces wakeup-wait cycles.
    assert waits[0] > waits[1] > waits[2]
    # Slack 1+2 together hide nearly all of it (paper: near
    # non-blocking).
    assert waits[2] < 0.4 * waits[0]


def test_bench_forewarning_filter(once):
    results = dict(once(forewarning_ablation, measurement=MEASURE))
    on = results["forewarning on"]
    off = results["forewarning off"]
    # Without the filter the scheme wakes routers it shouldn't have
    # slept; with it, fewer wake events per gated-off cycle.
    assert on["wake_events"] <= off["wake_events"] * 1.10
    assert on["latency"] <= off["latency"] * 1.05
