"""Benchmark: Figures 9 and 10 — blocking statistics under PARSEC.

Paper shape: blocked routers/packet drop from ~4.2 (ConvOpt-PG) to ~1
(both Power Punch variants), while wakeup-wait cycles show the real
NI-slack win: PowerPunch-PG waits much less than PowerPunch-Signal
even though their blocked-router counts are similar.
"""

from repro.experiments.parsec_suite import run_suite

BENCHMARKS = ["bodytrack", "x264"]
PG = ["ConvOpt-PG", "PowerPunch-Signal", "PowerPunch-PG"]


def run():
    return run_suite(benchmarks=BENCHMARKS, instructions=800, verbose=False)


def _avg(records, scheme, field):
    vals = [getattr(r, field) for r in records if r.scheme == scheme]
    return sum(vals) / len(vals)


def test_bench_fig9_blocked_routers(once):
    records = once(run)
    conv = _avg(records, "ConvOpt-PG", "avg_blocked_routers")
    pps = _avg(records, "PowerPunch-Signal", "avg_blocked_routers")
    ppg = _avg(records, "PowerPunch-PG", "avg_blocked_routers")
    # Paper: 4.21 -> 1.09 -> 0.96.
    assert conv > 3.0
    assert pps < conv / 2.5
    assert ppg <= pps + 0.05
    assert pps < 2.0


def test_bench_fig10_wakeup_wait(once):
    records = once(run)
    conv = _avg(records, "ConvOpt-PG", "avg_wakeup_wait")
    pps = _avg(records, "PowerPunch-Signal", "avg_wakeup_wait")
    ppg = _avg(records, "PowerPunch-PG", "avg_wakeup_wait")
    # Paper: the NI slack buys a large wait reduction (36.2%) even
    # though Fig. 9 barely moves.
    assert conv > pps > ppg
    assert ppg < 0.7 * pps
    assert conv > 4 * pps / 2
