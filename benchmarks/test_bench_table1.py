"""Benchmark: regenerate Table 1 / Fig. 5 punch-signal encodings."""

from repro.core import PunchEncodingAnalysis
from repro.noc import Direction, MeshTopology


def full_encoding_analysis():
    analysis = PunchEncodingAnalysis(MeshTopology(8, 8), hops=3)
    xpos = analysis.analyze_link(27, Direction.XPOS)
    ypos = analysis.analyze_link(27, Direction.YPOS)
    table = analysis.encoding_table(27, Direction.XPOS)
    return xpos, ypos, table


def test_bench_table1(once):
    xpos, ypos, table = once(full_encoding_analysis)
    # Paper Table 1: exactly 22 distinct targeted-router sets.
    assert len(xpos.distinct_sets) == 22
    assert len(table) == 22
    # Paper Fig. 5: 5-bit X punch signals, 2-bit Y punch signals.
    assert xpos.width_bits == 5
    assert ypos.width_bits == 2
    # Paper Sec. 4.1 step 3: only R25/R26/R27 source this link.
    assert xpos.sources == (25, 26, 27)


def test_bench_table1_chip_wide_widths(once):
    analysis = PunchEncodingAnalysis(MeshTopology(8, 8), hops=3)

    def chip_wide():
        return analysis.max_width("x"), analysis.max_width("y")

    x_bits, y_bits = once(chip_wide)
    assert (x_bits, y_bits) == (5, 2)
