"""Benchmark: Figure 13 — wakeup latency / pipeline-depth sensitivity.

Paper shape: ConvOpt-PG pays 1.5x-2x latency at every design point;
PowerPunch-PG stays within a few percent except where the 3-hop punch
cannot cover the wakeup latency (Twakeup=10 on a 3-stage router, paper
9.2%) — that point must be the worst of the 3-stage set.
"""

from repro.experiments.fig13 import run_sensitivity

POINTS = [(3, 6), (3, 8), (3, 10)]


def run():
    return run_sensitivity(points=POINTS, measurement=2500, verbose=False)


def test_bench_fig13_sensitivity(once):
    results = once(run)
    per_point = {}
    for stages, twakeup, scheme, record in results:
        per_point.setdefault((stages, twakeup), {})[scheme] = record

    penalties = {}
    for point, per in per_point.items():
        base = per["No-PG"].avg_total_latency
        conv = per["ConvOpt-PG"].avg_total_latency
        ppg = per["PowerPunch-PG"].avg_total_latency
        assert conv > 1.3 * base, point  # paper: 1.5x-2x
        penalties[point] = ppg / base - 1.0

    # The uncovered point (Twakeup=10, Trouter=3) is the worst case.
    assert penalties[(3, 10)] == max(penalties.values())
    # The covered points stay within a few percent (paper: 2.4%-9.2%).
    assert penalties[(3, 6)] < 0.10
    assert penalties[(3, 8)] < 0.12
