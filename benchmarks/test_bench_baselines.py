"""Benchmark: Sec. 6.6(3) — Power Punch vs the NoRD-like detour baseline.

Paper shape: NoRD's detour-based penalty is several times Power
Punch's (paper: 9.3 vs 1.8 cycles on 64 nodes), while both save a
large static fraction.
"""

from repro.experiments.baselines_compare import run_comparison


def run():
    return dict(run_comparison(load=0.01, measurement=2500, verbose=False))


def test_bench_baselines_comparison(once):
    results = once(run)
    base = results["No-PG"]["latency"]
    pp_penalty = results["PowerPunch-PG"]["latency"] - base
    nord_penalty = results["NoRD-like"]["latency"] - base
    conv_penalty = results["ConvOpt-PG"]["latency"] - base
    # Power Punch ~non-blocking; detour and wakeup-wait baselines pay
    # multiple times more.
    assert pp_penalty < 3.0
    assert nord_penalty > 3 * max(pp_penalty, 0.5)
    assert conv_penalty > 3 * max(pp_penalty, 0.5)
    # Every scheme still delivers all measured traffic.
    delivered = {name: row["delivered"] for name, row in results.items()}
    assert min(delivered.values()) > 0.9 * delivered["No-PG"]
    # All power-gating schemes save static energy.
    for name in ("ConvOpt-PG", "PowerPunch-PG", "NoRD-like"):
        assert results[name]["net_static"] < 0.75 * results["No-PG"]["net_static"]
