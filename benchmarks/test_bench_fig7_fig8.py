"""Benchmark: Figures 7 and 8 — PARSEC latency and execution time.

Scaled-down regeneration (two benchmarks, reduced instruction quota).
The asserted shape, from the paper:

* latency: No-PG < PowerPunch-PG < PowerPunch-Signal << ConvOpt-PG
  (paper: +7.9% / +12.6% / +69.1% over No-PG);
* execution time: PowerPunch-PG within ~2% of No-PG (paper: +0.4%),
  ConvOpt-PG clearly worse.
"""

from repro.experiments.parsec_suite import run_suite

BENCHMARKS = ["blackscholes", "ferret"]


def run():
    return run_suite(benchmarks=BENCHMARKS, instructions=800, verbose=False)


def _by(records):
    table = {}
    for r in records:
        table.setdefault(r.workload, {})[r.scheme] = r
    return table


def test_bench_fig7_latency_ordering(once):
    table = _by(once(run))
    for bench, per in table.items():
        nopg = per["No-PG"].avg_total_latency
        ppg = per["PowerPunch-PG"].avg_total_latency
        pps = per["PowerPunch-Signal"].avg_total_latency
        conv = per["ConvOpt-PG"].avg_total_latency
        assert nopg <= ppg + 1e-9, bench
        assert ppg < conv, bench
        assert pps < conv, bench
        # ConvOpt-PG pays a large penalty; Power Punch stays close.
        assert conv > 1.2 * nopg, bench
        assert ppg < 1.15 * nopg, bench


def test_bench_fig8_execution_time(once):
    table = _by(once(run))
    for bench, per in table.items():
        base = per["No-PG"].execution_time
        assert per["PowerPunch-PG"].execution_time <= 1.03 * base, bench
        # >= because an almost-miss-free benchmark (blackscholes at a
        # short quota) can finish compute-bound under every scheme.
        assert (
            per["ConvOpt-PG"].execution_time
            >= per["PowerPunch-PG"].execution_time
        ), bench
    # At least one benchmark must show ConvOpt-PG's real penalty.
    assert any(
        per["ConvOpt-PG"].execution_time > 1.02 * per["No-PG"].execution_time
        for per in table.values()
    )
