"""Benchmark: Figure 12 — latency and static power across load.

Paper shape per traffic pattern: ConvOpt-PG shows the "power-gating
curve" (large latency penalty at low load); PowerPunch-PG is almost
identical to No-PG across the range; both PG schemes save most static
power at low load, converging toward No-PG as load rises.
"""

import pytest

from repro.experiments.fig12 import run_sweep

LOADS = [0.01, 0.05, 0.12]


def sweep(pattern):
    return run_sweep(pattern, LOADS, warmup=600, measurement=2500, verbose=False)


def _by_load(records):
    table = {}
    for r in records:
        load = float(r.workload.split("@")[1])
        table.setdefault(load, {})[r.scheme] = r
    return table


@pytest.mark.parametrize("pattern", ["uniform_random", "bit_complement", "transpose"])
def test_bench_fig12_pattern(pattern, once):
    table = _by_load(once(sweep, pattern))
    low = min(table)
    for load, per in table.items():
        nopg = per["No-PG"].avg_total_latency
        conv = per["ConvOpt-PG"].avg_total_latency
        ppg = per["PowerPunch-PG"].avg_total_latency
        # PowerPunch-PG tracks No-PG across the whole load range.
        assert ppg < 1.2 * nopg, (pattern, load)
        assert conv >= ppg, (pattern, load)
    # The ConvOpt gap is most dramatic at the lowest load.
    lowest = table[low]
    assert (
        lowest["ConvOpt-PG"].avg_total_latency
        > 1.3 * lowest["No-PG"].avg_total_latency
    )
    # Static power: PG schemes save the most at low load.
    low_static = lowest["PowerPunch-PG"].static_power_w()
    nopg_static = lowest["No-PG"].static_power_w()
    assert low_static < 0.7 * nopg_static
