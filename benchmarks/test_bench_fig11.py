"""Benchmark: Figure 11 — router energy breakdown.

Paper shape: all three PG schemes save a similar, large fraction of
router static energy; counting performance-induced runtime, Power
Punch saves at least as much total router energy as ConvOpt-PG
(paper: 50.3% / 52.9% / 54.1% savings vs No-PG).
"""

from repro.experiments.parsec_suite import run_suite

BENCHMARKS = ["blackscholes", "dedup"]


def run():
    return run_suite(benchmarks=BENCHMARKS, instructions=800, verbose=False)


def _table(records):
    table = {}
    for r in records:
        table.setdefault(r.workload, {})[r.scheme] = r
    return table


def test_bench_fig11_static_savings(once):
    table = _table(once(run))
    for bench, per in table.items():
        base_static = per["No-PG"].static_energy
        for scheme in ("ConvOpt-PG", "PowerPunch-Signal", "PowerPunch-PG"):
            net = per[scheme].net_static_energy
            saved = 1 - net / base_static
            # Every PG scheme must save a substantial static fraction
            # at PARSEC loads (paper: ~83%).
            assert saved > 0.35, (bench, scheme, saved)


def test_bench_fig11_powerpunch_total_energy_wins(once):
    table = _table(once(run))
    for bench, per in table.items():
        base = per["No-PG"].total_energy
        conv = per["ConvOpt-PG"].total_energy / base
        ppg = per["PowerPunch-PG"].total_energy / base
        # Paper Sec. 6.3: Power Punch is better in both performance and
        # energy than optimized conventional power-gating.
        assert ppg <= conv * 1.02, (bench, conv, ppg)
        assert ppg < 1.0, bench


def test_bench_fig11_breakdown_components_positive(once):
    records = once(run)
    for r in records:
        assert r.dynamic_energy > 0
        assert r.static_energy > 0
        if r.scheme == "No-PG":
            assert r.overhead_energy == 0
        else:
            assert r.overhead_energy > 0
