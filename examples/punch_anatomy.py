#!/usr/bin/env python3
"""Anatomy of a punch signal: encoding, propagation and wakeup timing.

A guided tour of the paper's Section 4 machinery using the library's
lower-level APIs:

1. the encoding analysis (which routers can talk on a link, how many
   distinct merged signals exist, how wide the wires must be);
2. a cycle-by-cycle trace of a punch signal racing a packet, showing
   the wakeup completing just before the packet arrives.
"""

from repro.core import PowerPunchSignal, PunchEncodingAnalysis
from repro.noc import Direction, MeshTopology, Network, NoCConfig, VirtualNetwork
from repro.noc.packet import control_packet


def encoding_tour():
    print("=" * 70)
    print("1. Encoding (paper Sec. 4.1, Table 1, Fig. 5)")
    print("=" * 70)
    topo = MeshTopology(8, 8)
    analysis = PunchEncodingAnalysis(topo, hops=3)
    enc = analysis.analyze_link(27, Direction.XPOS)
    print(f"Routers within 3 hops of R27: {len(topo.nodes_within(27, 3))} "
          "(the naive monitoring set, ~38% of the chip)")
    print(f"Sources that can actually use link R27->R28 under XY: {enc.sources}")
    for source in enc.sources:
        print(f"  R{source} may target {sorted(enc.targets_by_source[source])}")
    print(f"Distinct merged target sets: {len(enc.distinct_sets)} "
          f"-> {enc.width_bits}-bit punch wire (128-bit data links!)")
    y = analysis.analyze_link(27, Direction.YPOS)
    print(f"Y+ direction: only {len(y.distinct_sets)} sets "
          f"({[sorted(s) for s in y.distinct_sets]}) -> {y.width_bits} bits")


def propagation_tour():
    print()
    print("=" * 70)
    print("2. Punch signal racing a packet (paper Sec. 3 timing)")
    print("=" * 70)
    scheme = PowerPunchSignal(wakeup_latency=8, punch_hops=3)
    net = Network(NoCConfig(router_stages=3), scheme)
    for _ in range(30):  # let every router fall asleep
        net.step()
    asleep = sum(1 for c in scheme.controllers if c.is_off)
    print(f"After 30 idle cycles: {asleep}/64 routers gated off")

    packet = control_packet(0, 7, VirtualNetwork.REQUEST, net.cycle)
    net.inject(packet)
    states = {}
    for _ in range(80):
        net.step()
        for router in range(8):
            ctl = scheme.controllers[router]
            key = (
                "ACTIVE" if ctl.is_available else ("WAKING" if ctl.is_waking else "OFF")
            )
            if states.get(router) != key:
                states[router] = key
                print(f"  cycle {net.cycle:3d}: R{router} -> {key}")
        if packet.delivered_at is not None:
            break
    print(f"Packet 0->7 delivered at cycle {packet.delivered_at}; "
          f"wakeup wait = {packet.wakeup_wait_cycles} cycles, "
          f"blocked routers = {sorted(packet.blocked_routers)}")
    print("Only the injection-side routers ever stall the packet; everything")
    print("3+ hops downstream is awake by the time the packet arrives.")


if __name__ == "__main__":
    encoding_tour()
    propagation_tour()
