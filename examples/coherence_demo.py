#!/usr/bin/env python3
"""Watching the MESI protocol work over the simulated NoC.

Drives three cores through a classic sharing pattern on one cache
block and prints every state transition plus the NoC packets that
carried the protocol messages — a compact way to see the closed-loop
substrate (cores -> L1 -> directory -> memory) in action.
"""

from repro.core import NoPG
from repro.noc import NoCConfig
from repro.system import Chip, StreamProfile
from repro.system.messages import CoherenceMessage

BLOCK = (1 << 50) + 5


def make_chip():
    chip = Chip(
        NoCConfig(width=4, height=4),
        NoPG(),
        StreamProfile(),
        instructions_per_core=1,
        seed=1,
        warm_caches=False,
    )
    for core in chip.cores:
        core.done_at = 0  # park cores; we drive the L1s ourselves
    for l1 in chip.l1s:
        l1.on_complete = lambda b, c: None
    return chip


def watch(chip, nodes, label, cycles=250):
    before = {n: chip.l1s[n].state_of(BLOCK) for n in nodes}
    seen = set()
    for _ in range(cycles):
        chip.step()
        for n in nodes:
            state = chip.l1s[n].state_of(BLOCK)
            if state != before[n] and (n, state) not in seen:
                seen.add((n, state))
                print(f"    cycle {chip.network.cycle:4d}: core {n}: "
                      f"{before[n]} -> {state}")
                before[n] = state
    home = chip.directories[chip.home_of(BLOCK)]
    entry = home.entries.get(BLOCK)
    print(f"    directory @node {chip.home_of(BLOCK)}: owner={entry.owner} "
          f"sharers={sorted(entry.sharers)}")


def main():
    chip = make_chip()
    # Trace protocol packets on the NoC.
    chip.network.add_delivery_listener(
        lambda p, c: isinstance(p.payload, CoherenceMessage)
        and p.payload.block == BLOCK
        and print(f"      [NoC] {p.payload} {p.source}->{p.destination} "
                  f"({p.size_flits} flits, {p.network_latency} cyc)")
    )

    print("1) core 1 loads the block (cold: memory fetch, exclusive grant)")
    chip.l1s[1].access(BLOCK, False, chip.network.cycle)
    watch(chip, [1], "load")

    print("\n2) core 2 loads the same block (owner downgrades, both share)")
    chip.l1s[2].access(BLOCK, False, chip.network.cycle)
    watch(chip, [1, 2], "share")

    print("\n3) core 3 writes it (sharers invalidated, ownership granted)")
    chip.l1s[3].access(BLOCK, True, chip.network.cycle)
    watch(chip, [1, 2, 3], "write")

    print("\n4) core 1 reads again (dirty data forwarded from core 3)")
    chip.l1s[1].access(BLOCK, False, chip.network.cycle)
    watch(chip, [1, 3], "read-after-write")

    v = chip.l1s[1].cache.lookup(BLOCK, touch=False)
    print(f"\ncore 1 sees version {v.version} (exactly one write happened)")


if __name__ == "__main__":
    main()
