#!/usr/bin/env python3
"""Closed-loop CMP campaign: PARSEC-style workloads on a 64-core mesh.

Declares one campaign cell per (benchmark, scheme) and runs the matrix
through the campaign engine — the same declarative path the figure
scripts use — then reports the paper's Figures 7-10 metrics.  Pass
benchmark names to change the subset, and ``--workers``/``--cache-dir``
to fan out or reuse cached cells, e.g.:

    python examples/parsec_campaign.py canneal dedup x264 --workers 3
"""

from repro.campaign import Campaign, CellSpec, campaign_argparser, engine_options
from repro.system import PARSEC_BENCHMARKS


def main():
    parser = campaign_argparser(__doc__)
    parser.add_argument(
        "benchmarks", nargs="*", default=["blackscholes", "ferret", "canneal"]
    )
    parser.add_argument("--instructions", type=int, default=1200)
    args = parser.parse_args()
    for name in args.benchmarks:
        if name not in PARSEC_BENCHMARKS:
            raise SystemExit(f"unknown benchmark {name!r}: {PARSEC_BENCHMARKS}")

    schemes = ["No-PG", "ConvOpt-PG", "PowerPunch-PG"]
    campaign = Campaign(
        name="example-parsec",
        cells=tuple(
            CellSpec.parsec(bench, scheme, instructions=args.instructions, seed=1)
            for bench in args.benchmarks
            for scheme in schemes
        ),
    )
    records = campaign.run(**engine_options(args))

    print(
        f"{'benchmark':13s} {'scheme':15s} {'exec':>8s} {'exec pen':>9s} "
        f"{'latency':>8s} {'blocked':>8s} {'wait':>6s}"
    )
    by_bench = {}
    for record in records:
        by_bench.setdefault(record.workload, []).append(record)
    for benchmark in args.benchmarks:
        base_exec = by_bench[benchmark][0].execution_time
        for res in by_bench[benchmark]:
            print(
                f"{benchmark:13s} {res.scheme:15s} {res.execution_time:8d} "
                f"{res.execution_time / base_exec - 1:+9.1%} "
                f"{res.avg_total_latency:8.2f} {res.avg_blocked_routers:8.2f} "
                f"{res.avg_wakeup_wait:6.2f}"
            )
        print()
    print(
        "Expected shape (paper Figs. 7-10): ConvOpt-PG pays a large latency\n"
        "penalty and a visible execution-time penalty; PowerPunch-PG stays\n"
        "within ~1% of No-PG execution time."
    )


if __name__ == "__main__":
    main()
