#!/usr/bin/env python3
"""Closed-loop CMP campaign: PARSEC-style workloads on a 64-core mesh.

Runs the full-system model (cores + MESI coherence over the NoC) for a
subset of benchmarks under No-PG, ConvOpt-PG and PowerPunch-PG and
reports the paper's Figures 7-10 metrics.  Pass benchmark names as
arguments to change the subset, e.g.:

    python examples/parsec_campaign.py canneal dedup x264
"""

import sys

from repro.core import ConvOptPG, NoPG, PowerPunchPG
from repro.noc import NoCConfig
from repro.system import Chip, PARSEC_BENCHMARKS, get_profile


def run(benchmark, scheme, instructions=1200):
    chip = Chip(
        NoCConfig(),
        scheme,
        get_profile(benchmark),
        instructions_per_core=instructions,
        seed=1,
        benchmark=benchmark,
    )
    return chip.run(max_cycles=5_000_000)


def main():
    benchmarks = sys.argv[1:] or ["blackscholes", "ferret", "canneal"]
    for name in benchmarks:
        if name not in PARSEC_BENCHMARKS:
            raise SystemExit(f"unknown benchmark {name!r}: {PARSEC_BENCHMARKS}")
    print(
        f"{'benchmark':13s} {'scheme':15s} {'exec':>8s} {'exec pen':>9s} "
        f"{'latency':>8s} {'blocked':>8s} {'wait':>6s}"
    )
    for benchmark in benchmarks:
        base_exec = None
        for scheme in (NoPG(), ConvOptPG(), PowerPunchPG()):
            res = run(benchmark, scheme)
            if base_exec is None:
                base_exec = res.execution_time
            print(
                f"{benchmark:13s} {scheme.name:15s} {res.execution_time:8d} "
                f"{res.execution_time / base_exec - 1:+9.1%} "
                f"{res.avg_total_latency:8.2f} {res.avg_blocked_routers:8.2f} "
                f"{res.avg_wakeup_wait:6.2f}"
            )
        print()
    print(
        "Expected shape (paper Figs. 7-10): ConvOpt-PG pays a large latency\n"
        "penalty and a visible execution-time penalty; PowerPunch-PG stays\n"
        "within ~1% of No-PG execution time."
    )


if __name__ == "__main__":
    main()
