#!/usr/bin/env python3
"""Wakeup-latency sensitivity (the paper's Fig. 13) plus a 4-hop fix.

Shows that a 3-hop punch hides Twakeup up to 3 x Trouter cycles, what
happens when Twakeup exceeds that budget (Twakeup = 10 on a 3-stage
router), and how a 4-hop punch restores full hiding — the paper's
Sec. 6.5 observation.
"""

from repro.experiments.fig13 import run_sensitivity, report
from repro.noc import NoCConfig
from repro.experiments.common import run_synthetic


def main():
    results = run_sensitivity(measurement=3000)
    print()
    print(report(results))

    # The paper: "the performance penalty of Power Punch becomes
    # negligible when a 4-hop punch signal is used" for Twakeup=10.
    print()
    print("Twakeup = 10 on a 3-stage router, punch horizon sweep:")
    config = NoCConfig(router_stages=3)
    base = run_synthetic(
        "uniform_random", 0.006, "No-PG", config=config, measurement=3000, drain=False
    )
    for hops in (3, 4):
        rec = run_synthetic(
            "uniform_random",
            0.006,
            "PowerPunch-PG",
            config=config,
            measurement=3000,
            drain=False,
            wakeup_latency=10,
            punch_hops=hops,
        )
        print(
            f"  {hops}-hop punch: latency {rec.avg_total_latency:6.2f} "
            f"({rec.avg_total_latency / base.avg_total_latency - 1:+.1%} vs No-PG)"
        )


if __name__ == "__main__":
    main()
