#!/usr/bin/env python3
"""Quickstart: Power Punch vs conventional power-gating in 60 seconds.

Builds an 8x8 mesh NoC, runs uniform-random traffic under the four
schemes the paper evaluates, and prints the latency / blocking / energy
comparison.  This is the smallest end-to-end tour of the public API:

    NoCConfig -> Network(policy) -> SyntheticTraffic -> EnergyModel
"""

from repro.core import ConvOptPG, NoPG, PowerPunchPG, PowerPunchSignal
from repro.noc import Network, NoCConfig
from repro.power import EnergyModel
from repro.traffic import SyntheticTraffic, measure


def run_scheme(scheme, rate=0.01, seed=42):
    config = NoCConfig(width=8, height=8, router_stages=3)
    network = Network(config, scheme)
    traffic = SyntheticTraffic(network, "uniform_random", rate, seed=seed)
    measure(network, traffic, warmup=1000, measurement=5000)
    energy = EnergyModel().account(network)
    return network.stats, energy


def main():
    print(f"{'scheme':20s} {'latency':>8s} {'blocked/pkt':>12s} "
          f"{'wait/pkt':>9s} {'net static':>11s}")
    baseline_static = None
    for scheme in (NoPG(), ConvOptPG(), PowerPunchSignal(), PowerPunchPG()):
        stats, energy = run_scheme(scheme)
        if baseline_static is None:
            baseline_static = energy.static
        print(
            f"{scheme.name:20s} {stats.avg_total_latency:8.2f} "
            f"{stats.avg_blocked_routers:12.2f} {stats.avg_wakeup_wait:9.2f} "
            f"{energy.net_static / baseline_static:10.1%}"
        )
    print(
        "\nPower Punch keeps latency near No-PG while gating routers off "
        "as aggressively as conventional power-gating."
    )


if __name__ == "__main__":
    main()
