#!/usr/bin/env python3
"""Where does power-gating actually happen?  Spatial view.

Runs transpose traffic (spatially uneven by construction) under
PowerPunch-PG and renders per-router gated-off fractions and wake
counts as terminal heatmaps, plus a latency histogram.  The diagonal
of a transpose pattern carries no traffic, so those routers should be
dark (mostly off); the busy anti-diagonal stays lit.
"""

from repro.core import PowerPunchPG
from repro.noc import Network, NoCConfig
from repro.traffic import SyntheticTraffic, measure
from repro.viz import gated_fraction_map, latency_histogram, wake_events_map


def main():
    scheme = PowerPunchPG()
    net = Network(NoCConfig(), scheme)
    net.stats.keep_samples = True
    traffic = SyntheticTraffic(net, "transpose", 0.02, seed=3)
    measure(net, traffic, warmup=1000, measurement=6000)

    print(gated_fraction_map(net, title="Gated-off fraction per router (transpose @ 0.02)"))
    print()
    print(wake_events_map(net, title="Wake events per router"))
    print()
    print(latency_histogram(net.stats.latencies, title="Packet latency distribution (cycles)"))


if __name__ == "__main__":
    main()
