#!/usr/bin/env python3
"""Load sweep: the "power-gating curve" and how Power Punch flattens it.

Sweeps uniform-random traffic from near-zero load toward saturation
(the paper's Fig. 12) and prints an ASCII chart of average latency for
No-PG, ConvOpt-PG and PowerPunch-PG, plus net static power.

ConvOpt-PG's latency is worst at *low* load — most routers are asleep
and block packets — then dips, then rises again toward saturation.
PowerPunch-PG hugs the No-PG curve across the whole range.
"""

from repro.experiments.fig12 import run_sweep, report

LOADS = [0.005, 0.01, 0.02, 0.05, 0.10, 0.15]


def ascii_chart(records):
    by_load = {}
    for r in records:
        load = float(r.workload.split("@")[1])
        by_load.setdefault(load, {})[r.scheme] = r.avg_total_latency
    peak = max(max(per.values()) for per in by_load.values())
    scale = 60.0 / peak
    lines = ["", "latency (each column block ~ cycles):"]
    for load in sorted(by_load):
        per = by_load[load]
        lines.append(f"  load {load:.3f}")
        for scheme in ("No-PG", "ConvOpt-PG", "PowerPunch-PG"):
            bar = "#" * int(per[scheme] * scale)
            lines.append(f"    {scheme:15s} {bar} {per[scheme]:.1f}")
    return "\n".join(lines)


def main():
    records = run_sweep("uniform_random", LOADS, measurement=4000)
    print()
    print(report("uniform_random", records))
    print(ascii_chart(records))


if __name__ == "__main__":
    main()
