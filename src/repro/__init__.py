"""Power Punch reproduction library.

A from-scratch, cycle-accurate reproduction of "Power Punch: Towards
Non-blocking Power-gating of NoC Routers" (Chen, Zhu, Pedram and
Pinkston, HPCA 2015): a 2D-mesh wormhole NoC simulator, router
power-gating with the WU/PG handshake, the Power Punch multi-hop
punch-signal and injection-slack mechanisms, a DSENT-style router
energy model, synthetic and closed-loop (CMP + MESI coherence)
workloads, and harnesses regenerating every figure and table of the
paper's evaluation.
"""

__version__ = "1.0.0"

from .noc import Network, NoCConfig

__all__ = ["Network", "NoCConfig", "__version__"]
