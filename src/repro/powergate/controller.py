"""Per-router power-gating controller.

Implements the always-on controller of the paper's Figure 1/2: it
monitors the emptiness of the router datapath and the wakeup (WU)
signals from neighbors and the NI, asserts the sleep signal after a
timeout, and drives the PG handshake signal that neighbors use to mark
output ports unavailable in their switch allocators.

States:

* ``ACTIVE`` — router powered on, forwarding packets.
* ``OFF`` — supply gated; the router blocks every path through it.
* ``WAKING`` — sleep signal de-asserted, supply charging for
  ``wakeup_latency`` cycles; PG stays asserted until fully awake
  (Sec. 2.2), so the router is still unavailable.

Power Punch additions: a punch signal passing through (or targeting)
the router both wakes it and *forewarns* it — the controller learns a
packet will arrive within the punch horizon, so it refuses to sleep
(``expect_until``), filtering short idle periods more accurately than
the timeout alone (Sec. 4.3).

Event-driven operation (active-set kernel): a controller that is
steadily gated off has a trivial per-cycle step — it only accumulates
``off_cycles`` and clears ``wu_seen`` — so the scheme layer may stop
stepping it entirely and rely on :meth:`request_wakeup` events to bring
it back.  Two optional hooks make that skip cycle-exact:

* ``clock`` — a callable returning the last cycle whose controller-step
  phase has completed.  While OFF and un-stepped, the skipped
  ``off_cycles`` are accounted lazily against this clock (the
  :attr:`off_cycles` property folds the accrual in, and
  :meth:`request_wakeup` settles it before any state change), so
  counters read identically to per-cycle stepping at any observation
  point.
* ``wake_hook`` — called with the router id whenever the controller
  leaves the OFF state (or is disturbed out of quiescence, below), so
  the scheme can re-arm per-cycle stepping.

The same idea extends to the ACTIVE state: once a step observes the
controller fully quiescent (datapath empty, no NI demand, no wakeup
signal), every further step is ``active_cycles++``/``idle_cycles++``
until either the sleep timeout expires — at a cycle computable in
advance — or an external event (wakeup request, flit headed toward the
router) changes an input.  :meth:`enter_quiescence` records the skip
start, the ``active_cycles`` property folds the owed span in lazily,
and :meth:`settle_quiescence` materializes it when an event (or the
scheme's precomputed sleep deadline) ends the skip.

With the hooks left at ``None`` (unit tests, the naive kernel) the
controller behaves exactly as if stepped every cycle.
"""

from __future__ import annotations

import enum
from typing import Optional

try:  # numpy backs the vector kernel only; the object FSM never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None


class PGState(enum.Enum):
    """Router power state: ACTIVE, OFF or WAKING."""
    ACTIVE = "active"
    OFF = "off"
    WAKING = "waking"


class PowerGateController:
    """Always-on power-gating controller for one router."""

    __slots__ = (
        "router_id",
        "wakeup_latency",
        "timeout",
        "state",
        "idle_cycles",
        "wake_at",
        "expect_until",
        "wu_seen",
        "faults",
        "clock",
        "wake_hook",
        "stats",
        "retry_timeout",
        "retry_cap",
        "retry_at",
        "retry_backoff",
        "wakeup_retries",
        "_accounted_through",
        "_quiescent_since",
        "_parked_reset_prev",
        "_parked_reset_last",
        "_parked_busy",
        "_active_cycles",
        "_off_cycles",
        "_waking_cycles",
        "wake_events",
        "sleep_events",
        "short_sleeps",
        "cancelled_sleeps",
        "faulted_wakeups",
        "last_sleep_cycle",
        "off_period_lengths_sum",
    )

    def __init__(
        self,
        router_id: int,
        wakeup_latency: int = 8,
        timeout: int = 4,
        retry_timeout: int = 16,
        retry_cap: int = 128,
    ) -> None:
        if wakeup_latency < 1:
            raise ValueError("wakeup_latency must be positive")
        if timeout < 2:
            # The paper requires a minimum two-cycle timeout so flits
            # that already left upstream routers land safely.
            raise ValueError("timeout must be at least 2 cycles")
        if retry_timeout < 1:
            raise ValueError("retry_timeout must be positive")
        if retry_cap < retry_timeout:
            raise ValueError("retry_cap must be >= retry_timeout")
        self.router_id = router_id
        self.wakeup_latency = wakeup_latency
        self.timeout = timeout
        self.state = PGState.ACTIVE
        self.idle_cycles = 0
        self.wake_at: Optional[int] = None
        #: Punch-derived forewarning: do not sleep before this cycle.
        self.expect_until = -1
        #: A WU/punch signal was seen this cycle (resets idle counting).
        self.wu_seen = False
        #: Optional :class:`repro.noc.faults.FaultInjector` consulted on
        #: every incoming wakeup request.
        self.faults = None
        #: Active-set hooks (see module docstring): ``clock`` returns the
        #: last cycle whose step phase completed; ``wake_hook(router_id)``
        #: fires whenever the controller leaves OFF.
        self.clock = None
        self.wake_hook = None
        #: Optional :class:`repro.noc.stats.NetworkStats` mirror for the
        #: retry counter (wired by the scheme layer so campaign dumps
        #: see retries without walking every controller).
        self.stats = None
        #: Wakeup retry protocol (see :meth:`request_wakeup`): a request
        #: swallowed by a ``wakeup_fail`` fault while the router is OFF
        #: is re-issued ``retry_timeout`` cycles later, then with
        #: doubling backoff bounded by ``retry_cap``.  ``retry_at`` is
        #: the pending re-issue cycle (None = no retry armed).
        self.retry_timeout = retry_timeout
        self.retry_cap = retry_cap
        self.retry_at: Optional[int] = None
        self.retry_backoff = 0
        #: Last cycle whose step effects were applied while OFF (real or
        #: lazily accounted); only meaningful in the OFF state.
        self._accounted_through = -1
        #: Cycle of the last real step before per-cycle stepping was
        #: suspended in the quiescent-ACTIVE state, or None when the
        #: controller is stepped normally.
        self._quiescent_since: Optional[int] = None
        #: Wakeups absorbed while parked, recorded as the step cycle
        #: that would have consumed each (resetting idle counting).
        #: Only the latest matters for the idle count, plus — when the
        #: latest has not been stepped past yet — the one before it;
        #: requests arrive in non-decreasing step order, so two fields
        #: suffice.
        self._parked_reset_prev: Optional[int] = None
        self._parked_reset_last: Optional[int] = None
        #: Parked with a non-empty datapath: every skipped step is a
        #: busy ACTIVE step (idle and forewarning reset, active_cycles
        #: accrued); the network unparks the controller the moment its
        #: router's datapath empties.
        self._parked_busy = False
        # --- statistics -------------------------------------------------
        self._active_cycles = 0
        self._off_cycles = 0
        self._waking_cycles = 0
        self.wake_events = 0
        self.sleep_events = 0
        #: Sleeps whose off-period ended up shorter than they should be
        #: (diagnostic for break-even accounting).
        self.short_sleeps = 0
        #: Sleep decisions revoked by a wakeup arriving in the decision
        #: cycle itself (the supply was never actually cut).
        self.cancelled_sleeps = 0
        #: Wakeup requests lost or delayed by the fault injector.
        self.faulted_wakeups = 0
        #: Wakeup requests re-issued by the retry/backoff protocol.
        self.wakeup_retries = 0
        self.last_sleep_cycle: Optional[int] = None
        self.off_period_lengths_sum = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_available(self) -> bool:
        """PG signal de-asserted: packets may be forwarded here."""
        return self.state is PGState.ACTIVE

    def available_by(self, by_cycle: int) -> bool:
        """Whether the router will be powered on at ``by_cycle``."""
        if self.state is PGState.ACTIVE:
            return True
        if self.state is PGState.WAKING:
            return self.wake_at <= by_cycle
        return False

    @property
    def is_off(self) -> bool:
        """Whether the router is gated off."""
        return self.state is PGState.OFF

    @property
    def off_cycles(self) -> int:
        """Cycles spent gated off, including lazily accounted ones."""
        counted = self._off_cycles
        if self.state is PGState.OFF and self.clock is not None:
            owed = self.clock() - self._accounted_through
            if owed > 0:
                counted += owed
        return counted

    def _settle_off_accounting(self) -> None:
        """Fold skipped OFF-state step cycles into the real counter."""
        if self.state is PGState.OFF and self.clock is not None:
            through = self.clock()
            owed = through - self._accounted_through
            if owed > 0:
                self._off_cycles += owed
                self._accounted_through = through

    @property
    def active_cycles(self) -> int:
        """Cycles spent powered on, including lazily accounted ones."""
        counted = self._active_cycles
        if (
            self._quiescent_since is not None
            and self.clock is not None
            and self.state is PGState.ACTIVE
        ):
            owed = self.clock() - self._quiescent_since
            if owed > 0:
                counted += owed
        return counted

    @property
    def waking_cycles(self) -> int:
        """Cycles spent mid-wakeup, including lazily accounted ones."""
        counted = self._waking_cycles
        if (
            self._quiescent_since is not None
            and self.clock is not None
            and self.state is PGState.WAKING
        ):
            through = self.clock()
            if self.wake_at < through:
                through = self.wake_at
            owed = through - self._quiescent_since
            if owed > 0:
                counted += owed
        return counted

    def enter_quiescence(self, cycle: int) -> None:
        """Suspend per-cycle stepping after a fully quiescent ACTIVE step.

        ``cycle`` is the last cycle actually stepped.  Until
        :meth:`settle_quiescence`, each elapsed step-phase cycle is owed
        one ``active_cycles``/``idle_cycles`` increment (exactly what a
        real quiescent step would have done).  Wakeup requests arriving
        while parked are absorbed lazily (see :meth:`request_wakeup`):
        a quiescent-ACTIVE controller consumes them by resetting its
        idle count, which the settle folds in retroactively.
        """
        self._quiescent_since = cycle
        self._parked_reset_prev = None
        self._parked_reset_last = None
        self._parked_busy = False

    def enter_busy_skip(self, cycle: int) -> None:
        """Suspend per-cycle stepping after a busy ACTIVE step.

        While the datapath stays non-empty every step is ``busy``:
        ``active_cycles`` accrues, idle counting and the forewarning
        window are held reset.  The network unparks the controller at
        the departure that empties the datapath (and any wakeup request
        is absorbed just like in the quiescent skip).

        A wakeup already pending consumption is cleared: the first
        skipped step would consume it, and on a busy step it changes
        nothing the skip does not already account for.
        """
        self._quiescent_since = cycle
        self._parked_reset_prev = None
        self._parked_reset_last = None
        self._parked_busy = True
        self.wu_seen = False

    def settle_quiescence(self) -> None:
        """Materialize the owed skipped steps and resume real stepping."""
        since = self._quiescent_since
        if since is None:
            return
        self._quiescent_since = None
        now = self.clock()
        span = now - since
        last = self._parked_reset_last
        self._parked_reset_last = None
        prev = self._parked_reset_prev
        self._parked_reset_prev = None
        if last is not None and last > now:
            # The latest absorbed wakeup has not been consumed by a
            # step yet: re-materialize it for the next real step.
            self.wu_seen = True
            last = prev
        if self.state is PGState.WAKING:
            # Every skipped step was a WAKING step (the wake-at
            # transition itself is always stepped for real).
            if span > 0:
                self._waking_cycles += span
            return
        if span > 0:
            self._active_cycles += span
        if self._parked_busy:
            self._parked_busy = False
            # Every skipped step was busy: idle counting and the
            # forewarning window were held reset throughout.
            self.idle_cycles = 0
            self.expect_until = -1
            return
        if last is not None:
            # Idle counting restarted at the consuming step.
            self.idle_cycles = now - last
        elif span > 0:
            self.idle_cycles += span

    @property
    def is_waking(self) -> bool:
        """Whether the router is mid-wakeup (PG still asserted)."""
        return self.state is PGState.WAKING

    @property
    def worst_case_stall(self) -> int:
        """Certified worst-case head-flit stall at this router, in cycles.

        The controller contract the guarantees layer prices: a wakeup
        request that finds the router ``OFF`` (the worst arrival — any
        ``WAKING`` overlap can only shorten the wait) makes the router
        available exactly ``wakeup_latency`` cycles later, and nothing
        in the FSM can extend that — forewarning and retries only move
        the wakeup *earlier*.  ``repro.guarantees.bounds`` uses this
        per hop for non-forewarned schemes and subtracts the punched
        slack for forewarned ones.
        """
        return self.wakeup_latency

    # ------------------------------------------------------------------
    # Wakeup / forewarning inputs
    # ------------------------------------------------------------------
    def request_wakeup(self, cycle: int, expectation_window: int = 0) -> None:
        """A WU or punch signal reaches this controller at ``cycle``.

        Wakes the router if it is gated off, resets idle counting, and
        (for Power Punch) extends the forewarning window during which
        the router refuses to sleep.

        Edge case: a wakeup arriving in the very cycle the sleep
        decision was made (``step`` ran earlier this cycle and chose to
        gate, but the supply is only cut from the *next* cycle onward)
        must not be charged the full wakeup latency — the sleep is
        revoked and the router stays ACTIVE.  Without this, the wakeup
        was effectively lost: the router paid a pointless
        sleep-and-wake round trip and the off-period statistics were
        corrupted by a negative-length off period.
        """
        if self._quiescent_since is not None:
            # (A parked controller is never OFF, so there is no lazy
            # OFF accounting to settle on this path.)
            if self.faults is None:
                # Parked ACTIVE/WAKING: the request's only FSM effects
                # are resetting idle counting at the step that consumes
                # it and extending the forewarning window — record both
                # lazily and stay parked, so steady punch or WU streams
                # do not churn the armed set.  (The scheme re-checks
                # its precomputed sleep deadline against these fields
                # before acting on it.)
                reset_step = self.clock() + 1
                if reset_step != self._parked_reset_last:
                    self._parked_reset_prev = self._parked_reset_last
                    self._parked_reset_last = reset_step
                if expectation_window > 0:
                    expect = cycle + expectation_window
                    if expect > self.expect_until:
                        self.expect_until = expect
                return
            # Fault injection draws a disposition per delivered request,
            # so requests must flow through the full path: end the
            # quiescent skip and re-arm per-cycle stepping.
            self.settle_quiescence()
            if self.wake_hook is not None:
                self.wake_hook(self.router_id)
        self._settle_off_accounting()
        if self.faults is not None:
            action, delay = self.faults.wakeup_disposition(self.router_id, cycle)
            if action == "fail":
                self.faulted_wakeups += 1
                if self.state is PGState.OFF and self.retry_at is None:
                    # The request is gone and the router stays dark:
                    # without a retry the packet behind it waits for
                    # the next organic WU, which may never come.  Arm
                    # the re-issue deadline and (active kernel) keep
                    # the controller stepping so the deadline fires.
                    self.retry_at = cycle + self.retry_timeout
                    self.retry_backoff = self.retry_timeout
                    if self.wake_hook is not None:
                        self.wake_hook(self.router_id)
                return
            if action == "delay":
                self.faulted_wakeups += 1
                cycle += delay
        # A request that got through supersedes any pending retry.
        self.retry_at = None
        self.retry_backoff = 0
        self.wu_seen = True
        if expectation_window > 0:
            expect = cycle + expectation_window
            if expect > self.expect_until:
                self.expect_until = expect
        if self.state is PGState.OFF:
            if self.last_sleep_cycle is not None and cycle < self.last_sleep_cycle:
                # The sleep decided earlier this cycle has not taken
                # effect yet: cancel it instead of waking from scratch.
                self.state = PGState.ACTIVE
                self.idle_cycles = 0
                self.sleep_events -= 1
                self.cancelled_sleeps += 1
                self.last_sleep_cycle = None
                if self.wake_hook is not None:
                    self.wake_hook(self.router_id)
                return
            self.state = PGState.WAKING
            self.wake_at = cycle + self.wakeup_latency
            self.wake_events += 1
            if self.last_sleep_cycle is not None:
                off_len = cycle - self.last_sleep_cycle
                self.off_period_lengths_sum += off_len
            if self.wake_hook is not None:
                self.wake_hook(self.router_id)

    def _fire_retry(self, cycle: int) -> None:
        """Re-issue a wakeup request the fault injector swallowed.

        Each re-issue draws a fresh disposition; a repeated loss
        re-arms the deadline with doubled (capped) backoff, so a
        high-rate ``wakeup_fail`` window costs O(log) retries instead
        of a retry storm, while a recovered injector gets the router
        waking within one backoff period.  Only *lost* requests retry:
        a ``wakeup_delay`` fault delivers late but does deliver, so the
        delayed request itself clears the pending retry.
        """
        self.retry_at = None
        backoff = min(self.retry_backoff * 2, self.retry_cap)
        self.wakeup_retries += 1
        if self.stats is not None:
            self.stats.wakeup_retries += 1
        self.request_wakeup(cycle, 0)
        if self.state is PGState.OFF and self.retry_at is not None:
            # Lost again: the fail path re-armed with the base timeout;
            # restore the exponential schedule.
            self.retry_backoff = backoff
            self.retry_at = cycle + backoff

    # ------------------------------------------------------------------
    # Per-cycle FSM update
    # ------------------------------------------------------------------
    def step(self, cycle: int, datapath_empty: bool, node_wants_router: bool) -> None:
        """Advance the FSM one cycle.

        ``datapath_empty`` is the router's sleep precondition;
        ``node_wants_router`` is the NI-side WU (a ready packet is
        checking availability or a stream is in flight).
        """
        if self.state is PGState.WAKING:
            self._waking_cycles += 1
            if cycle >= self.wake_at:
                self.state = PGState.ACTIVE
                self.wake_at = None
                self.idle_cycles = 0
            self.wu_seen = False
            return
        if self.state is PGState.OFF:
            self._off_cycles += 1
            self._accounted_through = cycle
            self.wu_seen = False
            if self.retry_at is not None and cycle >= self.retry_at:
                self._fire_retry(cycle)
            return

        self._active_cycles += 1
        busy = (not datapath_empty) or node_wants_router or self.wu_seen
        self.wu_seen = False
        if busy:
            self.idle_cycles = 0
            if not datapath_empty:
                # A buffered flit fulfills (or supersedes) the punch
                # forewarning; punches for packets still on their way
                # re-arm the window every cycle, so clearing it here
                # only releases stale expectations.
                self.expect_until = -1
            return
        self.idle_cycles += 1
        if self.idle_cycles >= self.timeout and cycle > self.expect_until:
            self.state = PGState.OFF
            self.idle_cycles = 0
            self.sleep_events += 1
            # The router is off from the *next* cycle onward.
            self.last_sleep_cycle = cycle + 1
            # OFF-step accounting (real or lazy) starts next cycle.
            self._accounted_through = cycle

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def gated_fraction(self) -> float:
        """Fraction of lifetime cycles spent gated off."""
        total = self.active_cycles + self.off_cycles + self.waking_cycles
        return self.off_cycles / total if total else 0.0

    def mean_off_period(self) -> float:
        """Average length of completed off periods, in cycles."""
        return (
            self.off_period_lengths_sum / self.wake_events if self.wake_events else 0.0
        )


# ----------------------------------------------------------------------
# Structure-of-arrays controller bank (vector kernel)
# ----------------------------------------------------------------------
#: Integer codes of :class:`PGState` inside the array bank.
PG_STATE_CODES = {PGState.ACTIVE: 0, PGState.OFF: 1, PGState.WAKING: 2}
PG_STATE_FROM_CODE = {code: state for state, code in PG_STATE_CODES.items()}

#: ``wake_at`` sentinel for "no wakeup scheduled" (compares above any
#: reachable cycle) and ``last_sleep_cycle`` sentinel for None (real
#: values are always ``cycle + 1 >= 1``).
_NO_WAKE = 1 << 60
_NO_SLEEP = -1


class ControllerArrayBank:
    """All :class:`PowerGateController` FSMs of one mesh as flat arrays.

    The vector kernel steps every controller with a handful of masked
    array ops instead of N method calls.  Semantics mirror
    :meth:`PowerGateController.step` / :meth:`request_wakeup` on the
    fault-free path exactly (the vector engine never engages with a
    fault injector installed, so the retry/backoff and parked-skip
    machinery has no array twin).  Two phase-batching facts make the
    batched request path exact:

    * Controllers are independent; within one delivery phase the
      per-node request order is commutative (``expect_until`` is a max,
      ``wu_seen`` sticky, the OFF->WAKING transition idempotent).
    * A begin-phase request can never hit the same-cycle sleep-cancel
      edge (a sleep decided at step ``c`` sets ``last_sleep_cycle =
      c + 1``; begin-phase requests at ``c + 1`` fail ``cycle <
      last_sleep_cycle``), so only end-phase (punch) rounds pass
      ``allow_cancel=True``.

    :meth:`flush_into` materializes the arrays back onto the controller
    objects, so every object-level property (including the lazy
    accounting ones) reads exactly what per-cycle object stepping would
    have produced.
    """

    def __init__(self, num_nodes: int, wakeup_latency: int, timeout: int) -> None:
        n = num_nodes
        self.wakeup_latency = wakeup_latency
        self.timeout = timeout
        self.state = _np.zeros(n, dtype=_np.int8)
        self.idle = _np.zeros(n, dtype=_np.int64)
        self.wake_at = _np.full(n, _NO_WAKE, dtype=_np.int64)
        self.expect = _np.full(n, -1, dtype=_np.int64)
        self.wu = _np.zeros(n, dtype=bool)
        self.last_sleep = _np.full(n, _NO_SLEEP, dtype=_np.int64)
        self.accounted = _np.full(n, -1, dtype=_np.int64)
        self.active_cycles = _np.zeros(n, dtype=_np.int64)
        self.off_cycles = _np.zeros(n, dtype=_np.int64)
        self.waking_cycles = _np.zeros(n, dtype=_np.int64)
        self.wake_events = _np.zeros(n, dtype=_np.int64)
        self.sleep_events = _np.zeros(n, dtype=_np.int64)
        self.cancelled_sleeps = _np.zeros(n, dtype=_np.int64)
        self.off_sum = _np.zeros(n, dtype=_np.int64)

    @classmethod
    def from_controllers(cls, controllers) -> "ControllerArrayBank":
        """Snapshot live controller objects into a fresh bank.

        Engagement happens before the first network step, but traffic
        at cycle 0 may already have delivered wakeup requests through
        the object path — so every mutable FSM field is copied, not
        assumed pristine.
        """
        first = controllers[0]
        bank = cls(len(controllers), first.wakeup_latency, first.timeout)
        for i, c in enumerate(controllers):
            if c._quiescent_since is not None:  # pragma: no cover - defensive
                c.settle_quiescence()
            bank.state[i] = PG_STATE_CODES[c.state]
            bank.idle[i] = c.idle_cycles
            bank.wake_at[i] = _NO_WAKE if c.wake_at is None else c.wake_at
            bank.expect[i] = c.expect_until
            bank.wu[i] = c.wu_seen
            bank.last_sleep[i] = (
                _NO_SLEEP if c.last_sleep_cycle is None else c.last_sleep_cycle
            )
            bank.accounted[i] = c._accounted_through
            bank.active_cycles[i] = c._active_cycles
            bank.off_cycles[i] = c._off_cycles
            bank.waking_cycles[i] = c._waking_cycles
            bank.wake_events[i] = c.wake_events
            bank.sleep_events[i] = c.sleep_events
            bank.cancelled_sleeps[i] = c.cancelled_sleeps
            bank.off_sum[i] = c.off_period_lengths_sum
        return bank

    # ------------------------------------------------------------------
    def request_batch(self, nodes, cycle: int, window: int, allow_cancel: bool) -> None:
        """Deliver one phase's wakeup requests to ``nodes`` (unique ids)."""
        if len(nodes) == 0:
            return
        self.wu[nodes] = True
        if window > 0:
            self.expect[nodes] = _np.maximum(self.expect[nodes], cycle + window)
        off = nodes[self.state[nodes] == 1]
        if len(off) == 0:
            return
        if allow_cancel:
            ls = self.last_sleep[off]
            cancel = (ls != _NO_SLEEP) & (cycle < ls)
            cn = off[cancel]
            if len(cn):
                self.state[cn] = 0
                self.idle[cn] = 0
                self.sleep_events[cn] -= 1
                self.cancelled_sleeps[cn] += 1
                self.last_sleep[cn] = _NO_SLEEP
            off = off[~cancel]
        if len(off) == 0:
            return
        self.state[off] = 2
        self.wake_at[off] = cycle + self.wakeup_latency
        self.wake_events[off] += 1
        ls = self.last_sleep[off]
        slept = ls != _NO_SLEEP
        ended = off[slept]
        self.off_sum[ended] += cycle - ls[slept]

    def request_scalar(self, node: int, cycle: int, window: int) -> None:
        """One node's :meth:`PowerGateController.request_wakeup`, with
        the full same-cycle sleep-cancel edge (punch deliveries and
        end-of-cycle injection punches can reach a controller that just
        decided to sleep; ``request_batch`` only carries the cancel for
        callers that opt in)."""
        self.wu[node] = True
        if window > 0:
            self.expect[node] = max(int(self.expect[node]), cycle + window)
        if self.state[node] != 1:
            return
        ls = int(self.last_sleep[node])
        if ls != _NO_SLEEP and cycle < ls:
            self.state[node] = 0
            self.idle[node] = 0
            self.sleep_events[node] -= 1
            self.cancelled_sleeps[node] += 1
            self.last_sleep[node] = _NO_SLEEP
            return
        self.state[node] = 2
        self.wake_at[node] = cycle + self.wakeup_latency
        self.wake_events[node] += 1
        if ls != _NO_SLEEP:
            self.off_sum[node] += cycle - ls

    def step_all(self, cycle: int, datapath_empty, node_wants) -> None:
        """One masked step of every FSM (snapshot masks first, so a
        WAKING->ACTIVE transition does not also take the ACTIVE branch
        this cycle, exactly like the early returns in the scalar FSM)."""
        st = self.state
        waking = st == 2
        off = st == 1
        act = st == 0
        self.waking_cycles[waking] += 1
        done = waking & (cycle >= self.wake_at)
        self.state[done] = 0
        self.wake_at[done] = _NO_WAKE
        self.idle[done] = 0
        self.off_cycles[off] += 1
        self.accounted[off] = cycle
        busy = act & (~datapath_empty | node_wants | self.wu)
        self.wu[:] = False
        self.active_cycles[act] += 1
        self.idle[busy] = 0
        self.expect[busy & ~datapath_empty] = -1
        idling = act & ~busy
        self.idle[idling] += 1
        sleep = idling & (self.idle >= self.timeout) & (cycle > self.expect)
        self.state[sleep] = 1
        self.idle[sleep] = 0
        self.sleep_events[sleep] += 1
        self.last_sleep[sleep] = cycle + 1
        self.accounted[sleep] = cycle

    # ------------------------------------------------------------------
    def available_by(self, by_cycle: int):
        """Per-node :meth:`PowerGateController.available_by` as a bool array."""
        return (self.state == 0) | ((self.state == 2) & (self.wake_at <= by_cycle))

    def flush_into(self, controllers) -> None:
        """Write the arrays back onto the controller objects."""
        for i, c in enumerate(controllers):
            c.state = PG_STATE_FROM_CODE[int(self.state[i])]
            c.idle_cycles = int(self.idle[i])
            wake = int(self.wake_at[i])
            c.wake_at = None if wake == _NO_WAKE else wake
            c.expect_until = int(self.expect[i])
            c.wu_seen = bool(self.wu[i])
            sleep = int(self.last_sleep[i])
            c.last_sleep_cycle = None if sleep == _NO_SLEEP else sleep
            c._accounted_through = int(self.accounted[i])
            c._active_cycles = int(self.active_cycles[i])
            c._off_cycles = int(self.off_cycles[i])
            c._waking_cycles = int(self.waking_cycles[i])
            c.wake_events = int(self.wake_events[i])
            c.sleep_events = int(self.sleep_events[i])
            c.cancelled_sleeps = int(self.cancelled_sleeps[i])
            c.off_period_lengths_sum = int(self.off_sum[i])
            c._quiescent_since = None
            c._parked_reset_prev = None
            c._parked_reset_last = None
            c._parked_busy = False
            c.retry_at = None
            c.retry_backoff = 0
