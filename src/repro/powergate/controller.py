"""Per-router power-gating controller.

Implements the always-on controller of the paper's Figure 1/2: it
monitors the emptiness of the router datapath and the wakeup (WU)
signals from neighbors and the NI, asserts the sleep signal after a
timeout, and drives the PG handshake signal that neighbors use to mark
output ports unavailable in their switch allocators.

States:

* ``ACTIVE`` — router powered on, forwarding packets.
* ``OFF`` — supply gated; the router blocks every path through it.
* ``WAKING`` — sleep signal de-asserted, supply charging for
  ``wakeup_latency`` cycles; PG stays asserted until fully awake
  (Sec. 2.2), so the router is still unavailable.

Power Punch additions: a punch signal passing through (or targeting)
the router both wakes it and *forewarns* it — the controller learns a
packet will arrive within the punch horizon, so it refuses to sleep
(``expect_until``), filtering short idle periods more accurately than
the timeout alone (Sec. 4.3).
"""

from __future__ import annotations

import enum
from typing import Optional


class PGState(enum.Enum):
    """Router power state: ACTIVE, OFF or WAKING."""
    ACTIVE = "active"
    OFF = "off"
    WAKING = "waking"


class PowerGateController:
    """Always-on power-gating controller for one router."""

    __slots__ = (
        "router_id",
        "wakeup_latency",
        "timeout",
        "state",
        "idle_cycles",
        "wake_at",
        "expect_until",
        "wu_seen",
        "faults",
        "active_cycles",
        "off_cycles",
        "waking_cycles",
        "wake_events",
        "sleep_events",
        "short_sleeps",
        "cancelled_sleeps",
        "faulted_wakeups",
        "last_sleep_cycle",
        "off_period_lengths_sum",
    )

    def __init__(
        self, router_id: int, wakeup_latency: int = 8, timeout: int = 4
    ) -> None:
        if wakeup_latency < 1:
            raise ValueError("wakeup_latency must be positive")
        if timeout < 2:
            # The paper requires a minimum two-cycle timeout so flits
            # that already left upstream routers land safely.
            raise ValueError("timeout must be at least 2 cycles")
        self.router_id = router_id
        self.wakeup_latency = wakeup_latency
        self.timeout = timeout
        self.state = PGState.ACTIVE
        self.idle_cycles = 0
        self.wake_at: Optional[int] = None
        #: Punch-derived forewarning: do not sleep before this cycle.
        self.expect_until = -1
        #: A WU/punch signal was seen this cycle (resets idle counting).
        self.wu_seen = False
        #: Optional :class:`repro.noc.faults.FaultInjector` consulted on
        #: every incoming wakeup request.
        self.faults = None
        # --- statistics -------------------------------------------------
        self.active_cycles = 0
        self.off_cycles = 0
        self.waking_cycles = 0
        self.wake_events = 0
        self.sleep_events = 0
        #: Sleeps whose off-period ended up shorter than they should be
        #: (diagnostic for break-even accounting).
        self.short_sleeps = 0
        #: Sleep decisions revoked by a wakeup arriving in the decision
        #: cycle itself (the supply was never actually cut).
        self.cancelled_sleeps = 0
        #: Wakeup requests lost or delayed by the fault injector.
        self.faulted_wakeups = 0
        self.last_sleep_cycle: Optional[int] = None
        self.off_period_lengths_sum = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_available(self) -> bool:
        """PG signal de-asserted: packets may be forwarded here."""
        return self.state is PGState.ACTIVE

    def available_by(self, by_cycle: int) -> bool:
        """Whether the router will be powered on at ``by_cycle``."""
        if self.state is PGState.ACTIVE:
            return True
        if self.state is PGState.WAKING:
            return self.wake_at <= by_cycle
        return False

    @property
    def is_off(self) -> bool:
        """Whether the router is gated off."""
        return self.state is PGState.OFF

    @property
    def is_waking(self) -> bool:
        """Whether the router is mid-wakeup (PG still asserted)."""
        return self.state is PGState.WAKING

    # ------------------------------------------------------------------
    # Wakeup / forewarning inputs
    # ------------------------------------------------------------------
    def request_wakeup(self, cycle: int, expectation_window: int = 0) -> None:
        """A WU or punch signal reaches this controller at ``cycle``.

        Wakes the router if it is gated off, resets idle counting, and
        (for Power Punch) extends the forewarning window during which
        the router refuses to sleep.

        Edge case: a wakeup arriving in the very cycle the sleep
        decision was made (``step`` ran earlier this cycle and chose to
        gate, but the supply is only cut from the *next* cycle onward)
        must not be charged the full wakeup latency — the sleep is
        revoked and the router stays ACTIVE.  Without this, the wakeup
        was effectively lost: the router paid a pointless
        sleep-and-wake round trip and the off-period statistics were
        corrupted by a negative-length off period.
        """
        if self.faults is not None:
            action, delay = self.faults.wakeup_disposition(self.router_id, cycle)
            if action == "fail":
                self.faulted_wakeups += 1
                return
            if action == "delay":
                self.faulted_wakeups += 1
                cycle += delay
        self.wu_seen = True
        if expectation_window > 0:
            expect = cycle + expectation_window
            if expect > self.expect_until:
                self.expect_until = expect
        if self.state is PGState.OFF:
            if self.last_sleep_cycle is not None and cycle < self.last_sleep_cycle:
                # The sleep decided earlier this cycle has not taken
                # effect yet: cancel it instead of waking from scratch.
                self.state = PGState.ACTIVE
                self.idle_cycles = 0
                self.sleep_events -= 1
                self.cancelled_sleeps += 1
                self.last_sleep_cycle = None
                return
            self.state = PGState.WAKING
            self.wake_at = cycle + self.wakeup_latency
            self.wake_events += 1
            if self.last_sleep_cycle is not None:
                off_len = cycle - self.last_sleep_cycle
                self.off_period_lengths_sum += off_len

    # ------------------------------------------------------------------
    # Per-cycle FSM update
    # ------------------------------------------------------------------
    def step(self, cycle: int, datapath_empty: bool, node_wants_router: bool) -> None:
        """Advance the FSM one cycle.

        ``datapath_empty`` is the router's sleep precondition;
        ``node_wants_router`` is the NI-side WU (a ready packet is
        checking availability or a stream is in flight).
        """
        if self.state is PGState.WAKING:
            self.waking_cycles += 1
            if cycle >= self.wake_at:
                self.state = PGState.ACTIVE
                self.wake_at = None
                self.idle_cycles = 0
            self.wu_seen = False
            return
        if self.state is PGState.OFF:
            self.off_cycles += 1
            self.wu_seen = False
            return

        self.active_cycles += 1
        busy = (not datapath_empty) or node_wants_router or self.wu_seen
        self.wu_seen = False
        if busy:
            self.idle_cycles = 0
            if not datapath_empty:
                # A buffered flit fulfills (or supersedes) the punch
                # forewarning; punches for packets still on their way
                # re-arm the window every cycle, so clearing it here
                # only releases stale expectations.
                self.expect_until = -1
            return
        self.idle_cycles += 1
        if self.idle_cycles >= self.timeout and cycle > self.expect_until:
            self.state = PGState.OFF
            self.idle_cycles = 0
            self.sleep_events += 1
            # The router is off from the *next* cycle onward.
            self.last_sleep_cycle = cycle + 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def gated_fraction(self) -> float:
        """Fraction of lifetime cycles spent gated off."""
        total = self.active_cycles + self.off_cycles + self.waking_cycles
        return self.off_cycles / total if total else 0.0

    def mean_off_period(self) -> float:
        """Average length of completed off periods, in cycles."""
        return (
            self.off_period_lengths_sum / self.wake_events if self.wake_events else 0.0
        )
