"""Router power-gating substrate: controller FSM and WU/PG handshake."""

from .controller import PGState, PowerGateController

__all__ = ["PGState", "PowerGateController"]
