"""Runtime enforcement of the analytical latency bounds.

A :class:`BoundChecker` subscribes to a network's delivery stream and
compares every delivered packet's realized network latency against its
certified per-route bound (:mod:`repro.guarantees.bounds`).  Like the
invariant checker it is opt-in (``Network.install_bounds``, or the
``--bounds`` CLI flag) and two-moded: ``strict=True`` raises a
structured :class:`~repro.noc.errors.BoundViolationError` on the first
violation, ``strict=False`` accumulates violations for campaign-style
reporting.

Because it is a pure delivery listener it composes with **all three
cycle kernels** — the vector engine fires ejection listeners exactly
like the object kernels — and never perturbs simulation state, so a
checked run is bit-identical to an unchecked one.

A violation carries the full story: the offending packet's route
(source→destination router walk), the bound's term-by-term
decomposition, the observed latency and timeline, and — when an
:class:`~repro.noc.invariants.InvariantChecker` is installed alongside
— a rendered post-mortem with the flight recorder's recent events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..noc.errors import BoundViolationError
from .bounds import LatencyBoundModel, UnboundableConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..noc.network import Network
    from ..noc.packet import Packet


class BoundChecker:
    """Delivery-time latency-bound verification for one network.

    Install with :meth:`Network.install_bounds`.  ``model`` (or the
    override knobs, forwarded to :class:`LatencyBoundModel`) defaults
    to the bound derived from the network's own config, policy and
    routing at attach time.
    """

    def __init__(
        self,
        *,
        strict: bool = True,
        model: Optional[LatencyBoundModel] = None,
        contention_per_router: Optional[int] = None,
        wakeup_penalty_per_hop: Optional[int] = None,
    ) -> None:
        self.strict = strict
        self.model = model
        self._contention_override = contention_per_router
        self._penalty_override = wakeup_penalty_per_hop
        self.network: Optional["Network"] = None
        #: Violations recorded in non-strict mode (strict mode raises).
        self.violations: List[BoundViolationError] = []
        self.checked = 0
        #: Largest observed/bound ratio over all checked deliveries
        #: (the bound-tightness figure the guarantees campaign reports).
        self.worst_ratio = 0.0
        self.worst: Optional[dict] = None

    # ------------------------------------------------------------------
    def attach(self, network: "Network") -> None:
        """Bind to ``network`` and subscribe to its delivery stream."""
        if network.faults is not None:
            raise UnboundableConfigError(
                "latency bounds are certified for the fault-free "
                "pipeline model; this network has a fault injector "
                "installed"
            )
        if self.model is None:
            self.model = LatencyBoundModel(
                network.config,
                network.policy,
                routing=network.routing,
                contention_per_router=self._contention_override,
                wakeup_penalty_per_hop=self._penalty_override,
            )
        self.network = network
        network.add_delivery_listener(self._on_delivered)

    # ------------------------------------------------------------------
    def _on_delivered(self, packet: "Packet", cycle: int) -> None:
        if packet.source == packet.destination:
            return  # local NI delivery: no route to certify
        terms = self.model.bound(
            packet.source, packet.destination, packet.size_flits
        )
        observed = packet.network_latency
        self.checked += 1
        limit = terms.total
        ratio = observed / limit if limit else 0.0
        if ratio > self.worst_ratio:
            self.worst_ratio = ratio
            self.worst = {
                "packet_id": packet.packet_id,
                "observed": observed,
                "bound": limit,
                **terms.as_dict(),
            }
        if observed <= limit:
            return
        error = self._build_violation(packet, cycle, observed, terms)
        if self.strict:
            raise error
        self.violations.append(error)

    def _build_violation(
        self, packet: "Packet", cycle: int, observed: int, terms
    ) -> BoundViolationError:
        route = self.model.routing.path(packet.source, packet.destination)
        post_mortem = None
        invariants = self.network.invariants if self.network else None
        if invariants is not None:
            post_mortem = invariants.build_post_mortem(
                cycle,
                f"pkt#{packet.packet_id} exceeded its certified "
                f"latency bound ({observed} > {terms.total})",
                packets=[packet],
            )
        return BoundViolationError(
            f"pkt#{packet.packet_id} {packet.source}->{packet.destination} "
            f"delivered in {observed} cycles, bound {terms.total} "
            f"(zero_load={terms.zero_load} serialization="
            f"{terms.serialization} contention={terms.contention} "
            f"wakeup_penalty={terms.wakeup_penalty}); timeline: "
            f"created@{packet.created_at} injected@{packet.injected_at} "
            f"delivered@{packet.delivered_at}",
            observed=observed,
            bound=terms.total,
            terms=terms.as_dict(),
            route=route,
            post_mortem=post_mortem,
            cycle=cycle,
            packet=packet.packet_id,
        )

    # ------------------------------------------------------------------
    def report(self) -> dict:
        """JSON-ready summary for campaign payloads."""
        return {
            "checked": self.checked,
            "violations": len(self.violations),
            "violation_summaries": [
                {
                    "observed": v.observed,
                    "bound": v.bound,
                    "terms": v.terms,
                    "route": list(v.route),
                }
                for v in self.violations
            ],
            "worst_ratio": self.worst_ratio,
            "worst": self.worst,
            "model": self.model.describe() if self.model else None,
        }
