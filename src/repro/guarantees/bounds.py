"""Analytical per-route worst-case latency bounds.

Composes a certified worst-case *network* latency (head-flit injection
to tail ejection, ``Packet.network_latency``) for every route from the
pieces the simulator already defines:

``zero_load``
    The pinned zero-load pipeline formula (see ``tests/test_network``):
    one NI→router link cycle, ``router_stages + link_latency`` per hop,
    and the destination router's remaining ``router_stages - 1`` pipe
    stages.
``serialization``
    ``size_flits - 1`` extra cycles for the tail to follow the head.
``contention``
    An arbitration allowance per router visited (``hops + 1``
    routers, source through destination): a head flit can wait for the
    other ``num_vcs - 1`` virtual channels to each drain one maximal
    packet through the shared switch, i.e.
    ``(num_vcs - 1) * max_packet_flits`` cycles per router.  This is
    the *admissible-load* term: it holds below saturation (validated
    empirically by the guarantees campaign at the paper's full
    evaluated load, 0.20 flits/node/cycle uniform-random, with ~2x
    margin) but no open-loop bound survives a saturated pattern —
    NI queueing is unbounded there and in-network backlog follows.
``wakeup_penalty``
    The per-scheme power-gating term, ``hops *`` a per-hop penalty
    (the source router's wakeup stalls the packet *before* injection,
    outside network latency; every downstream router can be asleep).
    Per hop: ``wakeup_latency`` for conventional one-hop lookahead
    (ConvOpt-PG — without the forewarning window nothing is certified
    hidden), and ``max(0, wakeup_latency - punch_hops * router_stages)``
    for punch schemes (a punch H hops ahead hides H router traversals;
    see ``PowerGatedScheme.attach``).  Zero for always-on policies.

The **non-blocking certificate** is the analytical identity this
decomposition makes checkable: with the default parameters
(``wakeup_latency=8``, ``router_stages=3`` → ``punch_hops=3``,
slack ``9 >= 8``), PowerPunch's wakeup penalty is exactly zero, so its
bound equals No-PG's *for every route* — power gating is invisible to
the worst case.  :func:`certify_non_blocking` verifies the equality
route by route rather than asserting the algebra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..noc import DATA_PACKET_FLITS, NoCConfig
from ..noc.routing import RoutingAlgorithm, default_routing


class UnboundableConfigError(ValueError):
    """No certified latency bound exists for this configuration.

    Raised at model/checker construction time (a :class:`ValueError`:
    it is a configuration problem) — e.g. an unknown power-gating
    policy, a scheme with out-of-band transport (NoRD's bypass ring
    delivers over uncertified detours), or a network with a fault
    injector installed (faults void the fault-free pipeline model the
    bound is composed from).
    """


@dataclass(frozen=True)
class BoundTerms:
    """One route's bound, decomposed term by term."""

    source: int
    destination: int
    hops: int
    size_flits: int
    zero_load: int
    serialization: int
    contention: int
    wakeup_penalty: int

    @property
    def total(self) -> int:
        """The certified worst-case network latency, in cycles."""
        return (
            self.zero_load
            + self.serialization
            + self.contention
            + self.wakeup_penalty
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "source": self.source,
            "destination": self.destination,
            "hops": self.hops,
            "size_flits": self.size_flits,
            "zero_load": self.zero_load,
            "serialization": self.serialization,
            "contention": self.contention,
            "wakeup_penalty": self.wakeup_penalty,
            "total": self.total,
        }


def resolved_punch_hops(scheme, config: NoCConfig) -> int:
    """The punch distance ``scheme`` uses on ``config``.

    Mirrors ``PowerGatedScheme.attach`` so the analytical layer can
    price a scheme without building a network: an explicit constructor
    value wins, otherwise ``ceil(wakeup_latency / router_stages)`` —
    the smallest distance whose hidden slack covers the wakeup.
    """
    import math

    hops = getattr(scheme, "punch_hops", None)
    if hops is None:
        hops = getattr(scheme, "_punch_hops", None)
    if hops is None:
        hops = max(1, math.ceil(scheme.wakeup_latency / config.router_stages))
    return hops


def wakeup_penalty_per_hop(scheme, config: NoCConfig) -> int:
    """Certified worst-case wakeup stall per downstream router.

    * Always-on policies (``No-PG``, or no policy at all): 0.
    * Forewarned punch schemes: ``max(0, wakeup_latency - punch_hops *
      router_stages)`` — the punch races ahead of the head flit by one
      router traversal per punch hop, and forewarning pins the woken
      router awake for the expectation window, so only the uncovered
      residual can ever stall the packet.
    * Non-forewarned lookahead (ConvOpt-PG): the full per-wakeup stall
      from the controller contract (``wakeup_latency``).  The one-hop
      wakeup usually hides a few cycles in practice, but without the
      forewarning hold the neighbor may time out and re-sleep before
      the head arrives, so nothing is *certified* hidden.

    Schemes outside the power-gating hierarchy (e.g. NoRD's bypass
    ring, which delivers over out-of-band detours) raise
    :class:`UnboundableConfigError`.
    """
    from ..baselines.nord import NoRDLike
    from ..core.schemes import PowerGatedScheme
    from ..noc.policy import AlwaysOnPolicy

    if scheme is None or isinstance(scheme, AlwaysOnPolicy):
        return 0
    if isinstance(scheme, NoRDLike):
        raise UnboundableConfigError(
            "NoRD-like bypass-ring schemes deliver packets over "
            "out-of-band detours; no certified per-route bound exists"
        )
    if not isinstance(scheme, PowerGatedScheme):
        raise UnboundableConfigError(
            f"no certified wakeup-penalty model for scheme "
            f"{getattr(scheme, 'name', type(scheme).__name__)!r}"
        )
    if getattr(scheme, "use_forewarning", False):
        hidden = resolved_punch_hops(scheme, config) * config.router_stages
        return max(0, scheme.wakeup_latency - hidden)
    return int(scheme.wakeup_latency)


#: Alias so ``LatencyBoundModel.__init__`` can default its same-named
#: keyword to the function above without shadowing games.
_default_wakeup_penalty = wakeup_penalty_per_hop


class LatencyBoundModel:
    """Per-route worst-case latency calculator for one configuration.

    ``scheme`` may be any power policy (or ``None`` for always-on);
    ``routing`` defaults to the topology's default algorithm.  The two
    override knobs exist for *negative* testing — asserting a bound a
    configuration cannot meet (e.g. ``wakeup_penalty_per_hop=0`` on a
    blocking scheme, or ``contention_per_router=0`` under load) so the
    runtime checker's firing path stays proven.
    """

    def __init__(
        self,
        config: NoCConfig,
        scheme=None,
        *,
        routing: Optional[RoutingAlgorithm] = None,
        contention_per_router: Optional[int] = None,
        wakeup_penalty_per_hop: Optional[int] = None,
        max_packet_flits: int = DATA_PACKET_FLITS,
    ) -> None:
        self.config = config
        self.scheme = scheme
        if routing is None:
            routing = default_routing(config.make_topology())
        self.routing = routing
        self.max_packet_flits = max_packet_flits
        if contention_per_router is None:
            contention_per_router = (config.num_vcs - 1) * max_packet_flits
        self.contention_per_router = contention_per_router
        if wakeup_penalty_per_hop is None:
            wakeup_penalty_per_hop = _default_wakeup_penalty(scheme, config)
        self.penalty_per_hop = wakeup_penalty_per_hop
        self._hops_memo: Dict[tuple, int] = {}

    # ------------------------------------------------------------------
    def hops(self, source: int, destination: int) -> int:
        """Route length via the routing algorithm's own path walk."""
        key = (source, destination)
        hops = self._hops_memo.get(key)
        if hops is None:
            hops = self.routing.path_hops(source, destination)
            self._hops_memo[key] = hops
        return hops

    def bound(
        self, source: int, destination: int, size_flits: Optional[int] = None
    ) -> BoundTerms:
        """The decomposed bound for one route (and one packet size)."""
        if size_flits is None:
            size_flits = self.max_packet_flits
        cfg = self.config
        hops = self.hops(source, destination)
        per_hop = cfg.router_stages + cfg.link_latency
        zero_load = (
            1 + hops * per_hop + (cfg.router_stages - 1) if hops else 0
        )
        return BoundTerms(
            source=source,
            destination=destination,
            hops=hops,
            size_flits=size_flits,
            zero_load=zero_load,
            serialization=size_flits - 1 if hops else 0,
            contention=(hops + 1) * self.contention_per_router if hops else 0,
            wakeup_penalty=hops * self.penalty_per_hop,
        )

    def describe(self) -> Dict[str, object]:
        """Model parameters, for result payloads and reports."""
        return {
            "scheme": getattr(self.scheme, "name", "No-PG"),
            "topology": self.config.topology,
            "router_stages": self.config.router_stages,
            "link_latency": self.config.link_latency,
            "num_vcs": self.config.num_vcs,
            "max_packet_flits": self.max_packet_flits,
            "contention_per_router": self.contention_per_router,
            "wakeup_penalty_per_hop": self.penalty_per_hop,
        }


def certify_non_blocking(
    config: Optional[NoCConfig] = None,
    scheme=None,
    reference=None,
) -> Dict[str, object]:
    """Prove (or refute) the non-blocking certificate route by route.

    Compares ``scheme``'s analytical bound against ``reference``'s
    (default: the No-PG always-on baseline) for **every** ordered
    source/destination pair of the fabric.  The certificate holds iff
    the bounds are equal on every route — i.e. power gating adds
    nothing to any packet's certified worst case.

    Returns a JSON-ready verdict: route counts, the number of equal
    routes, the largest per-route gap in cycles, and both models'
    parameters.
    """
    from ..core import PowerPunchPG

    if config is None:
        config = NoCConfig()
    if scheme is None:
        scheme = PowerPunchPG()
    model = LatencyBoundModel(config, scheme)
    base = LatencyBoundModel(config, reference)
    routes = equal = 0
    max_gap = 0
    worst_route = None
    for source in range(config.num_nodes):
        for destination in range(config.num_nodes):
            if source == destination:
                continue
            routes += 1
            gap = (
                model.bound(source, destination).total
                - base.bound(source, destination).total
            )
            if gap == 0:
                equal += 1
            elif gap > max_gap:
                max_gap = gap
                worst_route = [source, destination]
    return {
        "scheme": getattr(scheme, "name", type(scheme).__name__),
        "reference": getattr(reference, "name", "No-PG"),
        "routes": routes,
        "equal_routes": equal,
        "non_blocking": equal == routes,
        "max_gap_cycles": max_gap,
        "worst_route": worst_route,
        "wakeup_penalty_per_hop": model.penalty_per_hop,
        "model": model.describe(),
    }
