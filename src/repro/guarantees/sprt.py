"""Wald's sequential probability ratio test for Bernoulli proportions.

Statistical model checking of reliability properties: instead of
burning a fixed ``--samples`` budget and reading a confidence interval
afterwards, an :class:`SPRT` decides the hypothesis *while sampling*
and stops at the first trial where the evidence crosses a threshold —
typically far earlier than the fixed-sample campaign for any ``p``
away from the indifference region.

The test discriminates

* **H0** (``accept``): the success probability is at least ``p0``
  (e.g. "P(clean delivery) >= 0.999"), versus
* **H1** (``reject``): it is at most ``p1 < p0``.

After each Bernoulli observation the log-likelihood ratio

    ``llr += log(f(x | p1) / f(x | p0))``

is compared against Wald's thresholds ``A = log((1-beta)/alpha)``
(cross upward → accept H1, i.e. *reject* the property) and
``B = log(beta/(1-alpha))`` (cross downward → accept H0).  ``alpha``
bounds the false-rejection probability, ``beta`` the
false-acceptance probability; between the thresholds the test keeps
sampling.  Inside the indifference region ``(p1, p0)`` neither error
bound applies — that is the price of sequential stopping, and why
``p0``/``p1`` should bracket the operating point you care about.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from ..stats_util import wilson_interval


class SPRT:
    """One sequential test over a stream of Bernoulli observations.

    Feed trials with :meth:`update` (or :meth:`update_many`); once a
    verdict is reached the test freezes — further observations are
    ignored, so a batch driver may overshoot the stopping point
    without corrupting the decision.
    """

    def __init__(
        self,
        p0: float,
        p1: float,
        alpha: float = 0.05,
        beta: float = 0.05,
    ) -> None:
        if not 0.0 < p1 < p0 < 1.0:
            raise ValueError(
                f"need 0 < p1 < p0 < 1, got p0={p0} p1={p1} "
                "(p0 is the null 'good' proportion, p1 the alternative)"
            )
        if not 0.0 < alpha < 1.0 or not 0.0 < beta < 1.0:
            raise ValueError("alpha and beta must lie in (0, 1)")
        self.p0 = p0
        self.p1 = p1
        self.alpha = alpha
        self.beta = beta
        #: Per-observation LLR increments.  p1 < p0 makes the success
        #: step negative (evidence for H0) and the failure step
        #: positive (evidence for H1).
        self._success_step = math.log(p1 / p0)
        self._failure_step = math.log((1.0 - p1) / (1.0 - p0))
        self.upper = math.log((1.0 - beta) / alpha)
        self.lower = math.log(beta / (1.0 - alpha))
        self.llr = 0.0
        self.observations = 0
        self.successes = 0
        self.verdict: Optional[str] = None

    # ------------------------------------------------------------------
    def update(self, success: bool) -> Optional[str]:
        """Feed one trial; returns the verdict if the test just decided
        (or had already decided), else ``None``."""
        if self.verdict is not None:
            return self.verdict
        self.observations += 1
        if success:
            self.successes += 1
            self.llr += self._success_step
        else:
            self.llr += self._failure_step
        if self.llr >= self.upper:
            self.verdict = "reject"
        elif self.llr <= self.lower:
            self.verdict = "accept"
        return self.verdict

    def update_many(self, outcomes: Iterable[bool]) -> Optional[str]:
        """Feed trials until exhausted or decided."""
        for outcome in outcomes:
            if self.update(outcome) is not None:
                break
        return self.verdict

    # ------------------------------------------------------------------
    @property
    def min_samples_to_accept(self) -> int:
        """Fewest all-success trials that can accept H0."""
        return math.ceil(self.lower / self._success_step)

    @property
    def min_samples_to_reject(self) -> int:
        """Fewest all-failure trials that can reject H0."""
        return math.ceil(self.upper / self._failure_step)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready state (verdict, counts, thresholds)."""
        return {
            "p0": self.p0,
            "p1": self.p1,
            "alpha": self.alpha,
            "beta": self.beta,
            "observations": self.observations,
            "successes": self.successes,
            "llr": self.llr,
            "upper_threshold": self.upper,
            "lower_threshold": self.lower,
            "verdict": self.verdict,
        }


def wilson_verdict(
    successes: int, trials: int, p0: float, p1: float, z: float = 1.96
) -> str:
    """Fixed-sample counterpart of the SPRT decision.

    ``accept`` when the Wilson 95% interval excludes the alternative
    (lower bound above ``p1``), ``reject`` when it excludes the null
    (upper bound below ``p0``), ``undecided`` otherwise — the verdict a
    fixed ``--samples`` reliability campaign supports, used to
    cross-check that sequential stopping reaches the same conclusion
    on fewer trials.
    """
    if not 0.0 < p1 < p0 < 1.0:
        raise ValueError(f"need 0 < p1 < p0 < 1, got p0={p0} p1={p1}")
    lower, upper = wilson_interval(successes, trials, z)
    if lower > p1:
        return "accept"
    if upper < p0:
        return "reject"
    return "undecided"
