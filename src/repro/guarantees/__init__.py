"""Certified worst-case latency bounds and statistical model checking.

Three layers turn the paper's non-blocking claim into a
machine-checkable guarantee (see ``docs/guarantees.md``):

* :mod:`~repro.guarantees.bounds` — analytical per-route worst-case
  latency bounds composed from the pipeline model, with a per-scheme
  wakeup penalty; :func:`certify_non_blocking` proves PowerPunch's
  bound equals No-PG's route by route.
* :mod:`~repro.guarantees.checker` — :class:`BoundChecker`, runtime
  enforcement as a delivery-stream invariant (``--bounds``).
* :mod:`~repro.guarantees.sprt` — Wald's sequential probability ratio
  test for early-stopping reliability campaigns (``--sprt``).
"""

from .bounds import (
    BoundTerms,
    LatencyBoundModel,
    UnboundableConfigError,
    certify_non_blocking,
    resolved_punch_hops,
    wakeup_penalty_per_hop,
)
from .checker import BoundChecker
from .sprt import SPRT, wilson_verdict

__all__ = [
    "BoundChecker",
    "BoundTerms",
    "LatencyBoundModel",
    "SPRT",
    "UnboundableConfigError",
    "certify_non_blocking",
    "resolved_punch_hops",
    "wakeup_penalty_per_hop",
    "wilson_verdict",
]
