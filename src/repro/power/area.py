"""Hardware-cost model for Power Punch (paper Sec. 6.6(1)).

The paper reports that punch-signal wiring plus control logic adds only
~2.4% NoC area on top of conventional power-gating: each bit of a punch
signal is a direct combinational function of the incoming punch signals
(no tables), and the wires are 5/2 bits against 128-bit flit channels.

This module estimates that overhead from first principles so the claim
can be regenerated for any mesh/punch configuration:

* **wiring**: punch wires per link relative to the flit channel width,
  weighted by the share of link wiring in NoC area;
* **logic**: the merge/relay function per direction needs on the order
  of one small gate cone per punch-code bit per input signal; we count
  2-input gate equivalents and compare with a router's gate budget.

The numbers are deliberately conservative (rounded up); the test
asserts the total lands in the low single-digit percent range the
paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.punch_encoding import PunchEncodingAnalysis
from ..noc.topology import Direction, MeshTopology


@dataclass(frozen=True)
class RouterAreaBudget:
    """Approximate area composition of a VC router + its link wiring.

    Shares follow published router breakdowns (buffers dominate, then
    crossbar, then allocators); ``gate_equivalents`` is the scale used
    to convert punch logic cones into area.
    """

    #: Flit channel width in bits (Table 2: 128-bit links).
    link_width_bits: int = 128
    #: Fraction of NoC area taken by inter-router wiring/channels.
    wiring_share: float = 0.30
    #: Router logic gate-equivalents (buffers + crossbar + allocators
    #: of a 5-port, 6-VC, 128-bit router; order 100k NAND2).
    router_gate_equivalents: int = 100_000
    #: Fraction of NoC area that is router logic (the rest is wiring).
    router_share: float = 0.70


@dataclass
class PunchAreaEstimate:
    """Wiring + logic overhead estimate with the widths used."""
    wiring_overhead: float
    logic_overhead: float
    widths: Dict[str, int]

    @property
    def total_overhead(self) -> float:
        """Wiring plus logic overhead as a fraction of NoC area."""
        return self.wiring_overhead + self.logic_overhead


def estimate_punch_area(
    topology: MeshTopology,
    hops: int = 3,
    budget: RouterAreaBudget = RouterAreaBudget(),
    reference_router: int = None,
) -> PunchAreaEstimate:
    """Estimate Power Punch's NoC area overhead for a mesh design."""
    analysis = PunchEncodingAnalysis(topology, hops=hops)
    if reference_router is None:
        # A fully interior router sees the worst-case widths.
        reference_router = topology.node_at(topology.width // 2, topology.height // 2)
    x_bits = analysis.analyze_link(reference_router, Direction.XPOS).width_bits
    y_bits = analysis.analyze_link(reference_router, Direction.YPOS).width_bits

    # --- wiring: punch bits ride alongside each link's flit channel ---
    # Per router, data wiring ~ 4 links * link_width; punch wiring adds
    # 2 * x_bits + 2 * y_bits.
    punch_bits = 2 * x_bits + 2 * y_bits
    data_bits = 4 * budget.link_width_bits
    wiring_overhead = budget.wiring_share * punch_bits / data_bits

    # --- logic: merge/relay cones in the PG controller ----------------
    # Each output punch bit is a combinational function of the punch
    # inputs that can feed it (paper: "a direct combinational logic
    # function ... no need of any table").  Budget ~8 NAND2 equivalents
    # per (output bit x contributing input bit) pair, plus comparator
    # and handshake logic per direction.
    x_inputs = x_bits + 4  # upstream X punch + local targets
    y_inputs = x_bits + y_bits + 4  # X and Y- punches feed Y+ (turns)
    gates = 2 * (8 * x_bits * x_inputs) + 2 * (8 * y_bits * y_inputs)
    gates += 4 * 120  # per-direction handshake/control
    logic_overhead = budget.router_share * gates / budget.router_gate_equivalents

    return PunchAreaEstimate(
        wiring_overhead=wiring_overhead,
        logic_overhead=logic_overhead,
        widths={"x_bits": x_bits, "y_bits": y_bits},
    )
