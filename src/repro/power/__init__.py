"""DSENT-style router energy model and hardware-cost estimation."""

from .area import PunchAreaEstimate, RouterAreaBudget, estimate_punch_area
from .constants import DEFAULT_CONSTANTS, PowerConstants
from .model import EnergyBreakdown, EnergyModel

__all__ = [
    "DEFAULT_CONSTANTS",
    "EnergyBreakdown",
    "EnergyModel",
    "PowerConstants",
    "PunchAreaEstimate",
    "RouterAreaBudget",
    "estimate_punch_area",
]
