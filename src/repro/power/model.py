"""Router energy accounting (the paper's Fig. 11 and Fig. 12 metrics).

Energy is decomposed exactly as in Fig. 11:

* **dynamic** — per-flit router and link traversal energy;
* **static** — leakage of powered-on (or waking) routers;
* **power-gating overhead** — everything power-gating wastes: the
  sleep/wake event energy, the always-on PG controllers, and the
  generation/propagation of punch signals.

For the fair comparison of Sec. 6.3, ``net_static`` adds the overhead
to the static component, and all values can be normalized to a No-PG
reference run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.schemes import PowerGatedScheme
from ..noc.network import Network
from ..noc.policy import PowerPolicy
from .constants import DEFAULT_CONSTANTS, PowerConstants


@dataclass
class EnergyBreakdown:
    """Energy totals (joules) over an accounting window of ``cycles``."""

    dynamic: float
    static: float
    overhead: float
    cycles: int
    num_routers: int

    @property
    def total(self) -> float:
        """Dynamic + static + overhead energy (J)."""
        return self.dynamic + self.static + self.overhead

    @property
    def net_static(self) -> float:
        """Static energy charged with the PG overhead (Sec. 6.3)."""
        return self.static + self.overhead

    def static_power_watts(self, constants: PowerConstants = DEFAULT_CONSTANTS) -> float:
        """Average net static power over the window (Fig. 12 bottom row)."""
        if self.cycles == 0:
            return 0.0
        seconds = self.cycles / constants.frequency
        return self.net_static / seconds

    def normalized_to(self, reference: "EnergyBreakdown") -> dict:
        """Component shares relative to a No-PG reference total."""
        ref = reference.total
        return {
            "dynamic": self.dynamic / ref,
            "static": self.static / ref,
            "overhead": self.overhead / ref,
            "total": self.total / ref,
        }


@dataclass
class _Snapshot:
    cycles: int
    router_traversals: int
    link_traversals: int
    on_cycles: int
    wake_events: int
    punch_transmissions: int


class EnergyModel:
    """Computes :class:`EnergyBreakdown` from simulator activity counters."""

    def __init__(self, constants: PowerConstants = DEFAULT_CONSTANTS) -> None:
        self.constants = constants

    # ------------------------------------------------------------------
    def snapshot(self, network: Network) -> _Snapshot:
        """Capture counters so a later accounting can cover a window."""
        policy = network.policy
        on_cycles, wake_events, punch = self._policy_counters(network, policy)
        return _Snapshot(
            cycles=network.cycle,
            router_traversals=network.stats.router_traversals,
            link_traversals=network.stats.link_traversals,
            on_cycles=on_cycles,
            wake_events=wake_events,
            punch_transmissions=punch,
        )

    def account(
        self, network: Network, since: Optional[_Snapshot] = None
    ) -> EnergyBreakdown:
        """Energy consumed since ``since`` (or since the beginning)."""
        start = since or _Snapshot(0, 0, 0, 0, 0, 0)
        end = self.snapshot(network)
        c = self.constants
        num_routers = network.config.num_nodes
        cycles = end.cycles - start.cycles

        # The per-router energy constants are calibrated for the
        # paper's 5-port mesh router (DSENT, Table 2).  Other fabrics
        # scale the router-local terms by their radix: buffers and
        # crossbar dominate both the static floor and the per-flit
        # traversal energy, and both grow with port count.  The factor
        # is exactly 1.0 on the mesh, leaving its numbers bit-identical.
        port_scale = network.topology.num_ports / 5.0
        dynamic = (
            (end.router_traversals - start.router_traversals)
            * c.flit_router_energy
            * port_scale
            + (end.link_traversals - start.link_traversals) * c.flit_link_energy
        )
        static = (
            (end.on_cycles - start.on_cycles)
            * c.router_static_energy_per_cycle
            * port_scale
        )

        overhead = 0.0
        if isinstance(network.policy, PowerGatedScheme):
            overhead += (
                end.wake_events - start.wake_events
            ) * c.power_gate_event_energy
            overhead += (
                end.punch_transmissions - start.punch_transmissions
            ) * c.punch_link_energy
            overhead += (
                cycles * num_routers * c.controller_static_energy_per_cycle
            )
        return EnergyBreakdown(
            dynamic=dynamic,
            static=static,
            overhead=overhead,
            cycles=cycles,
            num_routers=num_routers,
        )

    # ------------------------------------------------------------------
    def _policy_counters(self, network: Network, policy: PowerPolicy):
        if isinstance(policy, PowerGatedScheme):
            on_cycles = sum(
                ctl.active_cycles + ctl.waking_cycles for ctl in policy.controllers
            )
            wake_events = policy.total_wake_events()
            punch = policy.fabric.link_transmissions if policy.fabric else 0
            return on_cycles, wake_events, punch
        # No-PG: every router is on every cycle.
        return network.cycle * network.config.num_nodes, 0, 0
