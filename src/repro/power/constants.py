"""Router power/energy constants (45 nm class).

The paper obtains router power from DSENT at 45 nm integrated with
gem5/GARNET; absolute numbers here are calibrated to reproduce the two
anchors its evaluation depends on:

* total router static power of an 8x8 mesh around 1.75 W (Fig. 12,
  No-PG curves), i.e. ~27 mW per router at 2 GHz;
* static power ≈ 64 % of total router power under PARSEC-like loads
  (Sec. 2.1), which fixes the per-flit dynamic energies.

The break-even time (BET = 10 cycles), the 4-cycle idle timeout and the
8-cycle wakeup latency follow Sec. 5 and the prior work it cites.
Energy results in the paper are reported normalized to No-PG, so only
these ratios — not the absolute joules — need to be faithful.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PowerConstants:
    """Energy model parameters; all energies in joules, per cycle/event."""

    #: Clock frequency (Hz).
    frequency: float = 2.0e9
    #: Router static (leakage) power when powered on, watts.
    router_static_power: float = 27.3e-3
    #: Dynamic energy per flit per router traversal (buffer write/read,
    #: VC/SW allocation, crossbar), joules.
    flit_router_energy: float = 65.0e-12
    #: Dynamic energy per flit per link traversal, joules.
    flit_link_energy: float = 20.0e-12
    #: Break-even time in cycles: the gated-off time needed to amortize
    #: one full power-gating event (Sec. 2.3 footnote 2).
    break_even_cycles: int = 10
    #: Always-on power-gating controller static power, as a fraction of
    #: router static power (the paper reports 2.4 % extra NoC area for
    #: punch wiring and control logic).
    controller_static_fraction: float = 0.024
    #: Energy per (merged) punch-signal link transmission: a ~5-bit
    #: low-swing control signal vs. a 128-bit data link.
    punch_link_energy: float = 1.0e-12

    @property
    def router_static_energy_per_cycle(self) -> float:
        """Static energy one powered-on router leaks per cycle (J)."""
        return self.router_static_power / self.frequency

    @property
    def controller_static_energy_per_cycle(self) -> float:
        """Always-on PG controller leakage per cycle (J)."""
        return self.controller_static_fraction * self.router_static_energy_per_cycle

    @property
    def power_gate_event_energy(self) -> float:
        """Energy overhead of one sleep/wake pair.

        By the definition of break-even time, one power-gating event
        (charging capacitance, distributing the sleep signal) costs the
        static energy of ``break_even_cycles`` cycles.
        """
        return self.break_even_cycles * self.router_static_energy_per_cycle


DEFAULT_CONSTANTS = PowerConstants()
