"""Shared statistics utilities.

Two small, heavily reused pieces live here so the reliability
estimator, the guarantees layer and the core stats counters share one
tested implementation each:

* :func:`wilson_interval` — the Wilson score interval for a binomial
  proportion (previously private to ``experiments/reliability.py``;
  the SPRT layer needs it too for its fixed-sample comparison
  verdicts).
* :class:`ReservoirQuantiles` — a fixed-size uniform reservoir sampler
  (Vitter's algorithm R) for latency quantiles, so long runs report
  p50/p95/p99 in bounded memory instead of keeping one entry per
  delivered packet.

Both are dependency-free (no ``repro.noc`` imports) so any layer can
use them without cycles.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Unlike the normal approximation it stays inside [0, 1] and behaves
    at p near 0/1 — exactly where reliability estimates live.
    """
    if trials <= 0:
        return (0.0, 1.0)
    if successes < 0 or successes > trials:
        raise ValueError(f"successes={successes} outside [0, {trials}]")
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2.0 * trials)) / denom
    half = (z / denom) * math.sqrt(
        p * (1.0 - p) / trials + z2 / (4.0 * trials * trials)
    )
    return (max(0.0, center - half), min(1.0, center + half))


# 64-bit LCG (Knuth's MMIX constants).  The reservoir needs a private,
# serializable random stream: sharing ``random.Random`` state with the
# traffic generators would perturb seeded simulations, and pickling
# ``Random.getstate()`` into JSON is awkward.  A single integer state
# round-trips exactly.
_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_LCG_MASK = (1 << 64) - 1

#: Default reservoir seed (golden-ratio constant; any fixed value works
#: — what matters is that every run uses the same one).
DEFAULT_RESERVOIR_SEED = 0x9E3779B97F4A7C15


class ReservoirQuantiles:
    """Fixed-size uniform reservoir for streaming quantile estimates.

    Algorithm R: the first ``capacity`` values are kept verbatim; value
    number ``n > capacity`` replaces a uniformly random slot with
    probability ``capacity / n``.  Every slot is then a uniform sample
    of the stream, so the sorted reservoir's nearest-rank order
    statistics estimate the stream's quantiles — with O(capacity)
    memory regardless of stream length, and *exactly* (no sampling
    error) while ``count <= capacity``.

    Determinism: the replacement stream comes from a private 64-bit
    LCG seeded by ``seed``, so two identical runs build bit-identical
    reservoirs, and :meth:`to_dict`/:meth:`from_dict` round-trip the
    full state (including the LCG position — a restored reservoir
    continues exactly where the original would have).
    """

    __slots__ = ("capacity", "seed", "count", "samples", "_state")

    def __init__(
        self,
        capacity: int = 512,
        seed: int = DEFAULT_RESERVOIR_SEED,
    ) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self.seed = seed
        self.count = 0
        self.samples: List[float] = []
        self._state = seed & _LCG_MASK

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Offer one stream value to the reservoir."""
        self.count += 1
        if len(self.samples) < self.capacity:
            self.samples.append(value)
            return
        self._state = (self._state * _LCG_A + _LCG_C) & _LCG_MASK
        # High bits of an LCG are the well-mixed ones.
        j = (self._state >> 16) % self.count
        if j < self.capacity:
            self.samples[j] = value

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile estimate (``None`` while empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[rank]

    @property
    def p50(self) -> Optional[float]:
        return self.quantile(0.50)

    @property
    def p95(self) -> Optional[float]:
        return self.quantile(0.95)

    @property
    def p99(self) -> Optional[float]:
        return self.quantile(0.99)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Full state, JSON-ready.  ``from_dict`` inverts it exactly."""
        return {
            "capacity": self.capacity,
            "seed": self.seed,
            "count": self.count,
            "state": self._state,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, dump: Dict[str, object]) -> "ReservoirQuantiles":
        """Rebuild a reservoir from a :meth:`to_dict` dump."""
        reservoir = cls(capacity=int(dump["capacity"]), seed=int(dump["seed"]))
        reservoir.count = int(dump["count"])
        reservoir.samples = list(dump["samples"])
        reservoir._state = int(dump["state"])
        if len(reservoir.samples) > reservoir.capacity:
            raise ValueError(
                f"reservoir dump holds {len(reservoir.samples)} samples "
                f"but capacity is {reservoir.capacity}"
            )
        return reservoir

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReservoirQuantiles):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReservoirQuantiles(capacity={self.capacity}, "
            f"count={self.count}, kept={len(self.samples)})"
        )
