"""Open-loop synthetic traffic: patterns and Bernoulli generators."""

from .generator import SyntheticTraffic, measure
from .patterns import PATTERNS, get_pattern, hotspot

__all__ = ["PATTERNS", "SyntheticTraffic", "get_pattern", "hotspot", "measure"]
