"""Synthetic traffic patterns.

The paper's Fig. 12 sweeps uniform-random, transpose and bit-complement
traffic across the full load range; a few further classics are included
for completeness (tornado, bit-reverse, neighbor, hotspot).

Patterns address nodes through the :class:`~repro.noc.topology.Topology`
coordinate API, so they apply to every registered fabric; a pattern
whose definition is degenerate on a topology (transpose on a
one-dimensional ring) rejects it with a typed error instead of
silently collapsing traffic onto one node.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from ..noc.errors import UnsupportedTopologyError
from ..noc.topology import Topology

#: A pattern maps (source, topology, rng) -> destination (may equal the
#: source, in which case the generator redraws or skips).
PatternFn = Callable[[int, Topology, random.Random], int]


def uniform_random(source: int, topology: Topology, rng: random.Random) -> int:
    """Destination drawn uniformly from all other nodes."""
    dst = rng.randrange(topology.num_nodes - 1)
    return dst if dst < source else dst + 1


def transpose(source: int, topology: Topology, rng: random.Random) -> int:
    """Node (x, y) sends to (y, x); requires a two-dimensional fabric."""
    if topology.height == 1:
        raise UnsupportedTopologyError(
            "transpose traffic",
            topology.name,
            supported=("mesh", "torus"),
            reason="(x, y) -> (y, x) is degenerate on a one-dimensional "
            "fabric",
        )
    c = topology.coord(source)
    return topology.node_at(c.y % topology.width, c.x % topology.height)


def bit_complement(source: int, topology: Topology, rng: random.Random) -> int:
    """Node i sends to N-1-i."""
    return topology.num_nodes - 1 - source


def bit_reverse(source: int, topology: Topology, rng: random.Random) -> int:
    """Node i sends to the bit-reversal of i (power-of-two fabrics)."""
    bits = (topology.num_nodes - 1).bit_length()
    value = 0
    for b in range(bits):
        if source & (1 << b):
            value |= 1 << (bits - 1 - b)
    return value % topology.num_nodes


def tornado(source: int, topology: Topology, rng: random.Random) -> int:
    """Half-width offset along X (adversarial for rings, benign on mesh)."""
    c = topology.coord(source)
    return topology.node_at((c.x + topology.width // 2) % topology.width, c.y)


def neighbor(source: int, topology: Topology, rng: random.Random) -> int:
    """Node (x, y) sends to (x+1, y) with wraparound."""
    c = topology.coord(source)
    return topology.node_at((c.x + 1) % topology.width, c.y)


def hotspot(
    hotspot_node: int = 0, hotspot_fraction: float = 0.2
) -> PatternFn:
    """Uniform random with a fraction of traffic aimed at one node."""

    def pattern(source: int, topology: Topology, rng: random.Random) -> int:
        if rng.random() < hotspot_fraction and source != hotspot_node:
            return hotspot_node
        return uniform_random(source, topology, rng)

    return pattern


PATTERNS: Dict[str, PatternFn] = {
    "uniform_random": uniform_random,
    "transpose": transpose,
    "bit_complement": bit_complement,
    "bit_reverse": bit_reverse,
    "tornado": tornado,
    "neighbor": neighbor,
}


def get_pattern(name: str) -> PatternFn:
    """Look up a traffic pattern by name."""
    try:
        return PATTERNS[name]
    except KeyError:
        raise ValueError(
            f"unknown pattern {name!r}; available: {sorted(PATTERNS)}"
        ) from None
