"""Open-loop synthetic traffic generation.

Injects a Bernoulli packet process per node at a configurable flit
injection rate (flits/node/cycle — the x-axis of the paper's Fig. 12),
mixing single-flit control packets and five-flit data packets across
the three virtual networks.

Injection-slack modeling: in the full system, most packets are born
from an L2/directory access whose start is known several cycles before
the message reaches the NI — the paper's *slack 2* (Sec. 4.2, valid-bit
``1`` for L2/directory, ``0`` for L1).  The generator reproduces this
by drawing each packet ``slack2_lead`` cycles early and firing the NI's
early notice for the ``slack2_fraction`` of packets that model
L2/directory-sourced messages; the message itself only enters the NI
when the modeled access completes.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional, Tuple

from ..noc.network import Network
from ..noc.packet import (
    CONTROL_PACKET_FLITS,
    DATA_PACKET_FLITS,
    Packet,
    VirtualNetwork,
)
from .patterns import PatternFn, get_pattern


class SyntheticTraffic:
    """Bernoulli traffic source driving every node of a network."""

    def __init__(
        self,
        network: Network,
        pattern: "PatternFn | str",
        injection_rate: float,
        data_fraction: float = 0.5,
        seed: int = 1,
        slack2_fraction: float = 0.75,
        slack2_lead: int = 6,
    ) -> None:
        if not (0.0 <= injection_rate < 1.0):
            raise ValueError("injection_rate must be in [0, 1) flits/node/cycle")
        if not (0.0 <= data_fraction <= 1.0):
            raise ValueError("data_fraction must be in [0, 1]")
        self.network = network
        self.pattern = get_pattern(pattern) if isinstance(pattern, str) else pattern
        self.injection_rate = injection_rate
        self.data_fraction = data_fraction
        self.rng = random.Random(seed)
        self.slack2_fraction = slack2_fraction
        self.slack2_lead = slack2_lead
        avg_flits = (
            data_fraction * DATA_PACKET_FLITS
            + (1.0 - data_fraction) * CONTROL_PACKET_FLITS
        )
        #: Packet-level Bernoulli probability per node per cycle.
        self.packet_rate = injection_rate / avg_flits
        #: Packets drawn early (slack-2 modeling), keyed by release cycle.
        self._deferred: Deque[Tuple[int, Packet]] = deque()
        self.generated_packets = 0

    # ------------------------------------------------------------------
    def step(self, cycle: Optional[int] = None) -> None:
        """Draw this cycle's packets and release any matured ones.

        Call once per cycle *before* ``network.step()``.
        """
        if cycle is None:
            cycle = self.network.cycle
        self._release_deferred(cycle)
        rate = self.packet_rate
        rng = self.rng
        topology = self.network.topology
        for node in range(topology.num_nodes):
            if rng.random() >= rate:
                continue
            destination = self.pattern(node, topology, rng)
            if destination == node:
                continue
            packet = self._make_packet(node, destination, cycle)
            self.generated_packets += 1
            if rng.random() < self.slack2_fraction and self.slack2_lead > 0:
                # L2/directory-sourced: the node knows this packet is
                # coming slack2_lead cycles before it reaches the NI.
                self.network.interfaces[node].early_notice(cycle)
                self._deferred.append((cycle + self.slack2_lead, packet))
            else:
                self.network.inject(packet)

    def _release_deferred(self, cycle: int) -> None:
        while self._deferred and self._deferred[0][0] <= cycle:
            _, packet = self._deferred.popleft()
            self.network.inject(packet)

    def _make_packet(self, source: int, destination: int, cycle: int) -> Packet:
        if self.rng.random() < self.data_fraction:
            return Packet(
                source, destination, VirtualNetwork.RESPONSE, DATA_PACKET_FLITS, cycle
            )
        vnet = (
            VirtualNetwork.REQUEST
            if self.rng.random() < 0.5
            else VirtualNetwork.FORWARD
        )
        return Packet(source, destination, vnet, CONTROL_PACKET_FLITS, cycle)

    # ------------------------------------------------------------------
    def run(self, cycles: int) -> None:
        """Drive traffic and the network for ``cycles`` cycles."""
        for _ in range(cycles):
            self.step()
            self.network.step()

    def drain(self, max_cycles: int = 200_000) -> None:
        """Stop generating and let in-flight packets finish."""
        self._release_all()
        self.network.run_until_drained(max_cycles)

    def _release_all(self) -> None:
        while self._deferred:
            _, packet = self._deferred.popleft()
            self.network.inject(packet)


def measure(
    network: Network,
    traffic: SyntheticTraffic,
    warmup: int,
    measurement: int,
    drain: bool = True,
):
    """Run warmup + measurement windows; return the network stats.

    Statistics only cover packets created inside the measurement
    window, matching the paper's "statistics are collected after
    sufficiently long NoC warm up" (Sec. 6.4).
    """
    traffic.run(warmup)
    network.stats.measure_from = network.cycle
    traffic.run(measurement)
    if drain:
        traffic.drain()
    return network.stats
