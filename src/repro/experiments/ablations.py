"""Ablation studies for Power Punch design choices.

Not figures from the paper, but sweeps over the design decisions its
text argues for:

* **punch horizon** (Sec. 4.1): fewer hops than ``ceil(Twakeup /
  Trouter)`` leaks wakeup latency; more hops wake routers too early and
  squander gated-off cycles ("sending wakeup signals with 5 hops or
  more would be counter-productive");
* **idle timeout** (Sec. 2.3): short timeouts gate more aggressively
  but mis-filter short idle periods (BET = 10 cycles);
* **injection slack decomposition** (Sec. 4.2): slack 1 (NI pipeline)
  vs slack 2 (resource-access lead) contributions to hiding the local
  router's wakeup;
* **forewarning** (Sec. 4.3): punch signals double as precise
  packet-arrival predictors; disabling that filter shows the
  wake-thrash it prevents.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence, Tuple

from ..core import PowerPunchPG, PowerPunchSignal
from ..noc import Network, NoCConfig
from ..power import EnergyModel
from ..traffic import SyntheticTraffic
from .common import format_table

DEFAULT_LOAD = 0.01


def _run(scheme, load=DEFAULT_LOAD, measurement=4000, seed=7, config=None):
    network = Network(config or NoCConfig(), scheme)
    traffic = SyntheticTraffic(network, "uniform_random", load, seed=seed)
    model = EnergyModel()
    traffic.run(1000)
    snap = model.snapshot(network)
    network.stats.measure_from = network.cycle
    traffic.run(measurement)
    energy = model.account(network, since=snap)
    stats = network.stats
    off = sum(c.off_cycles for c in scheme.controllers)
    total = sum(
        c.active_cycles + c.off_cycles + c.waking_cycles for c in scheme.controllers
    )
    return {
        "latency": stats.avg_total_latency,
        "wait": stats.avg_wakeup_wait,
        "off_fraction": off / total if total else 0.0,
        "wake_events": scheme.total_wake_events(),
        "net_static": energy.net_static,
    }


# ----------------------------------------------------------------------
def punch_hops_sweep(
    hops_values: Sequence[int] = (1, 2, 3, 4),
    wakeup_latency: int = 8,
    measurement: int = 4000,
) -> List[Tuple[int, dict]]:
    """Latency/energy vs punch horizon (3-stage router, Twakeup=8)."""
    return [
        (
            hops,
            _run(
                PowerPunchSignal(wakeup_latency=wakeup_latency, punch_hops=hops),
                measurement=measurement,
            ),
        )
        for hops in hops_values
    ]


def timeout_sweep(
    timeouts: Sequence[int] = (2, 4, 8, 16), measurement: int = 4000
) -> List[Tuple[int, dict]]:
    """Idle-timeout sensitivity for the full Power Punch scheme."""
    return [
        (t, _run(PowerPunchPG(timeout=t), measurement=measurement)) for t in timeouts
    ]


def slack_decomposition(measurement: int = 4000) -> List[Tuple[str, dict]]:
    """Contribution of each injection-node slack to hiding wakeups."""
    signal_only = PowerPunchSignal()
    slack1_only = PowerPunchPG()
    slack1_only.slack2 = False
    full = PowerPunchPG()
    return [
        ("punch signals only", _run(signal_only, measurement=measurement)),
        ("+ slack 1 (NI pipeline)", _run(slack1_only, measurement=measurement)),
        ("+ slack 2 (access lead)", _run(full, measurement=measurement)),
    ]


def bet_sweep(
    bet_values: Sequence[int] = (5, 10, 20, 40), measurement: int = 4000
) -> List[Tuple[int, dict]]:
    """Break-even-time sensitivity (energy only).

    BET scales the per-event power-gating overhead (Sec. 2.3 footnote:
    one sleep/wake pair costs BET cycles of static energy), so larger
    BETs erode net static savings without touching timing.  Both
    schemes run the *same* simulation; only the energy accounting
    changes.
    """
    from ..power import EnergyModel, PowerConstants

    scheme = PowerPunchPG()
    network = Network(NoCConfig(), scheme)
    traffic = SyntheticTraffic(network, "uniform_random", DEFAULT_LOAD, seed=7)
    traffic.run(1000 + measurement)
    results = []
    for bet in bet_values:
        model = EnergyModel(PowerConstants(break_even_cycles=bet))
        energy = model.account(network)
        results.append(
            (
                bet,
                {
                    "latency": network.stats.avg_total_latency,
                    "wait": network.stats.avg_wakeup_wait,
                    "off_fraction": 0.0,
                    "wake_events": scheme.total_wake_events(),
                    "net_static": energy.net_static,
                },
            )
        )
    return results


def forewarning_ablation(measurement: int = 4000) -> List[Tuple[str, dict]]:
    """Punch-based short-idle filtering on vs off.

    At the default 4-cycle timeout the per-cycle punch re-assertion
    alone keeps routers from sleeping under an approaching packet (the
    longest punch gap — a flit's 3 cycles in flight — is shorter than
    the timeout), so the forewarning window is measured where it
    actually bites: an aggressive 2-cycle timeout, where gaps would
    otherwise cause wake-thrash.
    """
    with_filter = PowerPunchPG(timeout=2)
    without = PowerPunchPG(timeout=2)
    without.use_forewarning = False
    return [
        ("forewarning on", _run(with_filter, measurement=measurement)),
        ("forewarning off", _run(without, measurement=measurement)),
    ]


# ----------------------------------------------------------------------
def _table(title: str, rows: List[Tuple[object, dict]]) -> str:
    return format_table(
        ["config", "latency", "wait/pkt", "off %", "wakes", "net static (J)"],
        [
            [
                key,
                res["latency"],
                res["wait"],
                f"{res['off_fraction']:.1%}",
                res["wake_events"],
                f"{res['net_static']:.3e}",
            ]
            for key, res in rows
        ],
        title=title,
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Run and print all ablation tables."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--measurement", type=int, default=4000)
    args = parser.parse_args(argv)
    m = args.measurement
    print(_table("Ablation: punch horizon (Twakeup=8, 3-stage)", punch_hops_sweep(measurement=m)))
    print()
    print(_table("Ablation: idle timeout", timeout_sweep(measurement=m)))
    print()
    print(_table("Ablation: injection slack decomposition", slack_decomposition(measurement=m)))
    print()
    print(_table("Ablation: punch forewarning filter", forewarning_ablation(measurement=m)))
    print()
    print(_table("Ablation: break-even time (energy accounting only)", bet_sweep(measurement=m)))


if __name__ == "__main__":
    main()
