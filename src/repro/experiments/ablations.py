"""Ablation studies for Power Punch design choices.

Not figures from the paper, but sweeps over the design decisions its
text argues for:

* **punch horizon** (Sec. 4.1): fewer hops than ``ceil(Twakeup /
  Trouter)`` leaks wakeup latency; more hops wake routers too early and
  squander gated-off cycles ("sending wakeup signals with 5 hops or
  more would be counter-productive");
* **idle timeout** (Sec. 2.3): short timeouts gate more aggressively
  but mis-filter short idle periods (BET = 10 cycles);
* **injection slack decomposition** (Sec. 4.2): slack 1 (NI pipeline)
  vs slack 2 (resource-access lead) contributions to hiding the local
  router's wakeup;
* **forewarning** (Sec. 4.3): punch signals double as precise
  packet-arrival predictors; disabling that filter shows the
  wake-thrash it prevents.

Every sweep point is a ``synthetic_metrics`` (or ``bet_account``)
campaign cell, so ablations share the engine's cache and fan-out with
the figure scripts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..campaign import Campaign, CellSpec, campaign_argparser, engine_options, require_mesh_topology
from .common import format_table

DEFAULT_LOAD = 0.01


def _metrics_cell(
    scheme: str,
    measurement: int,
    scheme_kwargs=None,
    scheme_attrs=None,
    load: float = DEFAULT_LOAD,
) -> CellSpec:
    return CellSpec.synthetic(
        "uniform_random",
        load,
        scheme,
        measurement=measurement,
        drain=False,
        scheme_kwargs=scheme_kwargs,
        scheme_attrs=scheme_attrs,
        metrics=True,
    )


def _run_keyed(
    name: str,
    keyed_cells: Sequence[Tuple[object, CellSpec]],
    **engine,
) -> List[Tuple[object, dict]]:
    """Run cells and re-attach each sweep's key to its payload."""
    campaign = Campaign(name=name, cells=tuple(cell for _, cell in keyed_cells))
    payloads = campaign.run(**engine)
    return [(key, payload) for (key, _), payload in zip(keyed_cells, payloads)]


# ----------------------------------------------------------------------
def punch_hops_sweep(
    hops_values: Sequence[int] = (1, 2, 3, 4),
    wakeup_latency: int = 8,
    measurement: int = 4000,
    **engine,
) -> List[Tuple[int, dict]]:
    """Latency/energy vs punch horizon (3-stage router, Twakeup=8)."""
    cells = [
        (
            hops,
            _metrics_cell(
                "PowerPunch-Signal",
                measurement,
                scheme_kwargs={"wakeup_latency": wakeup_latency, "punch_hops": hops},
            ),
        )
        for hops in hops_values
    ]
    return _run_keyed("ablation-punch-hops", cells, **engine)


def timeout_sweep(
    timeouts: Sequence[int] = (2, 4, 8, 16), measurement: int = 4000, **engine
) -> List[Tuple[int, dict]]:
    """Idle-timeout sensitivity for the full Power Punch scheme."""
    cells = [
        (
            t,
            _metrics_cell(
                "PowerPunch-PG", measurement, scheme_kwargs={"timeout": t}
            ),
        )
        for t in timeouts
    ]
    return _run_keyed("ablation-timeout", cells, **engine)


def slack_decomposition(
    measurement: int = 4000, **engine
) -> List[Tuple[str, dict]]:
    """Contribution of each injection-node slack to hiding wakeups."""
    cells = [
        (
            "punch signals only",
            _metrics_cell("PowerPunch-Signal", measurement),
        ),
        (
            "+ slack 1 (NI pipeline)",
            _metrics_cell(
                "PowerPunch-PG", measurement, scheme_attrs={"slack2": False}
            ),
        ),
        (
            "+ slack 2 (access lead)",
            _metrics_cell("PowerPunch-PG", measurement),
        ),
    ]
    return _run_keyed("ablation-slack", cells, **engine)


def bet_sweep(
    bet_values: Sequence[int] = (5, 10, 20, 40), measurement: int = 4000, **engine
) -> List[Tuple[int, dict]]:
    """Break-even-time sensitivity (energy only).

    BET scales the per-event power-gating overhead (Sec. 2.3 footnote:
    one sleep/wake pair costs BET cycles of static energy), so larger
    BETs erode net static savings without touching timing.  Every BET
    cell replays the *same* deterministic simulation; only the energy
    accounting changes, which the identical timing fields prove.
    """
    cells = [
        (
            bet,
            CellSpec.bet(
                "uniform_random",
                DEFAULT_LOAD,
                "PowerPunch-PG",
                bet=bet,
                measurement=measurement,
            ),
        )
        for bet in bet_values
    ]
    return _run_keyed("ablation-bet", cells, **engine)


def forewarning_ablation(
    measurement: int = 4000, **engine
) -> List[Tuple[str, dict]]:
    """Punch-based short-idle filtering on vs off.

    At the default 4-cycle timeout the per-cycle punch re-assertion
    alone keeps routers from sleeping under an approaching packet (the
    longest punch gap — a flit's 3 cycles in flight — is shorter than
    the timeout), so the forewarning window is measured where it
    actually bites: an aggressive 2-cycle timeout, where gaps would
    otherwise cause wake-thrash.
    """
    cells = [
        (
            "forewarning on",
            _metrics_cell(
                "PowerPunch-PG", measurement, scheme_kwargs={"timeout": 2}
            ),
        ),
        (
            "forewarning off",
            _metrics_cell(
                "PowerPunch-PG",
                measurement,
                scheme_kwargs={"timeout": 2},
                scheme_attrs={"use_forewarning": False},
            ),
        ),
    ]
    return _run_keyed("ablation-forewarning", cells, **engine)


# ----------------------------------------------------------------------
def _table(title: str, rows: List[Tuple[object, dict]]) -> str:
    return format_table(
        ["config", "latency", "wait/pkt", "off %", "wakes", "net static (J)"],
        [
            [
                key,
                res["latency"],
                res["wait"],
                f"{res['off_fraction']:.1%}",
                res["wake_events"],
                f"{res['net_static']:.3e}",
            ]
            for key, res in rows
        ],
        title=title,
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Run and print all ablation tables."""
    parser = campaign_argparser(__doc__)
    parser.add_argument("--measurement", type=int, default=4000)
    args = parser.parse_args(argv)
    require_mesh_topology(args, 'the ablations experiment')
    m = args.measurement
    engine = engine_options(args)
    print(_table("Ablation: punch horizon (Twakeup=8, 3-stage)", punch_hops_sweep(measurement=m, **engine)))
    print()
    print(_table("Ablation: idle timeout", timeout_sweep(measurement=m, **engine)))
    print()
    print(_table("Ablation: injection slack decomposition", slack_decomposition(measurement=m, **engine)))
    print()
    print(_table("Ablation: punch forewarning filter", forewarning_ablation(measurement=m, **engine)))
    print()
    print(_table("Ablation: break-even time (energy accounting only)", bet_sweep(measurement=m, **engine)))


if __name__ == "__main__":
    main()
