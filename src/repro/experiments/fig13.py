"""Figure 13: sensitivity to wakeup latency and router pipeline depth.

Uniform-random traffic at the PARSEC-average load rate, a 3-hop punch
signal, and (Twakeup, Trouter) swept over {6, 8, 10} x 3-stage and
{8, 10, 12} x 4-stage.

Expected shape: ConvOpt-PG pays 1.5x-2x latency everywhere;
PowerPunch-PG stays within a few percent of No-PG except the
Twakeup=10 / 3-stage point, where the 3-hop punch (hides up to
3 x Trouter = 9 cycles) cannot cover the full wakeup latency — the
paper reports 9.2% there and notes a 4-hop punch removes it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..campaign import Campaign, CellSpec, campaign_argparser, engine_options, require_mesh_topology
from ..noc import NoCConfig
from .common import RunRecord, format_table

#: (router_stages, wakeup_latency) points of Fig. 13.
DEFAULT_POINTS: List[Tuple[int, int]] = [
    (3, 6),
    (3, 8),
    (3, 10),
    (4, 8),
    (4, 10),
    (4, 12),
]

#: Average PARSEC load from the paper's characterization regime.
PARSEC_AVG_LOAD = 0.006

_SCHEMES = ["No-PG", "ConvOpt-PG", "PowerPunch-PG"]


def sensitivity_campaign(
    points: Sequence[Tuple[int, int]] = tuple(DEFAULT_POINTS),
    load: float = PARSEC_AVG_LOAD,
    punch_hops: int = 3,
    measurement: int = 5000,
) -> Campaign:
    """Declare the (pipeline, Twakeup) sensitivity grid as a campaign."""
    cells = []
    for stages, twakeup in points:
        config = NoCConfig(router_stages=stages)
        for scheme in _SCHEMES:
            kwargs = {}
            if scheme != "No-PG":
                kwargs["wakeup_latency"] = twakeup
            if scheme == "PowerPunch-PG":
                kwargs["punch_hops"] = punch_hops
            cells.append(
                CellSpec.synthetic(
                    "uniform_random",
                    load,
                    scheme,
                    config=config,
                    measurement=measurement,
                    drain=False,
                    scheme_kwargs=kwargs,
                )
            )
    return Campaign(name="fig13", cells=tuple(cells))


def run_sensitivity(
    points: Sequence[Tuple[int, int]] = tuple(DEFAULT_POINTS),
    load: float = PARSEC_AVG_LOAD,
    punch_hops: int = 3,
    measurement: int = 5000,
    verbose: bool = True,
    **engine,
) -> List[Tuple[int, int, str, RunRecord]]:
    """Run the (pipeline, Twakeup) sensitivity grid of Fig. 13."""
    campaign = sensitivity_campaign(
        points, load=load, punch_hops=punch_hops, measurement=measurement
    )
    records = campaign.run(**engine)
    keys = [
        (stages, twakeup, scheme)
        for stages, twakeup in points
        for scheme in _SCHEMES
    ]
    results = [
        (stages, twakeup, scheme, record)
        for (stages, twakeup, scheme), record in zip(keys, records)
    ]
    if verbose:
        for stages, twakeup, scheme, record in results:
            print(
                f"[fig13] {stages}-stage Twakeup={twakeup:2d} {scheme:15s} "
                f"lat={record.avg_total_latency:7.2f}"
            )
    return results


def report(results) -> str:
    """Format the Fig. 13 sensitivity table."""
    rows = []
    by_point = {}
    for stages, twakeup, scheme, record in results:
        by_point.setdefault((stages, twakeup), {})[scheme] = record
    for (stages, twakeup), per in sorted(by_point.items()):
        base = per["No-PG"].avg_total_latency
        rows.append(
            [
                f"{stages}-stage",
                twakeup,
                per["No-PG"].avg_total_latency,
                per["ConvOpt-PG"].avg_total_latency,
                per["PowerPunch-PG"].avg_total_latency,
                f"{per['PowerPunch-PG'].avg_total_latency / base - 1:+.1%}",
            ]
        )
    return format_table(
        ["pipeline", "Twakeup", "No-PG", "ConvOpt-PG", "PowerPunch-PG", "PP penalty"],
        rows,
        title=(
            "Figure 13: average packet latency vs wakeup latency "
            "(uniform random @ PARSEC-average load, 3-hop punch)"
        ),
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    parser = campaign_argparser(__doc__)
    parser.add_argument("--load", type=float, default=PARSEC_AVG_LOAD)
    parser.add_argument("--measurement", type=int, default=5000)
    args = parser.parse_args(argv)
    require_mesh_topology(args, 'the Fig. 13 experiment')
    print(
        report(
            run_sensitivity(
                load=args.load,
                measurement=args.measurement,
                **engine_options(args),
            )
        )
    )


if __name__ == "__main__":
    main()
