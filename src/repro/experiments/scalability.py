"""Section 6.6(2): scalability with network size.

At 0.01 flits/node/cycle uniform random traffic, the paper reports
PowerPunch-PG reducing average packet latency versus ConvOpt-PG by
43.4% (4x4), 54.9% (8x8) and 69.1% (16x16): conventional power-gating
suffers cumulative wakeup latency that grows with hop count, while
punch signals keep hiding it, so the relative win grows with mesh size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign import Campaign, CellSpec, campaign_argparser, engine_options, require_mesh_topology
from ..noc import NoCConfig
from .common import RunRecord, format_table

_SCHEMES = ["No-PG", "ConvOpt-PG", "PowerPunch-PG"]


def scalability_campaign(
    sizes: Sequence[int] = (4, 8, 16),
    load: float = 0.01,
    measurement: int = 4000,
    kernel: str = "active",
) -> Campaign:
    """Declare the mesh-size sweep of Sec. 6.6(2) as a campaign.

    ``kernel`` selects the cycle kernel for every cell; all kernels are
    cycle-exact, so the numbers are identical — ``"vector"`` just gets
    to the large meshes much faster.  It is part of the cell spec, so
    cached results are keyed per kernel.
    """
    cells = tuple(
        CellSpec.synthetic(
            "uniform_random",
            load,
            scheme,
            config=NoCConfig(width=size, height=size, kernel=kernel),
            measurement=measurement,
            drain=False,
        )
        for size in sizes
        for scheme in _SCHEMES
    )
    return Campaign(name="scalability", cells=cells)


def run_scalability(
    sizes: Sequence[int] = (4, 8, 16),
    load: float = 0.01,
    measurement: int = 4000,
    kernel: str = "active",
    verbose: bool = True,
    **engine,
) -> List[Tuple[int, str, RunRecord]]:
    """Run the mesh-size sweep of Sec. 6.6(2)."""
    campaign = scalability_campaign(
        sizes, load=load, measurement=measurement, kernel=kernel
    )
    records = campaign.run(**engine)
    keys = [(size, scheme) for size in sizes for scheme in _SCHEMES]
    results = [
        (size, scheme, record)
        for (size, scheme), record in zip(keys, records)
    ]
    if verbose:
        for size, scheme, record in results:
            print(
                f"[scalability] {size:2d}x{size:<2d} {scheme:15s} "
                f"lat={record.avg_total_latency:7.2f}"
            )
    return results


def report(results) -> str:
    """Format the scalability table with the paper reference line."""
    by_size: Dict[int, Dict[str, RunRecord]] = {}
    for size, scheme, record in results:
        by_size.setdefault(size, {})[scheme] = record
    rows = []
    for size in sorted(by_size):
        per = by_size[size]
        conv = per["ConvOpt-PG"].avg_total_latency
        pp = per["PowerPunch-PG"].avg_total_latency
        rows.append(
            [
                f"{size}x{size}",
                per["No-PG"].avg_total_latency,
                conv,
                pp,
                f"{1 - pp / conv:.1%}",
            ]
        )
    table = format_table(
        ["mesh", "No-PG", "ConvOpt-PG", "PowerPunch-PG", "PP reduction vs ConvOpt"],
        rows,
        title="Scalability (Sec. 6.6(2)): latency @ 0.01 flits/node/cycle",
    )
    return (
        table
        + "\n\nPaper reference: 43.4% (4x4), 54.9% (8x8), 69.1% (16x16); the "
        "reduction must grow with mesh size."
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    parser = campaign_argparser(__doc__)
    parser.add_argument("--sizes", nargs="*", type=int, default=[4, 8, 16])
    parser.add_argument("--load", type=float, default=0.01)
    parser.add_argument("--measurement", type=int, default=4000)
    parser.add_argument(
        "--kernel",
        default="active",
        choices=["active", "naive", "vector"],
        help="cycle kernel for every cell (cycle-exact; 'vector' is "
        "fastest on large meshes)",
    )
    args = parser.parse_args(argv)
    require_mesh_topology(args, 'the scalability experiment')
    print(
        report(
            run_scalability(
                sizes=args.sizes,
                load=args.load,
                measurement=args.measurement,
                kernel=args.kernel,
                **engine_options(args),
            )
        )
    )


if __name__ == "__main__":
    main()
