"""Figures 9 and 10: blocking statistics under PARSEC.

Paper reference points:

* Fig. 9 — powered-off routers encountered per packet: 4.21 under
  ConvOpt-PG, 1.09 under PowerPunch-Signal, 0.96 under PowerPunch-PG
  (11.8% improvement from injection-node slack).
* Fig. 10 — cycles per packet waiting for router wakeup: the
  PowerPunch-PG improvement over PowerPunch-Signal is 36.2% — much
  larger than Fig. 9 suggests, because a blocked router counts as one
  even when most of its wakeup latency is hidden by NI slack.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Sequence

from ..campaign import campaign_argparser, engine_options, require_mesh_topology
from .common import format_table, mean
from .parsec_suite import suite_records

_PG_SCHEMES = ["ConvOpt-PG", "PowerPunch-Signal", "PowerPunch-PG"]


def report(records) -> str:
    """Format Figures 9 and 10 plus the NI-slack headline."""
    by_bench = defaultdict(dict)
    for r in records:
        by_bench[r.workload][r.scheme] = r
    lines = []

    rows = [
        [bench] + [per[s].avg_blocked_routers for s in _PG_SCHEMES]
        for bench, per in sorted(by_bench.items())
    ]
    avg_blocked = {
        s: mean([per[s].avg_blocked_routers for per in by_bench.values()])
        for s in _PG_SCHEMES
    }
    rows.append(["AVG"] + [avg_blocked[s] for s in _PG_SCHEMES])
    lines.append(
        format_table(
            ["benchmark"] + _PG_SCHEMES,
            rows,
            title="Figure 9: powered-off routers encountered per packet",
        )
    )

    rows = [
        [bench] + [per[s].avg_wakeup_wait for s in _PG_SCHEMES]
        for bench, per in sorted(by_bench.items())
    ]
    avg_wait = {
        s: mean([per[s].avg_wakeup_wait for per in by_bench.values()])
        for s in _PG_SCHEMES
    }
    rows.append(["AVG"] + [avg_wait[s] for s in _PG_SCHEMES])
    lines.append("")
    lines.append(
        format_table(
            ["benchmark"] + _PG_SCHEMES,
            rows,
            title="Figure 10: cycles per packet waiting for router wakeup",
        )
    )

    blocked_gain = 1 - avg_blocked["PowerPunch-PG"] / avg_blocked["PowerPunch-Signal"]
    wait_gain = 1 - avg_wait["PowerPunch-PG"] / avg_wait["PowerPunch-Signal"]
    lines.append("")
    lines.append(
        f"Headline: blocked routers/packet {avg_blocked['ConvOpt-PG']:.2f} -> "
        f"{avg_blocked['PowerPunch-Signal']:.2f} -> "
        f"{avg_blocked['PowerPunch-PG']:.2f} "
        "(paper 4.21 -> 1.09 -> 0.96); NI-slack improvement "
        f"{blocked_gain:.1%} on Fig. 9 (paper 11.8%) but {wait_gain:.1%} on "
        "Fig. 10 wait cycles (paper 36.2%), revealing the hidden wakeup "
        "latency the blocked-router count cannot show."
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    parser = campaign_argparser(__doc__, suite_cache=True, instructions=True)
    args = parser.parse_args(argv)
    require_mesh_topology(args, 'the Fig. 9/10 experiment')
    print(
        report(
            suite_records(
                args.cache, instructions=args.instructions, **engine_options(args)
            )
        )
    )


if __name__ == "__main__":
    main()
