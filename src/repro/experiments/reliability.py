"""Monte-Carlo reliability campaigns under sampled fault schedules.

Estimates two system-level reliability figures for the power-gated NoC
by sampling fault schedules from a seeded distribution (see
``repro.noc.faults.sample_fault_schedule``) and running each sample as
an independent campaign cell:

* **delivery probability** — the fraction of injected packets that are
  delivered (per-packet, aggregated over every trial);
* **deadlock probability** — the fraction of trials that tripped the
  deadlock watchdog or failed to drain (per-trial).

Both come with Wilson score confidence intervals, so small campaigns
report honest uncertainty instead of a bare ratio.  Every trial runs
with strict invariants, the deadlock watchdog, and (by default)
``degradation="reroute"`` — the fault-tolerant detour routing — so the
campaign doubles as a randomized stress test of the whole robustness
stack: any invariant violation quarantines the cell instead of being
averaged away.

The campaign is a pure function of its seeds: two runs with the same
arguments produce bit-identical estimates (the CI job diffs the JSON
output of two runs to prove it).

Usage::

    python -m repro.cli reliability --samples 200 --workers 4
    python -m repro.experiments.reliability --samples 50 --mesh 4 \
        --measurement 2000 --out results/reliability.json
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from ..campaign import (
    Campaign,
    CellSpec,
    add_guarantees_args,
    add_robustness_args,
    campaign_argparser,
    engine_options,
    require_mesh_topology,
    sprt_options,
)
from ..noc import NoCConfig

# Hoisted to the shared stats layer (the SPRT model checker uses the
# same implementation); re-exported here for compatibility.
from ..stats_util import wilson_interval  # noqa: F401
from .common import format_table


def reliability_campaign(
    samples: int,
    *,
    pattern: str = "uniform_random",
    injection_rate: float = 0.02,
    scheme: str = "PowerPunch-PG",
    width: int = 8,
    height: int = 8,
    degradation: str = "reroute",
    dead_router_threshold: int = 200,
    max_faults: int = 2,
    horizon: int = 2000,
    warmup: int = 500,
    measurement: int = 4000,
    watchdog: int = 50_000,
    base_seed: int = 1,
) -> Campaign:
    """Declare ``samples`` independent reliability trials.

    Trial ``i`` samples its fault schedule from seed ``base_seed + i``;
    the robustness configuration travels *inside* each cell's
    ``NoCConfig`` (ambient overrides do not cross process-pool
    workers), so the campaign is safe under any ``--workers`` fan-out.
    """
    if samples < 1:
        raise ValueError("samples must be positive")
    config = NoCConfig(
        width=width,
        height=height,
        degradation=degradation,
        dead_router_threshold=dead_router_threshold,
    )
    cells = tuple(
        CellSpec.reliability(
            base_seed + i,
            pattern=pattern,
            injection_rate=injection_rate,
            scheme=scheme,
            warmup=warmup,
            measurement=measurement,
            config=config,
            max_faults=max_faults,
            horizon=horizon,
            watchdog=watchdog,
        )
        for i in range(samples)
    )
    return Campaign(name=f"reliability-{pattern}-{scheme}", cells=cells)


def aggregate(outcomes: Sequence[dict]) -> dict:
    """Fold per-trial outcome dicts into the campaign estimate.

    Deterministic: outcomes are aggregated in seed order exactly as
    the campaign returned them, and every derived number is a pure
    function of the counts.
    """
    trials = len(outcomes)
    deadlocks = sum(1 for o in outcomes if o["deadlocked"])
    degraded = sum(1 for o in outcomes if o["outcome"] == "degraded")
    clean = sum(1 for o in outcomes if o["delivered_all"])
    injected = sum(o["injected"] for o in outcomes)
    delivered = sum(o["delivered"] for o in outcomes)
    refused = sum(o["refused"] for o in outcomes)
    dropped = sum(o["dropped"] for o in outcomes)
    delivery_ci = wilson_interval(delivered, injected)
    deadlock_ci = wilson_interval(deadlocks, trials)
    clean_ci = wilson_interval(clean, trials)
    return {
        "trials": trials,
        "deadlocks": deadlocks,
        "degraded": degraded,
        "clean_trials": clean,
        "injected_packets": injected,
        "delivered_packets": delivered,
        "refused_packets": refused,
        "dropped_packets": dropped,
        "wakeup_retries": sum(o["wakeup_retries"] for o in outcomes),
        "rerouted_packets": sum(o["rerouted_packets"] for o in outcomes),
        "detour_hops": sum(o["detour_hops"] for o in outcomes),
        "delivery_probability": delivered / injected if injected else None,
        "delivery_ci95": list(delivery_ci),
        "deadlock_probability": deadlocks / trials if trials else None,
        "deadlock_ci95": list(deadlock_ci),
        "clean_trial_probability": clean / trials if trials else None,
        "clean_trial_ci95": list(clean_ci),
        "trial_outcomes": list(outcomes),
    }


def report(estimate: dict) -> str:
    """Human-readable summary of one campaign estimate."""
    rows = [
        [
            "delivery (per packet)",
            f"{estimate['delivered_packets']}/{estimate['injected_packets']}",
            _fmt_p(estimate["delivery_probability"]),
            _fmt_ci(estimate["delivery_ci95"]),
        ],
        [
            "deadlock (per trial)",
            f"{estimate['deadlocks']}/{estimate['trials']}",
            _fmt_p(estimate["deadlock_probability"]),
            _fmt_ci(estimate["deadlock_ci95"]),
        ],
        [
            "all-delivered trials",
            f"{estimate['clean_trials']}/{estimate['trials']}",
            _fmt_p(estimate["clean_trial_probability"]),
            _fmt_ci(estimate["clean_trial_ci95"]),
        ],
    ]
    table = format_table(
        ["metric", "count", "estimate", "95% CI (Wilson)"],
        rows,
        title="Monte-Carlo reliability estimate",
    )
    tail = (
        f"refused={estimate['refused_packets']} "
        f"dropped={estimate['dropped_packets']} "
        f"rerouted={estimate['rerouted_packets']} "
        f"detour_hops={estimate['detour_hops']} "
        f"wakeup_retries={estimate['wakeup_retries']} "
        f"degraded_trials={estimate['degraded']}"
    )
    return f"{table}\n{tail}"


def _fmt_p(p: Optional[float]) -> str:
    return "-" if p is None else f"{p:.4f}"


def _fmt_ci(ci: List[float]) -> str:
    return f"[{ci[0]:.4f}, {ci[1]:.4f}]"


def run_reliability(samples: int, verbose: bool = True, **kwargs) -> dict:
    """Run a reliability campaign and return the aggregated estimate."""
    engine = {
        k: kwargs.pop(k)
        for k in (
            "workers",
            "cache_dir",
            "resume",
            "timeout",
            "max_retries",
            "quarantine_dir",
            "hosts",
        )
        if k in kwargs
    }
    campaign = reliability_campaign(samples, **kwargs)
    outcomes = campaign.run(**engine)
    estimate = aggregate(outcomes)
    if verbose:
        print(report(estimate))
    return estimate


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    parser = campaign_argparser(__doc__)
    add_robustness_args(parser)
    # --bounds is deliberately absent: reliability trials inject
    # faults, and latency bounds certify fault-free runs only.
    add_guarantees_args(parser, bounds=False)
    parser.add_argument("--samples", type=int, default=100)
    parser.add_argument("--pattern", default="uniform_random")
    parser.add_argument("--rate", type=float, default=0.02)
    parser.add_argument("--scheme", default="PowerPunch-PG")
    parser.add_argument("--mesh", type=int, default=8, help="mesh side (NxN)")
    parser.add_argument("--max-faults", type=int, default=2)
    parser.add_argument("--horizon", type=int, default=2000)
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--measurement", type=int, default=4000)
    parser.add_argument("--watchdog", type=int, default=50_000)
    parser.add_argument("--base-seed", type=int, default=1)
    parser.add_argument("--out", default=None, help="write the estimate as JSON")
    args = parser.parse_args(argv)
    require_mesh_topology(args, "the reliability campaign")
    degradation = "reroute" if args.reroute else (args.degradation or "reroute")
    threshold = (
        args.dead_router_threshold if args.dead_router_threshold is not None else 200
    )
    trial_kwargs = dict(
        pattern=args.pattern,
        injection_rate=args.rate,
        scheme=args.scheme,
        width=args.mesh,
        height=args.mesh,
        degradation=degradation,
        dead_router_threshold=threshold,
        max_faults=args.max_faults,
        horizon=args.horizon,
        warmup=args.warmup,
        measurement=args.measurement,
        watchdog=args.watchdog,
    )
    if args.sprt:
        # Sequential statistical model checking: stop as soon as the
        # clean-trial hypothesis is decided (see docs/guarantees.md).
        from .guarantees import report_sprt, run_sprt_reliability

        estimate = run_sprt_reliability(
            base_seed=args.base_seed,
            max_samples=args.samples,
            engine=engine_options(args),
            **sprt_options(args),
            **trial_kwargs,
        )
        print(report_sprt(estimate))
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(estimate, fh, sort_keys=True, indent=2)
                fh.write("\n")
            print(f"saved estimate to {args.out}")
        return
    estimate = run_reliability(
        args.samples,
        base_seed=args.base_seed,
        **trial_kwargs,
        **engine_options(args),
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(estimate, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"saved estimate to {args.out}")


if __name__ == "__main__":
    main()
