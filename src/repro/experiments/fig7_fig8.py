"""Figures 7 and 8: PARSEC average packet latency and execution time.

Paper reference points (8x8 mesh, Twakeup = 8):

* Fig. 7 — ConvOpt-PG raises average packet latency by 69.1% over
  No-PG; PowerPunch-Signal by 12.6%; PowerPunch-PG by only 7.9%
  (a 61.2% improvement over ConvOpt-PG).
* Fig. 8 — execution-time increase: 2.3% (PowerPunch-Signal) and 0.4%
  (PowerPunch-PG); ConvOpt-PG visibly higher on every benchmark.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Sequence

from ..campaign import campaign_argparser, engine_options, require_mesh_topology
from .common import SCHEME_ORDER, format_table, mean
from .parsec_suite import suite_records


def report(records) -> str:
    """Format Figures 7 and 8 plus the headline comparison line."""
    by_bench = defaultdict(dict)
    for r in records:
        by_bench[r.workload][r.scheme] = r
    lines = []

    rows = []
    for bench, per in sorted(by_bench.items()):
        rows.append([bench] + [per[s].avg_total_latency for s in SCHEME_ORDER])
    norm = {
        s: mean(
            [per[s].avg_total_latency / per["No-PG"].avg_total_latency for per in by_bench.values()]
        )
        for s in SCHEME_ORDER
    }
    rows.append(["AVG (norm)"] + [norm[s] for s in SCHEME_ORDER])
    lines.append(
        format_table(
            ["benchmark"] + SCHEME_ORDER,
            rows,
            title="Figure 7: average packet latency (cycles; creation to delivery)",
        )
    )

    rows = []
    for bench, per in sorted(by_bench.items()):
        base = per["No-PG"].execution_time
        rows.append([bench] + [per[s].execution_time / base for s in SCHEME_ORDER])
    avg = {
        s: mean(
            [per[s].execution_time / per["No-PG"].execution_time for per in by_bench.values()]
        )
        for s in SCHEME_ORDER
    }
    rows.append(["AVG"] + [avg[s] for s in SCHEME_ORDER])
    lines.append("")
    lines.append(
        format_table(
            ["benchmark"] + SCHEME_ORDER,
            rows,
            title="Figure 8: execution time (normalized to No-PG)",
        )
    )

    conv = norm["ConvOpt-PG"] - 1.0
    ppg = norm["PowerPunch-PG"] - 1.0
    lines.append("")
    lines.append(
        "Headline: latency penalty No-PG->ConvOpt-PG "
        f"{conv:+.1%} (paper +69.1%), PowerPunch-Signal "
        f"{norm['PowerPunch-Signal']-1.0:+.1%} (paper +12.6%), PowerPunch-PG "
        f"{ppg:+.1%} (paper +7.9%); penalty reduction vs ConvOpt-PG "
        f"{1 - ppg / conv if conv else 0:.1%} (paper 61.2%). "
        f"Execution time: PowerPunch-PG {avg['PowerPunch-PG']-1.0:+.1%} "
        "(paper +0.4%)."
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    parser = campaign_argparser(__doc__, suite_cache=True, instructions=True)
    args = parser.parse_args(argv)
    require_mesh_topology(args, 'the Fig. 7/8 experiment')
    records = suite_records(
        args.cache, instructions=args.instructions, **engine_options(args)
    )
    print(report(records))


if __name__ == "__main__":
    main()
