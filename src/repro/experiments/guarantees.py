"""Guarantees mode: certified latency bounds + sequential model checking.

Two complementary guarantees for the power-gated NoC:

1. **The non-blocking certificate** — the analytical identity at the
   heart of the paper's claim: PowerPunch's certified worst-case
   per-route latency bound equals the always-on (No-PG) bound for
   *every* route, because the punch hides the whole wakeup latency
   (``wakeup_latency <= punch_hops * router_stages``).  ConvOpt-PG, by
   contrast, pays the full wakeup per gated hop — its bound is
   strictly larger on every route.  :func:`certificate_report` proves
   (or refutes) both route by route via
   :func:`repro.guarantees.certify_non_blocking`.

2. **Bound-tightness validation** — a campaign of fault-free
   ``guarantees`` cells (see :mod:`repro.campaign.spec`) that replays
   synthetic traffic with a :class:`repro.guarantees.BoundChecker` on
   the delivery stream and reports, per scheme x load, how close the
   observed worst case comes to the certified bound (and any
   violations, which are *data* in the default non-strict mode).

The module also hosts the **SPRT driver** used by
``repro.experiments.reliability --sprt``: sequential statistical model
checking of the clean-trial probability, stopping as soon as Wald's
test decides instead of burning the full fixed-sample budget.

Usage::

    python -m repro.cli guarantees --loads 0.02 0.2 --out bounds.json
    python -m repro.cli guarantees --certify-only
    python -m repro.cli reliability --sprt --samples 200
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign import (
    Campaign,
    CellSpec,
    campaign_argparser,
    engine_options,
)
from ..core import ConvOptPG, PowerPunchPG
from ..guarantees import SPRT, certify_non_blocking
from ..noc import NoCConfig
from ..stats_util import wilson_interval
from .common import format_table
from .reliability import reliability_campaign

_DEFAULT_LOADS = (0.02, 0.10, 0.20)

#: ``-`` is the always-on reference (no policy attached at all); the
#: two gated schemes bracket the certificate.
_DEFAULT_SCHEMES = ("-", "ConvOpt-PG", "PowerPunch-PG")


def _build_config(mesh: int, topology: str) -> NoCConfig:
    """The campaign fabric: ``mesh`` x ``mesh``, or the equal-node ring
    (same convention as the topologies experiment)."""
    if topology == "ring":
        return NoCConfig(width=mesh * mesh, height=1, topology="ring")
    return NoCConfig(width=mesh, height=mesh, topology=topology)


# ----------------------------------------------------------------------
# The non-blocking certificate
# ----------------------------------------------------------------------
def certificate_report(config: Optional[NoCConfig] = None) -> Dict[str, dict]:
    """Route-by-route certificates for both gated schemes vs No-PG."""
    if config is None:
        config = NoCConfig()
    return {
        "PowerPunch-PG": certify_non_blocking(config, PowerPunchPG()),
        "ConvOpt-PG": certify_non_blocking(config, ConvOptPG()),
    }


def render_certificates(certificates: Dict[str, dict]) -> str:
    """Human-readable certificate table."""
    rows = []
    for name, cert in certificates.items():
        rows.append(
            [
                name,
                f"{cert['equal_routes']}/{cert['routes']}",
                "YES" if cert["non_blocking"] else "no",
                cert["max_gap_cycles"],
                cert["wakeup_penalty_per_hop"],
            ]
        )
    table = format_table(
        ["scheme", "routes == No-PG", "non-blocking", "max gap (cyc)", "penalty/hop"],
        rows,
        title="Non-blocking certificate (analytical, every route)",
    )
    return table


# ----------------------------------------------------------------------
# Bound-tightness campaign
# ----------------------------------------------------------------------
def guarantees_campaign(
    *,
    loads: Sequence[float] = _DEFAULT_LOADS,
    schemes: Sequence[str] = _DEFAULT_SCHEMES,
    pattern: str = "uniform_random",
    mesh: int = 8,
    topology: str = "mesh",
    warmup: int = 500,
    measurement: int = 2000,
    seed: int = 7,
    strict: bool = False,
) -> Tuple[Campaign, List[Tuple[str, float]]]:
    """Declare one bound-validation cell per (scheme, load).

    Returns the campaign plus the ``(scheme, load)`` key for each cell
    in declaration order, so outcomes can be re-keyed without parsing
    labels.
    """
    config = _build_config(mesh, topology)
    cells = []
    keys: List[Tuple[str, float]] = []
    for scheme in schemes:
        for load in loads:
            cells.append(
                CellSpec.guarantees(
                    pattern,
                    load,
                    scheme,
                    warmup=warmup,
                    measurement=measurement,
                    seed=seed,
                    config=config,
                    strict=strict,
                )
            )
            keys.append((scheme, load))
    name = f"guarantees-{pattern}-{topology}{mesh}"
    return Campaign(name=name, cells=tuple(cells)), keys


def aggregate(keys: Sequence[Tuple[str, float]], outcomes: Sequence[dict]) -> dict:
    """Fold per-cell payloads into the JSON-ready tightness summary."""
    cells = []
    total_checked = total_violations = 0
    for (scheme, load), payload in zip(keys, outcomes):
        violations = payload["violations"]
        total_checked += payload["checked"]
        total_violations += violations
        cells.append(
            {
                "scheme": scheme,
                "load": load,
                "checked": payload["checked"],
                "violations": violations,
                "violation_details": payload["violation_summaries"],
                "worst_ratio": payload["worst_ratio"],
                "worst": payload["worst"],
                "delivered": payload["delivered"],
                "avg_latency": payload["avg_latency"],
                "p50": payload["p50"],
                "p95": payload["p95"],
                "p99": payload["p99"],
                "model": payload["model"],
            }
        )
    return {
        "cells": cells,
        "checked_packets": total_checked,
        "violations": total_violations,
        "all_within_bounds": total_violations == 0,
    }


def report(summary: dict) -> str:
    """Human-readable tightness table."""
    rows = []
    for cell in summary["cells"]:
        worst = cell["worst"]
        worst_txt = (
            f"{worst['observed']}/{worst['bound']}" if worst else "-"
        )
        rows.append(
            [
                "always-on" if cell["scheme"] == "-" else cell["scheme"],
                f"{cell['load']:g}",
                cell["checked"],
                cell["violations"],
                f"{cell['worst_ratio']:.3f}",
                worst_txt,
                _fmt(cell["p50"]),
                _fmt(cell["p99"]),
            ]
        )
    table = format_table(
        [
            "scheme",
            "load",
            "checked",
            "violations",
            "worst/bound",
            "worst (obs/cert)",
            "p50",
            "p99",
        ],
        rows,
        title="Latency-bound tightness (observed vs certified)",
    )
    verdict = (
        "all delivered packets within certified bounds"
        if summary["all_within_bounds"]
        else f"{summary['violations']} bound violation(s) recorded"
    )
    return f"{table}\n{verdict} over {summary['checked_packets']} checked packets"


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:g}"


def run_guarantees(
    verbose: bool = True, engine: Optional[dict] = None, **kwargs
) -> dict:
    """Run the tightness campaign and return the aggregated summary."""
    campaign, keys = guarantees_campaign(**kwargs)
    outcomes = campaign.run(**(engine or {}))
    summary = aggregate(keys, outcomes)
    if verbose:
        print(report(summary))
    return summary


# ----------------------------------------------------------------------
# Sequential statistical model checking (the reliability --sprt mode)
# ----------------------------------------------------------------------
def run_sprt_reliability(
    *,
    base_seed: int = 1,
    max_samples: int = 100,
    p0: float = 0.9,
    p1: float = 0.6,
    alpha: float = 0.05,
    beta: float = 0.05,
    batch: int = 8,
    engine: Optional[dict] = None,
    **trial_kwargs,
) -> dict:
    """Sequentially test ``P(clean trial) >= p0`` vs ``<= p1``.

    Trials are the same seeded reliability cells the fixed-sample
    campaign runs (trial ``i`` uses ``base_seed + i``), declared
    ``batch`` at a time so a process pool still fans out, and fed to
    the :class:`SPRT` **in seed order** — the estimate is a pure
    function of the seeds regardless of worker scheduling, and a
    shared ``--cache-dir`` is hit cell-for-cell by the fixed-sample
    campaign over the same seed range.  Stops at the first decided
    batch or when the ``max_samples`` budget is exhausted
    (``verdict: undecided``).
    """
    if batch < 1:
        raise ValueError("batch must be positive")
    sprt = SPRT(p0, p1, alpha=alpha, beta=beta)
    used: List[dict] = []
    declared = 0
    while declared < max_samples and sprt.verdict is None:
        n = min(batch, max_samples - declared)
        campaign = reliability_campaign(
            n, base_seed=base_seed + declared, **trial_kwargs
        )
        outcomes = campaign.run(**(engine or {}))
        declared += n
        for outcome in outcomes:
            if sprt.verdict is not None:
                break
            sprt.update(bool(outcome["delivered_all"]))
            used.append(outcome)
    ci = (
        wilson_interval(sprt.successes, sprt.observations)
        if sprt.observations
        else (0.0, 1.0)
    )
    return {
        "mode": "sprt",
        "verdict": sprt.verdict or "undecided",
        "sprt": sprt.to_dict(),
        "samples_used": sprt.observations,
        "samples_declared": declared,
        "samples_budget": max_samples,
        "base_seed": base_seed,
        "batch": batch,
        "clean_trials": sprt.successes,
        "clean_trial_ci95": list(ci),
        "trial_outcomes": used,
    }


def report_sprt(estimate: dict) -> str:
    """Human-readable summary of one sequential run."""
    sprt = estimate["sprt"]
    rows = [
        ["verdict", estimate["verdict"]],
        [
            "hypothesis",
            f"accept: P(clean) >= {sprt['p0']:g}   "
            f"reject: P(clean) <= {sprt['p1']:g}",
        ],
        [
            "samples used",
            f"{estimate['samples_used']} of {estimate['samples_budget']} budget",
        ],
        [
            "clean trials",
            f"{estimate['clean_trials']}/{estimate['samples_used']}",
        ],
        [
            "95% CI (Wilson)",
            f"[{estimate['clean_trial_ci95'][0]:.4f}, "
            f"{estimate['clean_trial_ci95'][1]:.4f}]",
        ],
        [
            "log-likelihood ratio",
            f"{sprt['llr']:.4f} in "
            f"({sprt['lower_threshold']:.4f}, {sprt['upper_threshold']:.4f})",
        ],
    ]
    return format_table(
        ["", ""],
        rows,
        title="Sequential probability ratio test (clean-trial probability)",
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    # No --bounds here: every guarantees cell installs its own checker,
    # so the ambient flag would only double-check the same stream.
    parser = campaign_argparser(__doc__)
    parser.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=list(_DEFAULT_LOADS),
        help="injection rates to validate (flits/node/cycle)",
    )
    parser.add_argument(
        "--schemes",
        nargs="+",
        default=list(_DEFAULT_SCHEMES),
        help="schemes to validate ('-' = always-on reference)",
    )
    parser.add_argument("--pattern", default="uniform_random")
    parser.add_argument("--mesh", type=int, default=8, help="mesh side (NxN)")
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--measurement", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--strict",
        action="store_true",
        help="raise on the first violating packet instead of recording "
        "violations as campaign data",
    )
    parser.add_argument(
        "--certify-only",
        action="store_true",
        help="print the analytical non-blocking certificate and exit "
        "without simulating",
    )
    parser.add_argument("--out", default=None, help="write results as JSON")
    args = parser.parse_args(argv)

    config = _build_config(args.mesh, args.topology)
    certificates = certificate_report(config)
    print(render_certificates(certificates))
    results: Dict[str, object] = {"certificates": certificates}
    if not args.certify_only:
        summary = run_guarantees(
            verbose=False,
            engine=engine_options(args),
            loads=args.loads,
            schemes=args.schemes,
            pattern=args.pattern,
            mesh=args.mesh,
            topology=args.topology,
            warmup=args.warmup,
            measurement=args.measurement,
            seed=args.seed,
            strict=args.strict,
        )
        print(report(summary))
        results["tightness"] = summary
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(results, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"saved results to {args.out}")


if __name__ == "__main__":
    main()
