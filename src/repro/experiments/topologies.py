"""Cross-topology baseline comparison at matched bisection load.

The punch schemes are mesh-only (their punch-target decomposition is
derived from XY turn restrictions), so this campaign compares the
topology-portable schemes — No-PG and conventional optimized
power-gating (ConvOpt-PG) — across the three fabrics of the topology
layer: the paper's 8x8 mesh, an 8x8 torus, and a 64-node ring.

Injection rates are scaled per fabric so the expected per-channel load
on the bisection cut matches the mesh reference rate: with a matched
node count N, uniform-random traffic sends ~N*r/2 flits/cycle across
the cut, so ``r_fabric = r_mesh * B_fabric / B_mesh`` where B is the
directed bisection link count (8x8 mesh: 16, 8x8 torus: 32, 64-ring:
4 — the torus runs twice the mesh rate, the ring one quarter of it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign import Campaign, CellSpec, campaign_argparser, engine_options
from ..noc import NoCConfig
from .common import RunRecord, format_table

_SCHEMES = ["No-PG", "ConvOpt-PG"]

#: (topology, width, height) — matched 64-node fabrics.
FABRICS: Tuple[Tuple[str, int, int], ...] = (
    ("mesh", 8, 8),
    ("torus", 8, 8),
    ("ring", 64, 1),
)


def bisection_links(topology: str, width: int, height: int) -> int:
    """Directed link count across the fabric's X-middle bisection cut."""
    if topology == "mesh":
        return 2 * height
    if topology == "torus":
        return 4 * height
    if topology == "ring":
        return 4
    raise ValueError(f"unknown topology {topology!r}")


def matched_rate(
    base_rate: float, topology: str, width: int, height: int
) -> float:
    """Injection rate giving the same bisection channel load as an
    equal-node mesh running at ``base_rate``."""
    mesh_b = bisection_links("mesh", width, height)
    if topology == "ring":
        # The equal-node mesh reference for an N-ring is the sqrt(N)
        # square mesh (64-ring vs 8x8 mesh).
        side = max(1, round(width**0.5))
        mesh_b = bisection_links("mesh", side, side)
    return base_rate * bisection_links(topology, width, height) / mesh_b


def topologies_campaign(
    base_rate: float = 0.02,
    measurement: int = 4000,
    kernel: str = "active",
    fabrics: Sequence[Tuple[str, int, int]] = FABRICS,
) -> Campaign:
    """Declare the cross-topology comparison as a campaign.

    Cells are keyed on the full ``NoCConfig`` (including ``topology``),
    so mesh cells share cache entries with other mesh campaigns and
    torus/ring cells get distinct keys.
    """
    cells = tuple(
        CellSpec.synthetic(
            "uniform_random",
            round(matched_rate(base_rate, topology, width, height), 6),
            scheme,
            config=NoCConfig(
                width=width, height=height, topology=topology, kernel=kernel
            ),
            measurement=measurement,
            drain=False,
        )
        for topology, width, height in fabrics
        for scheme in _SCHEMES
    )
    return Campaign(name="topologies", cells=cells)


def run_topologies(
    base_rate: float = 0.02,
    measurement: int = 4000,
    kernel: str = "active",
    fabrics: Sequence[Tuple[str, int, int]] = FABRICS,
    verbose: bool = True,
    **engine,
) -> List[Tuple[str, str, RunRecord]]:
    """Run the cross-topology comparison campaign."""
    campaign = topologies_campaign(
        base_rate, measurement=measurement, kernel=kernel, fabrics=fabrics
    )
    records = campaign.run(**engine)
    keys = [
        (f"{topology}:{width}x{height}", scheme)
        for topology, width, height in fabrics
        for scheme in _SCHEMES
    ]
    results = [
        (fabric, scheme, record)
        for (fabric, scheme), record in zip(keys, records)
    ]
    if verbose:
        for fabric, scheme, record in results:
            print(
                f"[topologies] {fabric:12s} {scheme:12s} "
                f"lat={record.avg_total_latency:7.2f} "
                f"E={record.total_energy * 1e6:8.2f}uJ"
            )
    return results


def report(results) -> str:
    """Format the cross-topology table.

    Latency is absolute (cycles); energy is normalized per fabric to
    that fabric's own No-PG total, so the PG-saving column is
    comparable across fabrics despite their different port counts.
    """
    by_fabric: Dict[str, Dict[str, RunRecord]] = {}
    order: List[str] = []
    for fabric, scheme, record in results:
        if fabric not in by_fabric:
            order.append(fabric)
        by_fabric.setdefault(fabric, {})[scheme] = record
    rows = []
    for fabric in order:
        per = by_fabric[fabric]
        nopg = per["No-PG"]
        conv = per["ConvOpt-PG"]
        rows.append(
            [
                fabric,
                nopg.injection_rate,
                nopg.avg_total_latency,
                conv.avg_total_latency,
                f"{conv.avg_total_latency / nopg.avg_total_latency:.2f}x",
                f"{1 - conv.total_energy / nopg.total_energy:.1%}",
            ]
        )
    table = format_table(
        [
            "fabric",
            "rate",
            "No-PG lat",
            "ConvOpt-PG lat",
            "PG slowdown",
            "PG energy saved",
        ],
        rows,
        title="Cross-topology baselines @ matched bisection channel load",
    )
    return (
        table
        + "\n\nRates are bisection-matched to the 8x8 mesh reference "
        "(torus 2x, ring 1/4x).  Punch schemes are mesh-only; the "
        "wrapped fabrics route with dateline VC classes."
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    parser = campaign_argparser(__doc__)
    parser.add_argument("--base-rate", type=float, default=0.02)
    parser.add_argument("--measurement", type=int, default=4000)
    parser.add_argument(
        "--kernel",
        default="active",
        choices=["active", "naive", "vector"],
        help="cycle kernel for every cell (all are cycle-exact)",
    )
    args = parser.parse_args(argv)
    # This experiment spans all fabrics by default; a non-default
    # --topology narrows the comparison to that single fabric.
    fabrics = FABRICS
    if args.topology != "mesh":
        fabrics = tuple(f for f in FABRICS if f[0] == args.topology)
    print(
        report(
            run_topologies(
                base_rate=args.base_rate,
                measurement=args.measurement,
                kernel=args.kernel,
                fabrics=fabrics,
                **engine_options(args),
            )
        )
    )


if __name__ == "__main__":
    main()
