"""Table 1 and Figure 5: punch-signal encoding.

Regenerates, by exhaustive enumeration over an 8x8 mesh with XY
routing and 3-hop punch slack:

* the 22 distinct sets of targeted routers on the X+ link of R27
  (the paper's Table 1) with assigned punch codes;
* the chip-wide punch-signal widths: 5 bits per X link and 2 bits per
  Y link (Fig. 5), and the 4-hop X width of 8 bits (Sec. 4.1).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import PunchEncodingAnalysis
from ..noc import Direction, MeshTopology
from .common import format_table


def report(width: int = 8, hops: int = 3, router: int = 27) -> str:
    """Regenerate Table 1, the Fig. 5 widths and the area estimate."""
    topology = MeshTopology(width, width)
    analysis = PunchEncodingAnalysis(topology, hops=hops)
    enc = analysis.analyze_link(router, Direction.XPOS)
    rows = [
        [i + 1, "{" + ", ".join(str(t) for t in sorted(s)) + "}", code]
        for i, (s, code) in enumerate(analysis.encoding_table(router, Direction.XPOS))
    ]
    lines = [
        format_table(
            ["#", "set of targeted routers", "punch signal"],
            rows,
            title=(
                f"Table 1: distinct targeted-router sets, X+ of R{router} "
                f"({width}x{width} mesh, {hops}-hop slack)"
            ),
        ),
        "",
        f"Sources on this link: {enc.sources} "
        f"(paper: R25, R26, R27 for R27 via XY turn restrictions)",
        f"Distinct sets: {len(enc.distinct_sets)} (paper: 22) -> "
        f"{enc.width_bits}-bit punch signal (paper: 5 bits)",
        "",
        f"Chip-wide widths ({hops}-hop): X = {analysis.max_width('x')} bits, "
        f"Y = {analysis.max_width('y')} bits (paper Fig. 5: 5 and 2)",
    ]
    analysis4 = PunchEncodingAnalysis(topology, hops=4)
    enc4x = analysis4.analyze_link(router, Direction.XPOS)
    enc4y = analysis4.analyze_link(router, Direction.YPOS)
    lines.append(
        f"4-hop widths at R{router}: X = {enc4x.width_bits} bits (paper: 8), "
        f"Y = {enc4y.width_bits} bits (paper claims 2; exhaustive enumeration "
        f"finds {len(enc4y.distinct_sets)} sets + idle -> 3 bits, see "
        "EXPERIMENTS.md)"
    )
    from ..power import estimate_punch_area

    est = estimate_punch_area(topology, hops=hops)
    lines.append(
        f"Hardware cost (Sec. 6.6(1)): wiring {est.wiring_overhead:.2%} + "
        f"logic {est.logic_overhead:.2%} = {est.total_overhead:.2%} extra NoC "
        "area (paper: 2.4%)"
    )
    return "\n".join(lines)


def table1_campaign(width: int = 8, hops: int = 3, router: int = 27):
    """The exhaustive enumeration as a single cacheable analysis cell."""
    from ..campaign import Campaign, CellSpec

    cell = CellSpec.analysis("table1", width=width, hops=hops, router=router)
    return Campaign(
        name="table1",
        cells=(cell,),
        reducer=lambda payloads: payloads[0]["report"],
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    from ..campaign import campaign_argparser, engine_options, require_mesh_topology

    parser = campaign_argparser(__doc__)
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--hops", type=int, default=3)
    parser.add_argument("--router", type=int, default=27)
    args = parser.parse_args(argv)
    require_mesh_topology(args, 'the Table 1 experiment')
    campaign = table1_campaign(width=args.width, hops=args.hops, router=args.router)
    engine = engine_options(args)
    engine.pop("workers")  # a single analysis cell never needs a pool
    print(campaign.run(**engine))


if __name__ == "__main__":
    main()
