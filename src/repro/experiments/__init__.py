"""Per-figure/table experiment harnesses (see DESIGN.md experiment index).

Each module is runnable (``python -m repro.experiments.fig7_fig8``) and
exposes ``run_*``/``report`` functions used by the pytest benchmarks.
Modules are imported lazily to keep ``python -m`` invocations clean.
"""
