"""Sec. 6.6(3): Power Punch vs other recent power-gating schemes.

The paper argues Power Punch dominates reconfiguration/bypass schemes:
"As NoRD relies on packet detours, its performance overhead is about 5
times that of Power Punch (9.3 cycles of packet latency penalty in
NoRD versus 1.8 cycles in Power Punch for the 64-node system)."

This harness compares No-PG, ConvOpt-PG, PowerPunch-PG and our
NoRD-like baseline (bypass-ring detours, transit never wakes routers —
see ``repro.baselines.nord`` for the simplifications) on uniform-random
traffic at a PARSEC-like load, one ``synthetic_metrics`` campaign cell
per scheme.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..campaign import Campaign, CellSpec, campaign_argparser, engine_options, require_mesh_topology
from .common import format_table

_SCHEMES = ["No-PG", "ConvOpt-PG", "PowerPunch-PG", "NoRD-like"]


def comparison_campaign(
    load: float = 0.01, measurement: int = 5000, seed: int = 7
) -> Campaign:
    """Declare the four-scheme comparison as a campaign."""
    cells = tuple(
        CellSpec.synthetic(
            "uniform_random",
            load,
            scheme,
            measurement=measurement,
            seed=seed,
            drain=False,
            metrics=True,
        )
        for scheme in _SCHEMES
    )
    return Campaign(name="baselines-compare", cells=cells)


def run_comparison(
    load: float = 0.01,
    measurement: int = 5000,
    seed: int = 7,
    verbose: bool = True,
    **engine,
) -> List[Tuple[str, dict]]:
    """Run the four schemes on uniform-random traffic at one load."""
    campaign = comparison_campaign(load=load, measurement=measurement, seed=seed)
    payloads = campaign.run(**engine)
    results = list(zip(_SCHEMES, payloads))
    if verbose:
        for name, row in results:
            print(f"[baselines] {name:15s} lat={row['latency']:7.2f}")
    return results


def report(results) -> str:
    """Format the comparison table plus the paper-ratio headline."""
    base = dict(results)["No-PG"]
    rows = []
    for name, row in results:
        rows.append(
            [
                name,
                row["latency"],
                row["latency"] - base["latency"],
                f"{row['net_static'] / base['net_static']:.1%}",
                row["detoured"],
            ]
        )
    table = format_table(
        ["scheme", "latency", "penalty (cycles)", "net static vs No-PG", "detours"],
        rows,
        title="Sec. 6.6(3): Power Punch vs detour-based power-gating",
    )
    per = dict(results)
    pp = per["PowerPunch-PG"]["latency"] - base["latency"]
    nord = per["NoRD-like"]["latency"] - base["latency"]
    ratio = nord / pp if pp > 0 else float("inf")
    return (
        table
        + f"\n\nDetour-based penalty is {ratio:.1f}x Power Punch's "
        "(paper: ~5x, 9.3 vs 1.8 cycles; our simplified NoRD detours more)."
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    parser = campaign_argparser(__doc__)
    parser.add_argument("--load", type=float, default=0.01)
    parser.add_argument("--measurement", type=int, default=5000)
    args = parser.parse_args(argv)
    require_mesh_topology(args, 'the baselines comparison')
    print(
        report(
            run_comparison(
                load=args.load, measurement=args.measurement, **engine_options(args)
            )
        )
    )


if __name__ == "__main__":
    main()
