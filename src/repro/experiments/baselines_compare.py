"""Sec. 6.6(3): Power Punch vs other recent power-gating schemes.

The paper argues Power Punch dominates reconfiguration/bypass schemes:
"As NoRD relies on packet detours, its performance overhead is about 5
times that of Power Punch (9.3 cycles of packet latency penalty in
NoRD versus 1.8 cycles in Power Punch for the 64-node system)."

This harness compares No-PG, ConvOpt-PG, PowerPunch-PG and our
NoRD-like baseline (bypass-ring detours, transit never wakes routers —
see ``repro.baselines.nord`` for the simplifications) on uniform-random
traffic at a PARSEC-like load.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence, Tuple

from ..baselines import NoRDLike
from ..core import ConvOptPG, NoPG, PowerPunchPG
from ..noc import Network, NoCConfig
from ..power import EnergyModel
from ..traffic import SyntheticTraffic
from .common import format_table


def run_comparison(
    load: float = 0.01,
    measurement: int = 5000,
    seed: int = 7,
    verbose: bool = True,
) -> List[Tuple[str, dict]]:
    """Run the four schemes on uniform-random traffic at one load."""
    results = []
    for scheme in (NoPG(), ConvOptPG(), PowerPunchPG(), NoRDLike()):
        network = Network(NoCConfig(), scheme)
        traffic = SyntheticTraffic(network, "uniform_random", load, seed=seed)
        model = EnergyModel()
        traffic.run(1000)
        snap = model.snapshot(network)
        network.stats.measure_from = network.cycle
        traffic.run(measurement)
        energy = model.account(network, since=snap)
        stats = network.stats
        row = {
            "latency": stats.avg_total_latency,
            "delivered": stats.delivered,
            "net_static": energy.net_static,
            "detoured": getattr(scheme, "detoured_packets", 0),
        }
        results.append((scheme.name, row))
        if verbose:
            print(f"[baselines] {scheme.name:15s} lat={row['latency']:7.2f}")
    return results


def report(results) -> str:
    """Format the comparison table plus the paper-ratio headline."""
    base = dict(results)["No-PG"]
    rows = []
    for name, row in results:
        rows.append(
            [
                name,
                row["latency"],
                row["latency"] - base["latency"],
                f"{row['net_static'] / base['net_static']:.1%}",
                row["detoured"],
            ]
        )
    table = format_table(
        ["scheme", "latency", "penalty (cycles)", "net static vs No-PG", "detours"],
        rows,
        title="Sec. 6.6(3): Power Punch vs detour-based power-gating",
    )
    per = dict(results)
    pp = per["PowerPunch-PG"]["latency"] - base["latency"]
    nord = per["NoRD-like"]["latency"] - base["latency"]
    ratio = nord / pp if pp > 0 else float("inf")
    return (
        table
        + f"\n\nDetour-based penalty is {ratio:.1f}x Power Punch's "
        "(paper: ~5x, 9.3 vs 1.8 cycles; our simplified NoRD detours more)."
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=0.01)
    parser.add_argument("--measurement", type=int, default=5000)
    args = parser.parse_args(argv)
    print(report(run_comparison(load=args.load, measurement=args.measurement)))


if __name__ == "__main__":
    main()
