"""Figure 11: breakdown of router energy (normalized to No-PG).

Per benchmark and scheme, router energy splits into dynamic energy,
static energy and power-gating overhead (on/off event energy, sleep
signal distribution, punch-signal generation/propagation, always-on
controllers).  For fair comparison the overhead is charged against the
static component ("net static").

Paper reference points: all three power-gating schemes save a similar
~83% of router static energy; total router energy savings are 50.3%
(ConvOpt-PG), 52.9% (PowerPunch-Signal) and 54.1% (PowerPunch-PG), so
Power Punch wins on energy *and* performance.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Sequence

from ..campaign import campaign_argparser, engine_options, require_mesh_topology
from .common import SCHEME_ORDER, format_table, mean
from .parsec_suite import suite_records


def report(records) -> str:
    """Format the Fig. 11 energy-breakdown table and headline."""
    by_bench = defaultdict(dict)
    for r in records:
        by_bench[r.workload][r.scheme] = r
    lines = []
    rows = []
    for bench, per in sorted(by_bench.items()):
        base = per["No-PG"].total_energy
        for scheme in SCHEME_ORDER:
            r = per[scheme]
            rows.append(
                [
                    bench,
                    scheme,
                    r.dynamic_energy / base,
                    r.static_energy / base,
                    r.overhead_energy / base,
                    r.total_energy / base,
                ]
            )
    lines.append(
        format_table(
            ["benchmark", "scheme", "dynamic", "static", "pg-overhead", "total"],
            rows,
            title="Figure 11: router energy breakdown (normalized to No-PG total)",
        )
    )

    static_saved = {}
    total_saved = {}
    for scheme in SCHEME_ORDER[1:]:
        static_saved[scheme] = mean(
            [
                1
                - (per[scheme].net_static_energy / per["No-PG"].static_energy)
                for per in by_bench.values()
            ]
        )
        total_saved[scheme] = mean(
            [
                1 - per[scheme].total_energy / per["No-PG"].total_energy
                for per in by_bench.values()
            ]
        )
    lines.append("")
    lines.append(
        "Headline: net router static energy saved "
        + ", ".join(f"{s}: {static_saved[s]:.1%}" for s in static_saved)
        + " (paper ~83% for all three).  Total router energy saved "
        + ", ".join(f"{s}: {total_saved[s]:.1%}" for s in total_saved)
        + " (paper 50.3% / 52.9% / 54.1%) — Power Punch saves the most."
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    parser = campaign_argparser(__doc__, suite_cache=True, instructions=True)
    args = parser.parse_args(argv)
    require_mesh_topology(args, 'the Fig. 11 experiment')
    print(
        report(
            suite_records(
                args.cache, instructions=args.instructions, **engine_options(args)
            )
        )
    )


if __name__ == "__main__":
    main()
