"""The paper's abstract, as a single reproducible report.

    "Full system evaluation on PARSEC benchmarks shows Power Punch
    saves more than 83% of router static energy while having an
    execution time penalty of less than 0.4%, effectively achieving
    near non-blocking power-gating of on-chip network routers."

Runs (or loads) the PARSEC suite and prints the four headline
quantities with their paper reference values.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Sequence

from ..campaign import campaign_argparser, engine_options, require_mesh_topology
from .common import mean
from .parsec_suite import suite_records


def compute_headline(records) -> dict:
    """Aggregate the abstract's four headline quantities from records."""
    by_bench = defaultdict(dict)
    for r in records:
        by_bench[r.workload][r.scheme] = r

    def avg(metric):
        out = {}
        for scheme in ("ConvOpt-PG", "PowerPunch-Signal", "PowerPunch-PG"):
            out[scheme] = mean([metric(per, scheme) for per in by_bench.values()])
        return out

    latency_pen = avg(
        lambda per, s: per[s].avg_total_latency / per["No-PG"].avg_total_latency - 1
    )
    exec_pen = avg(
        lambda per, s: per[s].execution_time / per["No-PG"].execution_time - 1
    )
    static_saved = avg(
        lambda per, s: 1 - per[s].net_static_energy / per["No-PG"].static_energy
    )
    total_saved = avg(
        lambda per, s: 1 - per[s].total_energy / per["No-PG"].total_energy
    )
    conv = latency_pen["ConvOpt-PG"]
    reduction = 1 - latency_pen["PowerPunch-PG"] / conv if conv else 0.0
    return {
        "latency_penalty": latency_pen,
        "execution_penalty": exec_pen,
        "static_saved": static_saved,
        "total_saved": total_saved,
        "penalty_reduction_vs_convopt": reduction,
    }


def report(records) -> str:
    """Format the headline report with paper reference values."""
    h = compute_headline(records)
    lines = [
        "Power Punch headline reproduction (8x8 mesh, PARSEC profiles)",
        "",
        f"  router static energy saved (PowerPunch-PG) "
        f"{h['static_saved']['PowerPunch-PG']:.1%}   (paper: >83%)",
        f"  execution-time penalty (PowerPunch-PG)     "
        f"{h['execution_penalty']['PowerPunch-PG']:+.1%}    (paper: <0.4%)",
        f"  packet-latency penalty (PowerPunch-PG)     "
        f"{h['latency_penalty']['PowerPunch-PG']:+.1%}    (paper: +7.9%)",
        f"  latency-penalty reduction vs ConvOpt-PG    "
        f"{h['penalty_reduction_vs_convopt']:.1%}   (paper: 61.2%)",
        "",
        "  per scheme:",
    ]
    for scheme in ("ConvOpt-PG", "PowerPunch-Signal", "PowerPunch-PG"):
        lines.append(
            f"    {scheme:18s} latency {h['latency_penalty'][scheme]:+7.1%}  "
            f"exec {h['execution_penalty'][scheme]:+6.1%}  "
            f"static saved {h['static_saved'][scheme]:6.1%}  "
            f"total energy saved {h['total_saved'][scheme]:6.1%}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    parser = campaign_argparser(__doc__, suite_cache=True, instructions=True)
    args = parser.parse_args(argv)
    require_mesh_topology(args, 'the headline experiment')
    print(
        report(
            suite_records(
                args.cache, instructions=args.instructions, **engine_options(args)
            )
        )
    )


if __name__ == "__main__":
    main()
