"""Shared experiment plumbing: scheme registry, runners, table printing."""

from __future__ import annotations

import json
import os
import statistics
from dataclasses import asdict, dataclass
from typing import Iterable, List, Optional, Sequence

from ..core import ConvOptPG, NoPG, PowerPunchPG, PowerPunchSignal
from ..noc import Network, NoCConfig
from ..power import EnergyModel
from ..system import Chip, get_profile
from ..traffic import SyntheticTraffic

#: The four evaluated schemes, in the paper's order (Sec. 5).
SCHEMES = {
    "No-PG": NoPG,
    "ConvOpt-PG": ConvOptPG,
    "PowerPunch-Signal": PowerPunchSignal,
    "PowerPunch-PG": PowerPunchPG,
}

SCHEME_ORDER = list(SCHEMES)


def make_scheme(name: str, **kwargs):
    """Instantiate a scheme by registry name (kwargs ignored for No-PG)."""
    cls = SCHEMES[name]
    if cls is NoPG:
        return cls()
    return cls(**kwargs)


@dataclass
class RunRecord:
    """One (workload, scheme) measurement."""

    workload: str
    scheme: str
    execution_time: int
    avg_packet_latency: float
    avg_total_latency: float
    avg_blocked_routers: float
    avg_wakeup_wait: float
    injection_rate: float
    dynamic_energy: float
    static_energy: float
    overhead_energy: float
    cycles: int

    @property
    def net_static_energy(self) -> float:
        """Static energy charged with the PG overhead (Sec. 6.3 fairness)."""
        return self.static_energy + self.overhead_energy

    @property
    def total_energy(self) -> float:
        """Dynamic + static + overhead energy of the run."""
        return self.dynamic_energy + self.net_static_energy


def run_parsec(
    benchmark: str,
    scheme_name: str,
    instructions: int = 1500,
    seed: int = 1,
    config: Optional[NoCConfig] = None,
    **scheme_kwargs,
) -> RunRecord:
    """Run one PARSEC-profile workload under one scheme."""
    config = config or NoCConfig()
    scheme = make_scheme(scheme_name, **scheme_kwargs)
    chip = Chip(
        config,
        scheme,
        get_profile(benchmark),
        instructions_per_core=instructions,
        seed=seed,
        benchmark=benchmark,
    )
    result = chip.run(max_cycles=8_000_000)
    energy = EnergyModel().account(chip.network)
    return RunRecord(
        workload=benchmark,
        scheme=scheme_name,
        execution_time=result.execution_time,
        avg_packet_latency=result.avg_packet_latency,
        avg_total_latency=result.avg_total_latency,
        avg_blocked_routers=result.avg_blocked_routers,
        avg_wakeup_wait=result.avg_wakeup_wait,
        injection_rate=result.injection_rate,
        dynamic_energy=energy.dynamic,
        static_energy=energy.static,
        overhead_energy=energy.overhead,
        cycles=result.cycles,
    )


def run_synthetic(
    pattern: str,
    injection_rate: float,
    scheme_name: str,
    warmup: int = 1000,
    measurement: int = 6000,
    seed: int = 7,
    config: Optional[NoCConfig] = None,
    drain: bool = True,
    **scheme_kwargs,
) -> RunRecord:
    """Run one open-loop synthetic-traffic point under one scheme."""
    config = config or NoCConfig()
    scheme = make_scheme(scheme_name, **scheme_kwargs)
    network = Network(config, scheme)
    traffic = SyntheticTraffic(network, pattern, injection_rate, seed=seed)
    energy_model = EnergyModel()
    traffic.run(warmup)
    snapshot = energy_model.snapshot(network)
    network.stats.measure_from = network.cycle
    traffic.run(measurement)
    energy = energy_model.account(network, since=snapshot)
    if drain:
        traffic.drain()
    stats = network.stats
    return RunRecord(
        workload=f"{pattern}@{injection_rate}",
        scheme=scheme_name,
        execution_time=network.cycle,
        avg_packet_latency=stats.avg_packet_latency,
        avg_total_latency=stats.avg_total_latency,
        avg_blocked_routers=stats.avg_blocked_routers,
        avg_wakeup_wait=stats.avg_wakeup_wait,
        injection_rate=stats.throughput(config.num_nodes),
        dynamic_energy=energy.dynamic,
        static_energy=energy.static,
        overhead_energy=energy.overhead,
        cycles=energy.cycles,
    )


# ----------------------------------------------------------------------
# Result caching (lets the per-figure scripts share one PARSEC sweep)
# ----------------------------------------------------------------------
def save_records(records: Sequence[RunRecord], path: str) -> None:
    """Persist run records as JSON."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump([asdict(r) for r in records], fh, indent=1)


def load_records(path: str) -> List[RunRecord]:
    """Load run records saved by :func:`save_records`."""
    with open(path) as fh:
        return [RunRecord(**row) for row in json.load(fh)]


def save_csv(records: Sequence[RunRecord], path: str) -> None:
    """Write records as CSV (one row per run) for external plotting."""
    import csv

    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    if not records:
        open(path, "w").close()
        return
    fields = list(asdict(records[0]))
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        for record in records:
            writer.writerow(asdict(record))


# ----------------------------------------------------------------------
# Table formatting
# ----------------------------------------------------------------------
def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render rows as an aligned plain-text table."""
    rendered = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def geomean_ratio(values: Sequence[float]) -> float:
    """Geometric mean of a sequence of ratios."""
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values)) if values else 0.0


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    return statistics.mean(values) if values else 0.0
