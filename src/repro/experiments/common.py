"""Shared experiment plumbing: scheme registry, run records, tables.

The sweep loops that used to live here moved to :mod:`repro.campaign`:
experiments declare :class:`~repro.campaign.CellSpec` cells and hand
them to the campaign engine, which runs them (optionally in parallel,
against a content-addressed cache) via :mod:`repro.campaign.runner`.
This module keeps only what every consumer shares: the scheme
registry, the :class:`RunRecord` measurement row with its persistence
helpers, and plain-text table formatting.
"""

from __future__ import annotations

import json
import os
import statistics
from dataclasses import asdict, dataclass
from typing import Iterable, List, Sequence

from ..baselines import NoRDLike
from ..core import ConvOptPG, NoPG, PowerPunchPG, PowerPunchSignal

#: The canonical per-core instruction budget of the documented PARSEC
#: runs (EXPERIMENTS.md: ``--instructions 2000``).  Every default —
#: ``run_parsec``, the suite, the campaign argparser, ``run-all`` —
#: points here so the documented run and the default run are the same.
CANONICAL_INSTRUCTIONS = 2000

#: The four evaluated schemes, in the paper's order (Sec. 5).
SCHEMES = {
    "No-PG": NoPG,
    "ConvOpt-PG": ConvOptPG,
    "PowerPunch-Signal": PowerPunchSignal,
    "PowerPunch-PG": PowerPunchPG,
}

SCHEME_ORDER = list(SCHEMES)

#: Schemes runnable by name but outside the paper's headline four
#: (Sec. 6.6(3) comparison baselines).
EXTRA_SCHEMES = {
    "NoRD-like": NoRDLike,
}

ALL_SCHEMES = {**SCHEMES, **EXTRA_SCHEMES}


def make_scheme(name: str, **kwargs):
    """Instantiate a scheme by registry name.

    Unexpected kwargs always fail loudly: parameterized schemes raise
    ``TypeError`` from their constructors, and No-PG (which takes no
    parameters) rejects any kwargs explicitly so a typo in a sweep
    spec cannot silently evaporate.
    """
    cls = ALL_SCHEMES[name]
    if cls is NoPG:
        if kwargs:
            raise TypeError(
                f"No-PG accepts no scheme kwargs, got {sorted(kwargs)}"
            )
        return cls()
    return cls(**kwargs)


@dataclass
class RunRecord:
    """One (workload, scheme) measurement."""

    workload: str
    scheme: str
    execution_time: int
    avg_packet_latency: float
    avg_total_latency: float
    avg_blocked_routers: float
    avg_wakeup_wait: float
    injection_rate: float
    dynamic_energy: float
    static_energy: float
    overhead_energy: float
    cycles: int

    @property
    def net_static_energy(self) -> float:
        """Static energy charged with the PG overhead (Sec. 6.3 fairness)."""
        return self.static_energy + self.overhead_energy

    @property
    def total_energy(self) -> float:
        """Dynamic + static + overhead energy of the run."""
        return self.dynamic_energy + self.net_static_energy


# ----------------------------------------------------------------------
# Record persistence (the exported products of a campaign run)
# ----------------------------------------------------------------------
def save_records(records: Sequence[RunRecord], path: str) -> None:
    """Persist run records as JSON."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump([asdict(r) for r in records], fh, indent=1)


def load_records(path: str) -> List[RunRecord]:
    """Load run records saved by :func:`save_records`."""
    with open(path) as fh:
        return [RunRecord(**row) for row in json.load(fh)]


def save_csv(records: Sequence[RunRecord], path: str) -> None:
    """Write records as CSV (one row per run) for external plotting."""
    import csv

    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    if not records:
        open(path, "w").close()
        return
    fields = list(asdict(records[0]))
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        for record in records:
            writer.writerow(asdict(record))


# ----------------------------------------------------------------------
# Table formatting
# ----------------------------------------------------------------------
def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render rows as an aligned plain-text table."""
    rendered = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def geomean_ratio(values: Sequence[float]) -> float:
    """Geometric mean of a sequence of ratios."""
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values)) if values else 0.0


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    return statistics.mean(values) if values else 0.0
