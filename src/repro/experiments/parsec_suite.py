"""Full PARSEC x scheme sweep shared by Figures 7-11.

Running the 8-benchmark, 4-scheme matrix takes a few minutes; the
result list is cached to JSON so the per-figure scripts can re-use it:

    python -m repro.experiments.parsec_suite --out results/parsec.json
    python -m repro.experiments.fig7_fig8 --cache results/parsec.json
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence, Tuple

from ..system import PARSEC_BENCHMARKS
from .common import SCHEME_ORDER, RunRecord, load_records, run_parsec, save_records


def _run_one(job: Tuple[str, str, int, int]) -> RunRecord:
    bench, scheme, instructions, seed = job
    return run_parsec(bench, scheme, instructions=instructions, seed=seed)


def run_suite(
    benchmarks: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[str]] = None,
    instructions: int = 1500,
    seed: int = 1,
    verbose: bool = True,
    workers: int = 1,
) -> List[RunRecord]:
    """Run the benchmark x scheme matrix.

    Every (benchmark, scheme) run is independent and deterministic, so
    with ``workers > 1`` the matrix fans out over a process pool;
    results come back in the same benchmark-major order either way.
    """
    benchmarks = list(benchmarks or PARSEC_BENCHMARKS)
    schemes = list(schemes or SCHEME_ORDER)
    jobs = [
        (bench, scheme, instructions, seed)
        for bench in benchmarks
        for scheme in schemes
    ]
    if workers > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            records = list(pool.map(_run_one, jobs))
    else:
        records = [_run_one(job) for job in jobs]
    if verbose:
        for record in records:
            print(
                f"[suite] {record.workload:13s} {record.scheme:18s} "
                f"exec={record.execution_time:7d} "
                f"lat={record.avg_total_latency:6.2f} "
                f"blk={record.avg_blocked_routers:5.2f} "
                f"wait={record.avg_wakeup_wait:6.2f}"
            )
    return records


def suite_records(
    cache: Optional[str],
    instructions: int = 1500,
    benchmarks: Optional[Sequence[str]] = None,
    verbose: bool = True,
) -> List[RunRecord]:
    """Load records from ``cache`` if possible, else run and store them."""
    if cache:
        try:
            return load_records(cache)
        except (OSError, ValueError):
            pass
    records = run_suite(
        benchmarks=benchmarks, instructions=instructions, verbose=verbose
    )
    if cache:
        save_records(records, cache)
    return records


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run the matrix and write the JSON cache."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results/parsec_suite.json")
    parser.add_argument("--csv", default=None, help="also export rows as CSV")
    parser.add_argument("--instructions", type=int, default=1500)
    parser.add_argument("--benchmarks", nargs="*", default=None)
    parser.add_argument(
        "--workers", type=int, default=1, help="process-pool fan-out (runs are independent)"
    )
    args = parser.parse_args(argv)
    records = run_suite(
        benchmarks=args.benchmarks,
        instructions=args.instructions,
        workers=args.workers,
    )
    save_records(records, args.out)
    print(f"saved {len(records)} records to {args.out}")
    if args.csv:
        from .common import save_csv

        save_csv(records, args.csv)
        print(f"saved CSV to {args.csv}")


if __name__ == "__main__":
    main()
