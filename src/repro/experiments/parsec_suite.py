"""Full PARSEC x scheme sweep shared by Figures 7-11.

The 8-benchmark, 4-scheme matrix is declared as campaign cells and
executed through :mod:`repro.campaign`: with ``--cache-dir`` every
(benchmark, scheme, config, seed) cell is content-addressed on disk,
so re-runs (and the per-figure scripts) recompute only invalidated
cells, and ``--workers N`` fans the matrix out over a process pool::

    python -m repro.experiments.parsec_suite --out results/parsec_suite.json \\
        --workers 4 --cache-dir results/cellcache
    python -m repro.cli fig7-fig8 --cache results/parsec_suite.json
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..campaign import Campaign, CellSpec, campaign_argparser, engine_options, require_mesh_topology
from ..system import PARSEC_BENCHMARKS
from .common import (
    CANONICAL_INSTRUCTIONS,
    SCHEME_ORDER,
    RunRecord,
    load_records,
    save_records,
)


def suite_campaign(
    benchmarks: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[str]] = None,
    instructions: int = CANONICAL_INSTRUCTIONS,
    seed: int = 1,
) -> Campaign:
    """Declare the benchmark x scheme matrix as a campaign."""
    benchmarks = list(benchmarks or PARSEC_BENCHMARKS)
    schemes = list(schemes or SCHEME_ORDER)
    cells = tuple(
        CellSpec.parsec(bench, scheme, instructions=instructions, seed=seed)
        for bench in benchmarks
        for scheme in schemes
    )
    return Campaign(name="parsec-suite", cells=cells)


def run_suite(
    benchmarks: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[str]] = None,
    instructions: int = CANONICAL_INSTRUCTIONS,
    seed: int = 1,
    verbose: bool = True,
    **engine,
) -> List[RunRecord]:
    """Run the benchmark x scheme matrix through the campaign engine.

    Every cell is independent and carries its own seed, so with
    ``workers > 1`` the matrix fans out over a process pool; results
    come back in the same benchmark-major order either way.  Extra
    keyword arguments (``workers``, ``cache_dir``, ``resume``,
    ``timeout``, ``max_retries``, ``quarantine_dir``, ...) go straight
    to :meth:`repro.campaign.Campaign.run`.
    """
    campaign = suite_campaign(
        benchmarks=benchmarks, schemes=schemes, instructions=instructions, seed=seed
    )
    records = campaign.run(**engine)
    if verbose:
        for record in records:
            print(
                f"[suite] {record.workload:13s} {record.scheme:18s} "
                f"exec={record.execution_time:7d} "
                f"lat={record.avg_total_latency:6.2f} "
                f"blk={record.avg_blocked_routers:5.2f} "
                f"wait={record.avg_wakeup_wait:6.2f}"
            )
    return records


def suite_records(
    cache: Optional[str],
    instructions: int = CANONICAL_INSTRUCTIONS,
    benchmarks: Optional[Sequence[str]] = None,
    verbose: bool = True,
    **engine,
) -> List[RunRecord]:
    """Load records from the suite JSON if possible, else run and store.

    ``cache`` is the whole-suite records file (the exported product);
    ``cache_dir`` is the per-cell content-addressed cache that decides
    what actually needs to simulate.
    """
    if cache:
        try:
            return load_records(cache)
        except (OSError, ValueError):
            pass
    records = run_suite(
        benchmarks=benchmarks,
        instructions=instructions,
        verbose=verbose,
        **engine,
    )
    if cache:
        save_records(records, cache)
    return records


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run the matrix and write the JSON product."""
    parser = campaign_argparser(__doc__, instructions=True)
    parser.add_argument("--out", default="results/parsec_suite.json")
    parser.add_argument("--csv", default=None, help="also export rows as CSV")
    parser.add_argument("--benchmarks", nargs="*", default=None)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    require_mesh_topology(args, 'the PARSEC suite')
    records = run_suite(
        benchmarks=args.benchmarks,
        instructions=args.instructions,
        seed=args.seed,
        **engine_options(args),
    )
    save_records(records, args.out)
    print(f"saved {len(records)} records to {args.out}")
    if args.csv:
        from .common import save_csv

        save_csv(records, args.csv)
        print(f"saved CSV to {args.csv}")


if __name__ == "__main__":
    main()
