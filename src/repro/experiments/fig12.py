"""Figure 12: latency and router static power across the full load range.

Three synthetic patterns (uniform random, bit-complement, transpose)
are swept from near-zero load toward saturation under No-PG,
ConvOpt-PG and PowerPunch-PG, reporting average network latency and
average net router static power (watts) over the measurement window.

Expected shape (paper Sec. 6.4): ConvOpt-PG shows the "power-gating
curve" — a large latency penalty at low load that shrinks as more
routers stay on, then rises again toward saturation — while
PowerPunch-PG tracks No-PG across the whole range and reaches the same
saturation throughput.  Both PG schemes save most static power at low
load; ConvOpt-PG may be slightly better at medium load, at a large
performance cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..campaign import Campaign, CellSpec, campaign_argparser, engine_options, require_mesh_topology
from .common import RunRecord, format_table

#: Sweep loads per pattern (flits/node/cycle).  Transpose and
#: bit-complement saturate earlier than uniform random (Fig. 12 axes).
DEFAULT_LOADS = {
    "uniform_random": [0.005, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20],
    "bit_complement": [0.005, 0.01, 0.02, 0.04, 0.08, 0.12],
    "transpose": [0.005, 0.01, 0.02, 0.04, 0.08, 0.12],
}

_SCHEMES = ["No-PG", "ConvOpt-PG", "PowerPunch-PG"]


def sweep_campaign(
    pattern: str,
    loads: Sequence[float],
    warmup: int = 1000,
    measurement: int = 5000,
    schemes: Sequence[str] = tuple(_SCHEMES),
) -> Campaign:
    """Declare one pattern's load sweep as a campaign."""
    cells = tuple(
        CellSpec.synthetic(
            pattern,
            load,
            scheme,
            warmup=warmup,
            measurement=measurement,
            drain=False,
        )
        for load in loads
        for scheme in schemes
    )
    return Campaign(name=f"fig12-{pattern}", cells=cells)


def run_sweep(
    pattern: str,
    loads: Sequence[float],
    warmup: int = 1000,
    measurement: int = 5000,
    schemes: Sequence[str] = tuple(_SCHEMES),
    verbose: bool = True,
    **engine,
) -> List[RunRecord]:
    """Sweep one traffic pattern across loads for the Fig. 12 schemes."""
    campaign = sweep_campaign(
        pattern, loads, warmup=warmup, measurement=measurement, schemes=schemes
    )
    records = campaign.run(**engine)
    if verbose:
        for record in records:
            load = float(record.workload.split("@")[1])
            print(
                f"[fig12] {pattern:15s} load={load:.3f} {record.scheme:15s} "
                f"lat={record.avg_total_latency:7.2f} "
                f"P_static={record.static_power_w():.3f} W"
            )
    return records


def _static_power(record: RunRecord) -> float:
    from ..power import DEFAULT_CONSTANTS

    seconds = record.cycles / DEFAULT_CONSTANTS.frequency
    return record.net_static_energy / seconds if seconds else 0.0


# Attach as a method-like helper for convenience.
RunRecord.static_power_w = _static_power  # type: ignore[attr-defined]


def report(pattern: str, records: List[RunRecord]) -> str:
    """Format the latency and static-power tables for one pattern."""
    by_load: Dict[float, Dict[str, RunRecord]] = {}
    for r in records:
        load = float(r.workload.split("@")[1])
        by_load.setdefault(load, {})[r.scheme] = r
    lat_rows = []
    pow_rows = []
    for load in sorted(by_load):
        per = by_load[load]
        lat_rows.append(
            [load] + [per[s].avg_total_latency for s in _SCHEMES if s in per]
        )
        pow_rows.append(
            [load] + [per[s].static_power_w() for s in _SCHEMES if s in per]
        )
    out = [
        format_table(
            ["load"] + _SCHEMES,
            lat_rows,
            title=f"Figure 12 ({pattern}): average packet latency (cycles)",
        ),
        "",
        format_table(
            ["load"] + _SCHEMES,
            pow_rows,
            title=f"Figure 12 ({pattern}): net router static power (W)",
        ),
    ]
    return "\n".join(out)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    parser = campaign_argparser(__doc__)
    parser.add_argument(
        "--patterns", nargs="*", default=list(DEFAULT_LOADS), help="patterns to sweep"
    )
    parser.add_argument("--measurement", type=int, default=5000)
    parser.add_argument("--csv", default=None, help="export all rows as CSV")
    args = parser.parse_args(argv)
    require_mesh_topology(args, 'the Fig. 12 experiment')
    all_records = []
    for pattern in args.patterns:
        records = run_sweep(
            pattern,
            DEFAULT_LOADS[pattern],
            measurement=args.measurement,
            **engine_options(args),
        )
        all_records.extend(records)
        print()
        print(report(pattern, records))
        print()
    if args.csv:
        from .common import save_csv

        save_csv(all_records, args.csv)
        print(f"saved CSV to {args.csv}")


if __name__ == "__main__":
    main()
