"""Shared result store of the campaign service.

The orchestrator is the single write path for campaign results; the
store behind it is pluggable.  :class:`FilesystemStore` wraps today's
content-addressed :class:`~repro.campaign.cache.CellCache` (so a
service campaign and a single-host campaign share cache entries
bit-for-bit, and a warm service rerun answers every cell without
scheduling any work); :class:`MemoryStore` backs cache-less runs and
tests.  An object-store backend later only needs the same four
methods.

Event streams: the orchestrator and every worker host write their own
JSONL logs (stamped with ``host`` and per-host ``seq`` by
:class:`~repro.campaign.engine.EventLog`); ``merged_events`` collects
the service's logs into one deterministic stream.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from ..cache import CellCache, Payload, code_salt, decode_payload, encode_payload
from ..engine import merge_event_streams
from ..spec import CellSpec


class ResultStore:
    """Interface every service store backend implements.

    Keys are the same content addresses the single-host engine uses
    (``spec.cache_key(salt)``), so any two backends loaded with the
    same results agree on every lookup.
    """

    salt: str

    def key_for(self, spec: CellSpec) -> str:
        return spec.cache_key(self.salt)

    def get(self, spec: CellSpec) -> Optional[Payload]:  # pragma: no cover
        raise NotImplementedError

    def put(self, spec: CellSpec, payload: Payload) -> None:  # pragma: no cover
        raise NotImplementedError


class FilesystemStore(ResultStore):
    """The default backend: a directory-backed :class:`CellCache`."""

    def __init__(
        self, root: Union[str, Path], salt: Optional[str] = None
    ) -> None:
        self.cache = CellCache(root, salt)
        self.salt = self.cache.salt
        self.root = self.cache.root

    def get(self, spec: CellSpec) -> Optional[Payload]:
        return self.cache.get(spec)

    def put(self, spec: CellSpec, payload: Payload) -> None:
        self.cache.put(spec, payload)


class MemoryStore(ResultStore):
    """In-memory backend for cache-less campaigns and tests.

    Payloads are kept in their encoded (JSON-ready) form so a
    round-trip through this store is bit-identical to a round-trip
    through the filesystem backend.
    """

    def __init__(self, salt: Optional[str] = None) -> None:
        self.salt = code_salt() if salt is None else salt
        self._entries: Dict[str, dict] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, spec: CellSpec) -> Optional[Payload]:
        doc = self._entries.get(self.key_for(spec))
        if doc is None:
            return None
        return decode_payload(doc)

    def put(self, spec: CellSpec, payload: Payload) -> None:
        self._entries[self.key_for(spec)] = encode_payload(payload)


def host_log_path(base: Union[str, Path], host: str) -> Path:
    """Where worker host ``host`` appends its engine event log."""
    safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in host)
    return Path(base) / "hosts" / f"{safe}.events.jsonl"


def merged_events(
    orchestrator_log: Union[str, Path],
    host_logs: Optional[List[Union[str, Path]]] = None,
) -> List[dict]:
    """The service's merged event stream (orchestrator + worker hosts).

    With only the orchestrator log given, its sibling ``hosts/``
    directory is swept for worker logs automatically.
    """
    paths: List[Union[str, Path]] = [orchestrator_log]
    if host_logs is None:
        hosts_dir = Path(orchestrator_log).parent / "hosts"
        host_logs = sorted(hosts_dir.glob("*.events.jsonl"))
    paths.extend(host_logs)
    return merge_event_streams(paths)
