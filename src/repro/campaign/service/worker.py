"""Worker host: a leased-cell agent around the supervised engine.

A :class:`WorkerHost` dials the orchestrator, requests cell leases and
runs each batch through today's :func:`~repro.campaign.engine.
execute_cells` **unchanged** — so per-cell wall-clock timeouts, worker
crash isolation with pool respawn, retry classification and
quarantine all keep working *inside* each host exactly as they do in
a single-host campaign.  The service layer above only adds host-level
failure handling (leases, heartbeats, requeue).

Concurrency: the engine batch runs on an executor thread while the
asyncio side keeps heartbeating (listing the outstanding lease ids,
which renews them) and forwarding results as the engine's
``on_result``/``on_failure`` callbacks deliver them — a long batch
neither starves heartbeats nor delays result streaming.

``python -m repro.campaign.service --connect HOST:PORT`` runs a host
standalone (``repro.cli work`` is the front door); it reconnects with
exponential backoff when the orchestrator goes away.
"""

from __future__ import annotations

import argparse
import asyncio
import socket
import sys
from functools import partial
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple, Union

from ..cache import CellCache, code_salt, encode_payload
from ..engine import execute_cells
from ..spec import CellSpec
from . import protocol
from .store import host_log_path


class WorkerError(RuntimeError):
    """The orchestrator refused this host (salt mismatch, name clash)."""


class WorkerHost:
    """One worker host agent (see module docstring)."""

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        *,
        name: Optional[str] = None,
        capacity: int = 2,
        timeout: Optional[float] = None,
        max_retries: int = 2,
        cache_dir: Optional[Union[str, Path]] = None,
        quarantine_dir: Optional[Union[str, Path]] = None,
        log_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if isinstance(address, str):
            address = protocol.parse_address(address)
        self.host, self.port = address
        self.name = name or f"{socket.gethostname()}-{id(self) & 0xFFFF:x}"
        self.capacity = max(1, capacity)
        self.timeout = timeout
        self.max_retries = max_retries
        self.cache_dir = cache_dir
        self.quarantine_dir = quarantine_dir
        self.log_path = (
            host_log_path(log_dir, self.name) if log_dir is not None else None
        )
        self.heartbeat_interval = 2.0  # replaced by the welcome message
        self.cells_completed = 0
        self._running: Set[str] = set()
        self._stop = False
        self._writer: Optional[asyncio.StreamWriter] = None
        self._send_lock: Optional[asyncio.Lock] = None
        self._incoming: Optional[asyncio.Queue] = None

    # ------------------------------------------------------------------
    # Session
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """One connection's worth of work; returns on orchestrator EOF."""
        reader, writer = await protocol.open_connection(self.host, self.port)
        self._writer = writer
        self._send_lock = asyncio.Lock()
        self._incoming = asyncio.Queue()
        await self._send(
            {
                "type": "hello",
                "role": "worker",
                "host": self.name,
                "capacity": self.capacity,
                "salt": code_salt(),
                "version": protocol.VERSION,
            }
        )
        reader_task = asyncio.ensure_future(self._read_loop(reader))
        welcome = await self._next_message()
        if welcome is None:
            reader_task.cancel()
            raise ConnectionError("orchestrator closed during handshake")
        if welcome.get("type") == "error":
            reader_task.cancel()
            raise WorkerError(welcome.get("error", "refused"))
        if welcome.get("type") != "welcome":
            reader_task.cancel()
            raise protocol.ProtocolError(f"expected welcome, got {welcome!r}")
        self.heartbeat_interval = float(
            welcome.get("heartbeat_interval", self.heartbeat_interval)
        )
        heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())
        try:
            while not self._stop:
                leases, retry_after = await self._request_batch()
                if leases:
                    await self._run_batch(leases)
                else:
                    await self._idle_wait(retry_after)
        except ConnectionError:
            pass
        finally:
            for task in (reader_task, heartbeat_task):
                task.cancel()
            try:
                writer.close()
            except Exception:  # pragma: no cover - defensive
                pass
            self._writer = None

    def stop(self) -> None:
        self._stop = True

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                message = await protocol.recv(reader)
                await self._incoming.put(message)
                if message is None:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            await self._incoming.put(None)

    async def _next_message(self) -> Optional[dict]:
        return await self._incoming.get()

    async def _send(self, message: dict) -> None:
        if self._writer is None:
            raise ConnectionError("not connected")
        async with self._send_lock:
            await protocol.send(self._writer, message)

    async def _heartbeat_loop(self) -> None:
        seq = 0
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            try:
                await self._send(
                    {
                        "type": "heartbeat",
                        "seq": seq,
                        "running": sorted(self._running),
                    }
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            seq += 1

    # ------------------------------------------------------------------
    # Lease acquisition
    # ------------------------------------------------------------------
    async def _request_batch(self) -> Tuple[List[dict], Optional[float]]:
        """Ask for up to ``capacity`` leases; returns ``(leases,
        retry_after_hint)``."""
        await self._send({"type": "request", "slots": self.capacity})
        leases: List[dict] = []
        while True:
            message = await self._next_message()
            if message is None:
                raise ConnectionError("orchestrator went away")
            kind = message.get("type")
            if kind == "lease":
                leases.append(message)
            elif kind == "grant-end":
                return leases, message.get("retry_after")
            elif kind == "poke":
                continue  # already requesting
            elif kind == "error":
                raise WorkerError(message.get("error", "refused"))

    async def _idle_wait(self, retry_after: Optional[float]) -> None:
        """Sleep until poked or a poll interval elapses."""
        delay = retry_after if retry_after else self.heartbeat_interval
        try:
            message = await asyncio.wait_for(
                self._next_message(), timeout=max(0.05, delay)
            )
            if message is None:
                raise ConnectionError("orchestrator went away")
        except asyncio.TimeoutError:
            pass

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    async def _run_batch(self, leases: List[dict]) -> None:
        specs = [CellSpec.from_canonical(lease["spec"]) for lease in leases]
        self._running.update(lease["lease_id"] for lease in leases)
        loop = asyncio.get_running_loop()
        outbox: asyncio.Queue = asyncio.Queue()

        def on_result(index, spec, payload, was_hit) -> None:
            lease = leases[index]
            loop.call_soon_threadsafe(
                outbox.put_nowait,
                {
                    "type": "result",
                    "lease_id": lease["lease_id"],
                    "key": lease["key"],
                    "payload": encode_payload(payload),
                    "cached": was_hit,
                },
            )

        def on_failure(index, spec, exc, classification) -> None:
            lease = leases[index]
            loop.call_soon_threadsafe(
                outbox.put_nowait,
                {
                    "type": "failure",
                    "lease_id": lease["lease_id"],
                    "key": lease["key"],
                    "error": str(exc),
                    "error_type": type(exc).__qualname__,
                    "classification": classification,
                },
            )

        run = partial(
            execute_cells,
            specs,
            workers=self.capacity,
            timeout=self.timeout,
            max_retries=self.max_retries,
            cache=CellCache(self.cache_dir) if self.cache_dir else None,
            quarantine=self.quarantine_dir,
            failure_mode="continue",
            log_path=self.log_path,
            log_host=self.name,
            name=f"{self.name}-batch",
            on_result=on_result,
            on_failure=on_failure,
        )
        exec_future = loop.run_in_executor(None, run)
        exec_future.add_done_callback(lambda _f: outbox.put_nowait(None))
        reported = 0
        while True:
            message = await outbox.get()
            if message is None:
                break
            self._running.discard(message["lease_id"])
            reported += 1
            if message["type"] == "result":
                self.cells_completed += 1
            await self._send(message)
        # Engine-level crash (not a cell failure): report the leases
        # that never got a verdict so the orchestrator can requeue them
        # without waiting out the lease clock, then propagate.
        exc = exec_future.exception()
        if exc is not None:
            for lease in leases:
                if lease["lease_id"] in self._running:
                    self._running.discard(lease["lease_id"])
                    await self._send(
                        {
                            "type": "failure",
                            "lease_id": lease["lease_id"],
                            "key": lease["key"],
                            "error": f"worker host engine error: {exc}",
                            "error_type": type(exc).__qualname__,
                            "classification": "host-error",
                        }
                    )
            raise exc
        assert reported == len(leases), "engine under-reported a batch"


def run_worker(
    address: str,
    *,
    reconnect: int = 0,
    backoff_base: float = 0.5,
    backoff_cap: float = 10.0,
    **kwargs,
) -> None:
    """Run a worker host, reconnecting up to ``reconnect`` extra times
    with doubling (capped) backoff when the orchestrator goes away."""

    async def _main() -> None:
        attempts = 0
        while True:
            worker = WorkerHost(address, **kwargs)
            try:
                await worker.run()
            except WorkerError:
                raise
            except (ConnectionError, OSError) as exc:
                if attempts >= reconnect:
                    raise SystemExit(
                        f"worker could not reach orchestrator {address}: {exc}"
                    )
            attempts += 1
            if attempts > reconnect:
                return
            delay = min(backoff_cap, backoff_base * (2.0 ** (attempts - 1)))
            await asyncio.sleep(delay)

    asyncio.run(_main())


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro.campaign.service.worker",
        description="campaign worker host (see docs/service.md)",
    )
    parser.add_argument(
        "--connect", required=True, help="orchestrator address host:port"
    )
    parser.add_argument("--name", default=None, help="stable host identity")
    parser.add_argument(
        "--capacity",
        type=int,
        default=2,
        help="cells leased and run concurrently (the in-host pool size)",
    )
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--max-retries", type=int, default=2)
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="shared cell cache directory (worker writes results "
        "directly when it shares a filesystem with the store)",
    )
    parser.add_argument("--quarantine-dir", default=None)
    parser.add_argument(
        "--log-dir",
        default=None,
        help="directory for this host's JSONL event log "
        "(<log-dir>/hosts/<name>.events.jsonl)",
    )
    parser.add_argument(
        "--reconnect",
        type=int,
        default=0,
        help="extra connection attempts after the orchestrator goes away",
    )
    args = parser.parse_args(argv)
    try:
        run_worker(
            args.connect,
            reconnect=args.reconnect,
            name=args.name,
            capacity=args.capacity,
            timeout=args.timeout,
            max_retries=args.max_retries,
            cache_dir=args.cache_dir,
            quarantine_dir=args.quarantine_dir,
            log_dir=args.log_dir,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive
        print("worker host stopped", file=sys.stderr)


if __name__ == "__main__":
    main()
