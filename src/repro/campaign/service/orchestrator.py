"""The campaign orchestrator: sharding, leases, heartbeats, stealing.

One asyncio process owns the authoritative campaign state and the
single write path into the shared :class:`ResultStore`.  Worker hosts
and clients dial in over TCP (see :mod:`.protocol`); everything below
runs on one event loop, so no locks guard the scheduler state.

Scheduling model
----------------

* **Sharding** — cold cells are partitioned over the connected worker
  hosts by spec hash (``int(key, 16) % num_hosts`` over the sorted
  host names), so a re-submitted campaign lands on the same shards and
  cache-affinity is stable.  Cells submitted while no host is
  connected wait in an unassigned backlog and are sharded on arrival
  of the first host.
* **Leases** — a granted cell carries a time-bounded lease.  Every
  heartbeat from the owning host that still lists the lease renews it;
  a lease whose deadline passes (host wedged, heartbeats lost, or the
  host silently dropped the cell) is requeued for anyone else.  The
  original host may still finish and report — the **dedup** rule makes
  that benign: the first valid payload for a key wins, later ones are
  logged as duplicates and discarded (payloads are pure functions of
  the spec, so both are bit-identical anyway).
* **Heartbeats** — a host that misses :attr:`miss_limit` consecutive
  heartbeat intervals is declared dead: its leases requeue immediately
  and its next connection pays an exponentially growing reconnect
  penalty (doubling per death, capped), mirroring the wakeup
  retry/backoff state machine of ``powergate/controller.py``.
* **Work-stealing** — a host whose own shard queue is empty steals
  unleased cells from the host with the largest backlog (the slowest
  shard), keeping stragglers from serializing the tail of a campaign.

Results stream back to submitting clients incrementally (hits first,
then completions in arrival order); the client reassembles declared
order.  Every scheduling action lands in the orchestrator's JSONL
event log (host ``orchestrator``), which merges deterministically
with the per-host worker logs (see :func:`.store.merged_events`).
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, List, Optional, Set, Tuple, Union

from ..cache import decode_payload, encode_payload
from ..engine import EventLog
from ..spec import CellSpec
from . import protocol
from .store import MemoryStore, ResultStore

#: Scheduler defaults; tests and local clusters tighten them.
LEASE_DURATION = 30.0
HEARTBEAT_INTERVAL = 2.0
MISS_LIMIT = 3
RECONNECT_BACKOFF_BASE = 0.5
RECONNECT_BACKOFF_CAP = 30.0


class _Host:
    """Orchestrator-side record of one worker host."""

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = capacity
        self.writer: Optional[asyncio.StreamWriter] = None
        self.send_lock = asyncio.Lock()
        self.connected = False
        self.last_heartbeat = 0.0
        #: Keys currently leased to this host, by lease id.
        self.leases: Dict[str, str] = {}
        #: Times this host has been declared dead (drives the
        #: exponential reconnect backoff, wakeup-retry style).
        self.deaths = 0
        self.penalty_until = 0.0
        #: Cells completed by this host (throughput accounting).
        self.completed = 0

    def backoff(self) -> float:
        """Reconnect penalty after ``deaths`` deaths: doubling, capped."""
        if self.deaths == 0:
            return 0.0
        return min(
            RECONNECT_BACKOFF_CAP,
            RECONNECT_BACKOFF_BASE * (2.0 ** (self.deaths - 1)),
        )


class _Cell:
    """Scheduler state of one distinct (content-addressed) cell."""

    __slots__ = (
        "key", "spec", "status", "shard", "payload", "error",
        "classification", "lease_id", "lease_host", "lease_deadline",
        "waiters", "requeues",
    )

    def __init__(self, key: str, spec: CellSpec) -> None:
        self.key = key
        self.spec = spec
        self.status = "cold"  # cold | leased | done | failed
        self.shard: Optional[str] = None
        self.payload: Optional[dict] = None  # encoded form
        self.error: Optional[str] = None
        self.classification: Optional[str] = None
        self.lease_id: Optional[str] = None
        self.lease_host: Optional[str] = None
        self.lease_deadline = 0.0
        #: ``(campaign, index)`` pairs awaiting this key.
        self.waiters: List[Tuple["_CampaignRun", int]] = []
        self.requeues = 0


class _CampaignRun:
    """One submitted campaign and its result stream."""

    _ids = itertools.count(1)

    def __init__(
        self,
        name: str,
        total: int,
        writer: asyncio.StreamWriter,
        send_lock: asyncio.Lock,
    ) -> None:
        self.id = next(self._ids)
        self.name = name
        self.total = total
        self.writer = writer
        self.send_lock = send_lock
        self.remaining = total
        self.hits = 0
        self.executed = 0
        self.failed = 0
        self.closed = False


class Orchestrator:
    """The sharded campaign service (see module docstring)."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_duration: float = LEASE_DURATION,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        miss_limit: int = MISS_LIMIT,
        log_path: Optional[str] = None,
        name: str = "service",
    ) -> None:
        if lease_duration <= 0 or heartbeat_interval <= 0:
            raise ValueError("lease_duration and heartbeat_interval must be > 0")
        self.store = store if store is not None else MemoryStore()
        self.bind_host = host
        self.port = port
        self.lease_duration = lease_duration
        self.heartbeat_interval = heartbeat_interval
        self.miss_limit = miss_limit
        self.name = name
        self.log = EventLog(log_path, host="orchestrator")
        self.hosts: Dict[str, _Host] = {}
        self.cells: Dict[str, _Cell] = {}
        #: Per-host shard queues of cold keys, plus the pre-host backlog.
        self.queues: Dict[str, List[str]] = {}
        self.unassigned: List[str] = []
        self.stats = {
            "leases": 0, "steals": 0, "requeues": 0, "duplicates": 0,
            "expired": 0, "dead_hosts": 0, "completed": 0, "failed": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._monitor: Optional[asyncio.Task] = None
        self._connections: Set[asyncio.Task] = set()
        self._closed = False
        self._lease_ids = itertools.count(1)
        # Created inside the running loop (3.9 binds primitives at
        # construction time).
        self._stopped: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the server and start the lease/heartbeat monitor."""
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.bind_host,
            self.port,
            limit=protocol.LINE_LIMIT,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._monitor = asyncio.ensure_future(self._monitor_loop())
        self.log.emit(
            {
                "event": "service-start",
                "name": self.name,
                "port": self.port,
                "salt": self.store.salt,
                "lease_duration": self.lease_duration,
                "heartbeat_interval": self.heartbeat_interval,
                "miss_limit": self.miss_limit,
            }
        )

    @property
    def address(self) -> str:
        return f"{self.bind_host}:{self.port}"

    async def serve_forever(self) -> None:
        """Serve until :meth:`signal_stop` / :meth:`stop`, then shut
        down cleanly (the shutdown runs *before* this returns, so the
        caller may close the loop immediately after)."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()
        await self._shutdown()

    def signal_stop(self) -> None:
        """Ask ``serve_forever`` to exit.  Must run on the service's
        loop — from another thread, go through ``call_soon_threadsafe``."""
        if self._stopped is not None:
            self._stopped.set()

    async def stop(self) -> None:
        self.signal_stop()
        await self._shutdown()

    async def _shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._monitor is not None:
            self._monitor.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self.log.emit({"event": "service-stop", "name": self.name})
        self.log.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        send_lock = asyncio.Lock()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            hello = await protocol.recv(reader)
            if hello is None:
                return
            if hello.get("type") != "hello":
                await protocol.send(
                    writer, {"type": "error", "error": "expected hello"}
                )
                return
            if hello.get("salt") != self.store.salt:
                await protocol.send(
                    writer,
                    {
                        "type": "error",
                        "error": "code-salt mismatch: peer runs different "
                        f"simulator sources (service salt {self.store.salt})",
                    },
                )
                return
            role = hello.get("role")
            if role == "worker":
                await self._worker_session(hello, reader, writer, send_lock)
            elif role == "client":
                await self._client_session(hello, reader, writer, send_lock)
            else:
                await protocol.send(
                    writer, {"type": "error", "error": f"unknown role {role!r}"}
                )
        except (
            protocol.ProtocolError,
            ConnectionError,
            asyncio.IncompleteReadError,
        ):
            pass
        except asyncio.CancelledError:
            # Service shutdown with the session still open: worker and
            # client sessions clean up in their own finallys; ending
            # the task normally keeps the streams teardown quiet.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
            except Exception:  # pragma: no cover - defensive
                pass

    # ------------------------------------------------------------------
    # Worker sessions
    # ------------------------------------------------------------------
    async def _worker_session(
        self,
        hello: dict,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        send_lock: asyncio.Lock,
    ) -> None:
        name = str(hello.get("host", "")) or f"host-{id(writer) & 0xFFFF:x}"
        capacity = max(1, int(hello.get("capacity", 1)))
        record = self.hosts.get(name)
        if record is not None and record.connected:
            await protocol.send(
                writer,
                {"type": "error", "error": f"host name {name!r} already connected"},
            )
            return
        if record is None:
            record = self.hosts[name] = _Host(name, capacity)
        record.capacity = capacity
        record.writer = writer
        record.send_lock = send_lock
        record.connected = True
        record.last_heartbeat = self._now()
        if record.deaths:
            record.penalty_until = self._now() + record.backoff()
        self.queues.setdefault(name, [])
        self.log.emit(
            {
                "event": "host-join",
                "host_name": name,
                "capacity": capacity,
                "deaths": record.deaths,
                "penalty": round(max(0.0, record.penalty_until - self._now()), 3),
            }
        )
        await self._send_host(
            record,
            {
                "type": "welcome",
                "name": self.name,
                "heartbeat_interval": self.heartbeat_interval,
                "lease_duration": self.lease_duration,
            },
        )
        self._assign_backlog()
        try:
            while True:
                message = await protocol.recv(reader)
                if message is None:
                    break
                kind = message["type"]
                if kind == "request":
                    await self._grant(record, int(message.get("slots", 1)))
                elif kind == "heartbeat":
                    self._heartbeat(record, message)
                elif kind == "result":
                    await self._on_result(record, message)
                elif kind == "failure":
                    await self._on_failure(record, message)
                else:
                    raise protocol.ProtocolError(
                        f"unexpected worker message {kind!r}"
                    )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            await self._host_gone(record, reason="disconnect")

    async def _grant(self, record: _Host, slots: int) -> None:
        """Grant up to ``slots`` leases to a requesting host."""
        now = self._now()
        granted = 0
        slots = max(0, min(slots, record.capacity - len(record.leases)))
        if now < record.penalty_until:
            # Reconnect backoff: a recently dead host waits before it
            # is trusted with leases again (wakeup-retry style).
            await self._send_host(
                record,
                {
                    "type": "grant-end",
                    "granted": 0,
                    "retry_after": round(record.penalty_until - now, 3),
                },
            )
            return
        while granted < slots:
            key, stolen_from = self._next_cell_for(record.name)
            if key is None:
                break
            cell = self.cells[key]
            lease_id = f"L{next(self._lease_ids)}"
            cell.status = "leased"
            cell.lease_id = lease_id
            cell.lease_host = record.name
            cell.lease_deadline = now + self.lease_duration
            record.leases[lease_id] = key
            self.stats["leases"] += 1
            if stolen_from is not None:
                self.stats["steals"] += 1
                self.log.emit(
                    {
                        "event": "steal",
                        "host_name": record.name,
                        "victim": stolen_from,
                        "key": key,
                        "label": cell.spec.label,
                    }
                )
            self.log.emit(
                {
                    "event": "lease",
                    "host_name": record.name,
                    "key": key,
                    "label": cell.spec.label,
                    "lease_id": lease_id,
                    "stolen": stolen_from is not None,
                    "requeues": cell.requeues,
                }
            )
            await self._send_host(
                record,
                {
                    "type": "lease",
                    "lease_id": lease_id,
                    "key": key,
                    "spec": cell.spec.canonical(),
                },
            )
            granted += 1
        await self._send_host(
            record, {"type": "grant-end", "granted": granted}
        )

    def _next_cell_for(self, name: str) -> Tuple[Optional[str], Optional[str]]:
        """The next cold key for host ``name``: own shard first, then
        stolen from the slowest shard.  Returns ``(key, stolen_from)``."""
        own = self.queues.get(name, [])
        while own:
            key = own.pop(0)
            if self.cells[key].status == "cold":
                return key, None
        # Steal from the host with the largest cold backlog.
        victim, backlog = None, 0
        for other, queue in self.queues.items():
            if other == name:
                continue
            cold = sum(1 for k in queue if self.cells[k].status == "cold")
            if cold > backlog:
                victim, backlog = other, cold
        if victim is not None:
            queue = self.queues[victim]
            while queue:
                key = queue.pop(0)
                if self.cells[key].status == "cold":
                    return key, victim
        while self.unassigned:
            key = self.unassigned.pop(0)
            if self.cells[key].status == "cold":
                return key, None
        return None, None

    def _heartbeat(self, record: _Host, message: dict) -> None:
        now = self._now()
        record.last_heartbeat = now
        running = [str(x) for x in message.get("running", ())]
        renewed = 0
        for lease_id in running:
            key = record.leases.get(lease_id)
            if key is None:
                continue
            cell = self.cells.get(key)
            if cell is not None and cell.lease_id == lease_id:
                cell.lease_deadline = now + self.lease_duration
                renewed += 1
        self.log.emit(
            {
                "event": "heartbeat",
                "host_name": record.name,
                "seq_no": message.get("seq"),
                "running": len(running),
                "renewed": renewed,
            }
        )

    async def _on_result(self, record: _Host, message: dict) -> None:
        key = str(message.get("key"))
        lease_id = str(message.get("lease_id"))
        record.leases.pop(lease_id, None)
        cell = self.cells.get(key)
        if cell is None:
            return
        if cell.status in ("done", "failed"):
            # Stolen-and-original double completion: first valid
            # payload won; this one is bit-identical by construction
            # (pure function of the spec) and is simply dropped.
            self.stats["duplicates"] += 1
            self.log.emit(
                {
                    "event": "duplicate-result",
                    "host_name": record.name,
                    "key": key,
                    "label": cell.spec.label,
                }
            )
            return
        encoded = message.get("payload")
        try:
            payload = decode_payload(encoded)
        except (KeyError, TypeError, ValueError):
            # An invalid payload does not win: requeue the cell.
            self._release_lease(cell)
            self._requeue(cell, reason="invalid-payload")
            return
        self._release_lease(cell)
        cell.status = "done"
        cell.payload = encoded
        record.completed += 1
        self.stats["completed"] += 1
        self.store.put(cell.spec, payload)
        self.log.emit(
            {
                "event": "result",
                "host_name": record.name,
                "key": key,
                "label": cell.spec.label,
                "elapsed": message.get("elapsed"),
            }
        )
        await self._deliver(cell)

    async def _on_failure(self, record: _Host, message: dict) -> None:
        key = str(message.get("key"))
        lease_id = str(message.get("lease_id"))
        record.leases.pop(lease_id, None)
        cell = self.cells.get(key)
        if cell is None or cell.status in ("done", "failed"):
            return
        self._release_lease(cell)
        cell.status = "failed"
        cell.error = str(message.get("error", "unknown failure"))
        cell.classification = str(message.get("classification", "unknown"))
        self.stats["failed"] += 1
        self.log.emit(
            {
                "event": "cell-failed",
                "host_name": record.name,
                "key": key,
                "label": cell.spec.label,
                "classification": cell.classification,
                "error": cell.error,
            }
        )
        await self._deliver(cell)

    async def _host_gone(self, record: _Host, *, reason: str) -> None:
        if not record.connected:
            return
        record.connected = False
        record.writer = None
        requeued = self._requeue_host_leases(record)
        if requeued:
            # The host died holding work: charge a death so its next
            # connection pays the doubled (capped) reconnect penalty.
            record.deaths += 1
            self.stats["dead_hosts"] += 1
        self.log.emit(
            {
                "event": "host-leave",
                "host_name": record.name,
                "reason": reason,
                "requeued": requeued,
                "deaths": record.deaths,
            }
        )

    def _requeue_host_leases(self, record: _Host) -> int:
        requeued = 0
        for lease_id, key in list(record.leases.items()):
            cell = self.cells.get(key)
            if cell is not None and cell.status == "leased":
                self._release_lease(cell)
                self._requeue(cell, reason="host-gone")
                requeued += 1
        record.leases.clear()
        return requeued

    def _release_lease(self, cell: _Cell) -> None:
        cell.lease_id = None
        cell.lease_host = None
        cell.lease_deadline = 0.0

    def _requeue(self, cell: _Cell, *, reason: str) -> None:
        cell.status = "cold"
        cell.requeues += 1
        self.stats["requeues"] += 1
        shard = cell.shard
        if shard is not None and shard in self.queues:
            self.queues[shard].append(cell.key)
        else:
            self.unassigned.append(cell.key)
        self.log.emit(
            {
                "event": "requeue",
                "key": cell.key,
                "label": cell.spec.label,
                "reason": reason,
                "requeues": cell.requeues,
            }
        )
        self._poke_soon()

    # ------------------------------------------------------------------
    # Client sessions
    # ------------------------------------------------------------------
    async def _client_session(
        self,
        hello: dict,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        send_lock: asyncio.Lock,
    ) -> None:
        campaign: Optional[_CampaignRun] = None
        try:
            while True:
                message = await protocol.recv(reader)
                if message is None:
                    break
                if message["type"] != "submit":
                    raise protocol.ProtocolError(
                        f"unexpected client message {message['type']!r}"
                    )
                campaign = await self._submit(message, writer, send_lock)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if campaign is not None:
                campaign.closed = True
                self._forget_waiters(campaign)

    async def _submit(
        self,
        message: dict,
        writer: asyncio.StreamWriter,
        send_lock: asyncio.Lock,
    ) -> _CampaignRun:
        name = str(message.get("name", "campaign"))
        resume = bool(message.get("resume", True))
        docs = message.get("cells", [])
        campaign = _CampaignRun(name, len(docs), writer, send_lock)
        hits = 0
        cold = 0
        shared = 0
        for index, doc in enumerate(docs):
            spec = CellSpec.from_canonical(doc)
            key = self.store.key_for(spec)
            cell = self.cells.get(key)
            if cell is not None and cell.status == "done" and resume:
                await self._send_cell(
                    campaign, index, "hit", payload=cell.payload
                )
                hits += 1
                continue
            if cell is not None and cell.status == "failed" and resume:
                await self._send_cell(
                    campaign,
                    index,
                    "failed",
                    error=cell.error,
                    classification=cell.classification,
                )
                continue
            if resume:
                payload = self.store.get(spec)
                if payload is not None:
                    encoded = encode_payload(payload)
                    cached = self.cells.get(key)
                    if cached is None:
                        cached = self.cells[key] = _Cell(key, spec)
                    cached.status = "done"
                    cached.payload = encoded
                    await self._send_cell(
                        campaign, index, "hit", payload=encoded
                    )
                    hits += 1
                    continue
            if cell is None or cell.status in ("done", "failed"):
                # (done/failed but resume=False: recompute fresh)
                cell = self.cells[key] = _Cell(key, spec)
                self._enqueue(cell)
                cold += 1
            else:
                shared += 1  # already cold/leased for another campaign
            cell.waiters.append((campaign, index))
        self.log.emit(
            {
                "event": "submit",
                "campaign": campaign.id,
                "name": name,
                "cells": len(docs),
                "hits": hits,
                "cold": cold,
                "shared": shared,
            }
        )
        if campaign.remaining == 0:
            await self._send_done(campaign)
        else:
            self._poke_soon()
        return campaign

    def _enqueue(self, cell: _Cell) -> None:
        """Shard a fresh cold cell over the connected hosts."""
        names = sorted(n for n, h in self.hosts.items() if h.connected)
        if not names:
            cell.shard = None
            self.unassigned.append(cell.key)
            return
        shard = names[int(cell.key[:16], 16) % len(names)]
        cell.shard = shard
        self.queues.setdefault(shard, []).append(cell.key)

    def _assign_backlog(self) -> None:
        """Shard any pre-host backlog now that a host is connected."""
        backlog, self.unassigned = self.unassigned, []
        for key in backlog:
            cell = self.cells[key]
            if cell.status == "cold":
                self._enqueue(cell)

    async def _deliver(self, cell: _Cell) -> None:
        """Send a completed/failed cell to every waiting campaign."""
        waiters, cell.waiters = cell.waiters, []
        for campaign, index in waiters:
            if campaign.closed:
                continue
            if cell.status == "done":
                await self._send_cell(
                    campaign, index, "done", payload=cell.payload
                )
            else:
                await self._send_cell(
                    campaign,
                    index,
                    "failed",
                    error=cell.error,
                    classification=cell.classification,
                )

    async def _send_cell(
        self,
        campaign: _CampaignRun,
        index: int,
        status: str,
        payload: Optional[dict] = None,
        error: Optional[str] = None,
        classification: Optional[str] = None,
    ) -> None:
        message = {"type": "cell", "index": index, "status": status}
        if payload is not None:
            message["payload"] = payload
        if error is not None:
            message["error"] = error
            message["classification"] = classification
        if status == "hit":
            campaign.hits += 1
        elif status == "done":
            campaign.executed += 1
        else:
            campaign.failed += 1
        campaign.remaining -= 1
        try:
            async with campaign.send_lock:
                await protocol.send(campaign.writer, message)
        except (ConnectionError, asyncio.IncompleteReadError):
            campaign.closed = True
        if campaign.remaining == 0 and not campaign.closed:
            await self._send_done(campaign)

    async def _send_done(self, campaign: _CampaignRun) -> None:
        done = {
            "type": "done",
            "name": campaign.name,
            "total": campaign.total,
            "hits": campaign.hits,
            "executed": campaign.executed,
            "failed": campaign.failed,
            "service": dict(self.stats),
        }
        self.log.emit(
            {
                "event": "campaign-done",
                "campaign": campaign.id,
                "name": campaign.name,
                "hits": campaign.hits,
                "executed": campaign.executed,
                "failed": campaign.failed,
            }
        )
        try:
            async with campaign.send_lock:
                await protocol.send(campaign.writer, done)
        except (ConnectionError, asyncio.IncompleteReadError):
            campaign.closed = True

    def _forget_waiters(self, campaign: _CampaignRun) -> None:
        for cell in self.cells.values():
            cell.waiters = [
                (c, i) for c, i in cell.waiters if c is not campaign
            ]

    # ------------------------------------------------------------------
    # Monitor: lease expiry and heartbeat lapse
    # ------------------------------------------------------------------
    async def _monitor_loop(self) -> None:
        period = min(self.heartbeat_interval, self.lease_duration) / 2.0
        while True:
            await asyncio.sleep(period)
            now = self._now()
            # Heartbeat lapse: a host silent for miss_limit intervals
            # is dead — requeue everything it holds at once.
            for record in list(self.hosts.values()):
                if not record.connected:
                    continue
                silent = now - record.last_heartbeat
                if silent > self.miss_limit * self.heartbeat_interval:
                    self.log.emit(
                        {
                            "event": "host-dead",
                            "host_name": record.name,
                            "silent": round(silent, 3),
                            "missed": self.miss_limit,
                            "backoff": record.backoff(),
                        }
                    )
                    writer = record.writer
                    await self._host_gone(record, reason="heartbeat-lapse")
                    if writer is not None:
                        try:
                            writer.close()
                        except Exception:  # pragma: no cover
                            pass
            # Lease expiry: individually wedged/lost cells requeue even
            # while their host keeps heartbeating (it stopped listing
            # the lease) or silently dropped it.
            for cell in list(self.cells.values()):
                if cell.status != "leased":
                    continue
                if cell.lease_deadline <= now:
                    owner = self.hosts.get(cell.lease_host or "")
                    if owner is not None and cell.lease_id is not None:
                        owner.leases.pop(cell.lease_id, None)
                    self.stats["expired"] += 1
                    self.log.emit(
                        {
                            "event": "lease-expired",
                            "host_name": cell.lease_host,
                            "key": cell.key,
                            "label": cell.spec.label,
                        }
                    )
                    self._release_lease(cell)
                    self._requeue(cell, reason="lease-expired")

    def _poke_soon(self) -> None:
        """Nudge idle connected hosts that new work is available."""
        for record in self.hosts.values():
            if record.connected and len(record.leases) < record.capacity:
                asyncio.ensure_future(self._poke(record))

    async def _poke(self, record: _Host) -> None:
        await self._send_host(record, {"type": "poke"})

    async def _send_host(self, record: _Host, message: dict) -> None:
        writer = record.writer
        if writer is None:
            return
        try:
            async with record.send_lock:
                await protocol.send(writer, message)
        except (ConnectionError, asyncio.IncompleteReadError):
            await self._host_gone(record, reason="send-failed")

    def _now(self) -> float:
        return asyncio.get_running_loop().time()
