"""``python -m repro.campaign.service`` runs a worker host.

A separate ``__main__`` module (rather than running ``.worker``
directly) keeps runpy from re-executing a module the package
``__init__`` already imported.  The orchestrator front door is
``python -m repro.cli serve``.
"""

from .worker import main

if __name__ == "__main__":
    main()
