"""Fault-tolerant distributed campaign service.

A sharded orchestrator (leases, heartbeats, work-stealing) plus TCP
worker hosts that wrap the supervised single-host engine unchanged.
See ``docs/service.md`` for the protocol and the failure model;
results are bit-identical to single-host runs because cells are pure
functions of their specs and the shared store is content-addressed.

Front doors: ``repro.cli serve`` / ``repro.cli work`` run the pieces
standalone; ``Campaign.run(hosts=...)`` (or ``--hosts`` on any
campaign CLI) routes an existing experiment through the service.
"""

from .client import (
    LocalCluster,
    ServiceError,
    execute_cells_remote,
    run_hosted,
)
from .orchestrator import Orchestrator
from .protocol import LINE_LIMIT, VERSION, ProtocolError, parse_address
from .store import (
    FilesystemStore,
    MemoryStore,
    ResultStore,
    host_log_path,
    merged_events,
)
from .worker import WorkerError, WorkerHost, run_worker

__all__ = [
    "FilesystemStore",
    "LINE_LIMIT",
    "LocalCluster",
    "MemoryStore",
    "Orchestrator",
    "ProtocolError",
    "ResultStore",
    "ServiceError",
    "VERSION",
    "WorkerError",
    "WorkerHost",
    "execute_cells_remote",
    "host_log_path",
    "merged_events",
    "parse_address",
    "run_hosted",
    "run_worker",
]
