"""Wire protocol of the distributed campaign service.

Newline-delimited JSON over TCP: every message is one JSON object per
line, ``type``-tagged.  Two roles connect to the orchestrator, each
declared by the first message (``hello``):

``worker``
    A :class:`~repro.campaign.service.worker.WorkerHost`.  Requests
    cell leases, streams heartbeats (which renew its leases), and
    returns ``result``/``failure`` messages.  Orchestrator → worker
    traffic: ``welcome`` (session parameters), ``lease`` grants,
    ``grant-end`` markers, and ``poke`` nudges when new work arrives.

``client``
    A campaign submitter.  Sends one ``submit`` carrying the cells as
    canonical spec JSON; receives a ``cell`` message per completed
    cell (cached hits first, then results in completion order) and a
    final ``done`` with the campaign stats.

Both directions carry the submitting side's code salt in ``hello``; a
mismatch is refused up front (``error`` message) because results
computed under different simulator sources would not be bit-identical.

Message sizes are bounded by :data:`LINE_LIMIT` (a submit message
carries every cold spec of a campaign).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

#: asyncio stream line limit — large enough for multi-thousand-cell
#: submit messages.
LINE_LIMIT = 32 * 1024 * 1024

#: Protocol version; bumped on incompatible message changes.
VERSION = 1


class ProtocolError(RuntimeError):
    """The peer spoke something that is not this protocol."""


async def send(writer: asyncio.StreamWriter, message: dict) -> None:
    """Send one message (a JSON object on its own line)."""
    writer.write(json.dumps(message, sort_keys=True).encode("utf-8") + b"\n")
    await writer.drain()


async def recv(reader: asyncio.StreamReader) -> Optional[dict]:
    """Receive one message; ``None`` on a clean EOF."""
    line = await reader.readline()
    if not line:
        return None
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"undecodable message: {line[:80]!r}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"message without a type: {message!r}")
    return message


async def open_connection(
    host: str, port: int
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """``asyncio.open_connection`` with the protocol's line limit."""
    return await asyncio.open_connection(host, port, limit=LINE_LIMIT)


def parse_address(value: str) -> Tuple[str, int]:
    """Parse ``host:port`` (host defaults to localhost for ``:port``)."""
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"expected an orchestrator address like 127.0.0.1:8765, got {value!r}"
        )
    return host or "127.0.0.1", int(port)
