"""Client side of the campaign service.

:func:`execute_cells_remote` is the service twin of
:func:`~repro.campaign.engine.execute_cells`: same cells in, same
``(payloads_in_declared_order, stats)`` out — the distribution is
invisible to the caller, and because cells are pure functions of their
specs the payloads are bit-identical to a single-host run.

:class:`LocalCluster` spins up an ephemeral service on this machine
(orchestrator on a background thread, worker hosts as subprocesses);
:func:`run_hosted` is the ``Campaign.run(hosts=...)`` entry point that
picks between an ephemeral ``local:N`` cluster and an already-running
``host:port`` service.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..cache import Payload, code_salt, decode_payload
from ..engine import CampaignError, CampaignStats
from ..spec import CellSpec
from . import protocol
from .orchestrator import Orchestrator
from .store import FilesystemStore, MemoryStore, ResultStore


class ServiceError(RuntimeError):
    """The service refused the request (salt mismatch, protocol error)."""


def execute_cells_remote(
    cells: Sequence[CellSpec],
    address: Union[str, Tuple[str, int]],
    *,
    name: str = "campaign",
    resume: bool = True,
    failure_mode: str = "raise",
    on_result: Optional[Callable[[int, CellSpec, Payload, bool], None]] = None,
) -> Tuple[List[Optional[Payload]], CampaignStats]:
    """Run ``cells`` on the service at ``address``.

    Submits the cells as canonical spec JSON, streams back per-cell
    results (store hits first, then completions in arrival order) and
    reassembles the declared order.  ``failure_mode="raise"`` raises
    :class:`CampaignError` on the first failed cell, exactly like the
    single-host engine; ``"continue"`` leaves ``None`` holes.
    """
    if failure_mode not in ("raise", "continue"):
        raise ValueError(f"unknown failure_mode {failure_mode!r}")
    if isinstance(address, str):
        address = protocol.parse_address(address)
    host, port = address
    cells = list(cells)
    started = time.monotonic()
    stats = CampaignStats(total=len(cells))
    payloads: List[Optional[Payload]] = [None] * len(cells)

    async def _run() -> None:
        reader, writer = await protocol.open_connection(host, port)
        try:
            await protocol.send(
                writer,
                {
                    "type": "hello",
                    "role": "client",
                    "salt": code_salt(),
                    "version": protocol.VERSION,
                },
            )
            await protocol.send(
                writer,
                {
                    "type": "submit",
                    "name": name,
                    "resume": resume,
                    "cells": [spec.canonical() for spec in cells],
                },
            )
            while True:
                message = await protocol.recv(reader)
                if message is None:
                    raise ServiceError(
                        "service went away mid-campaign "
                        f"({stats.hits + stats.executed + stats.failed}"
                        f"/{stats.total} cells reported)"
                    )
                kind = message.get("type")
                if kind == "error":
                    raise ServiceError(message.get("error", "refused"))
                if kind == "done":
                    stats.service = message.get("service", {})  # type: ignore[attr-defined]
                    return
                if kind != "cell":
                    raise protocol.ProtocolError(
                        f"unexpected service message {kind!r}"
                    )
                index = int(message["index"])
                status = message["status"]
                spec = cells[index]
                if status in ("hit", "done"):
                    payload = decode_payload(message["payload"])
                    payloads[index] = payload
                    if status == "hit":
                        stats.hits += 1
                    else:
                        stats.executed += 1
                    if on_result is not None:
                        on_result(index, spec, payload, status == "hit")
                else:
                    stats.failed += 1
                    cause = RuntimeError(
                        f"[{message.get('classification', 'unknown')}] "
                        f"{message.get('error', 'unknown failure')}"
                    )
                    if failure_mode == "raise":
                        raise CampaignError(spec, cause, 1)
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - defensive
                pass

    asyncio.run(_run())
    stats.elapsed = time.monotonic() - started
    return payloads, stats


class LocalCluster:
    """An ephemeral local service: in-process orchestrator plus worker
    subprocesses.

    The orchestrator runs on a daemon thread with its own event loop;
    each worker host is a real ``python -m repro.campaign.service``
    subprocess, so chaos tests can SIGKILL one exactly as a machine
    failure would.  Use as a context manager::

        with LocalCluster(3, cache_dir=cache) as cluster:
            payloads, stats = execute_cells_remote(cells, cluster.address)
    """

    def __init__(
        self,
        num_workers: int,
        *,
        cache_dir: Optional[Union[str, Path]] = None,
        store: Optional[ResultStore] = None,
        capacity: int = 1,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = 2,
        lease_duration: float = 20.0,
        heartbeat_interval: float = 0.5,
        miss_limit: int = 3,
        log_path: Optional[Union[str, Path]] = None,
        name: str = "local-cluster",
    ) -> None:
        if num_workers < 1:
            raise ValueError("a cluster needs at least one worker host")
        if store is None:
            store = (
                FilesystemStore(cache_dir)
                if cache_dir is not None
                else MemoryStore()
            )
        self.num_workers = num_workers
        self.capacity = max(1, capacity)
        self.timeout = timeout
        self.max_retries = max_retries
        self.log_path = Path(log_path) if log_path is not None else None
        self.orchestrator = Orchestrator(
            store,
            lease_duration=lease_duration,
            heartbeat_interval=heartbeat_interval,
            miss_limit=miss_limit,
            log_path=str(self.log_path) if self.log_path else None,
            name=name,
        )
        self.workers: List[subprocess.Popen] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return self.orchestrator.address

    def start(self) -> "LocalCluster":
        started = threading.Event()

        def _serve() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self.orchestrator.start())
            started.set()
            loop.run_until_complete(self.orchestrator.serve_forever())
            loop.close()

        self._thread = threading.Thread(
            target=_serve, name="campaign-orchestrator", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=10.0):  # pragma: no cover - defensive
            raise RuntimeError("orchestrator failed to start")
        for index in range(self.num_workers):
            self.workers.append(self.spawn_worker(f"w{index}"))
        # A worker that dies this fast is a launch bug (bad argv, import
        # error); fail loudly instead of letting a campaign hang on a
        # cluster that will never produce results.
        time.sleep(0.2)
        dead = [p.poll() for p in self.workers if p.poll() is not None]
        if len(dead) == len(self.workers):
            self.stop()
            raise RuntimeError(
                f"all {len(dead)} worker hosts exited at launch "
                f"(exit codes {dead})"
            )
        return self

    def spawn_worker(self, name: str) -> subprocess.Popen:
        """Start one worker-host subprocess dialed into this cluster."""
        command = [
            sys.executable,
            "-m",
            "repro.campaign.service",
            "--connect",
            self.address,
            "--name",
            name,
            "--capacity",
            str(self.capacity),
            "--reconnect",
            "3",
        ]
        if self.max_retries is not None:
            command += ["--max-retries", str(self.max_retries)]
        if self.timeout is not None:
            command += ["--timeout", str(self.timeout)]
        if self.log_path is not None:
            command += ["--log-dir", str(self.log_path.parent)]
        env = os.environ.copy()
        src_root = str(Path(__file__).resolve().parents[3])
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        return subprocess.Popen(command, env=env)

    def stop(self) -> None:
        for proc in self.workers:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.workers:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait()
        if self._loop is not None and self._thread is not None:
            # serve_forever performs the full shutdown before returning,
            # so signalling is all the other thread needs from us.
            self._loop.call_soon_threadsafe(self.orchestrator.signal_stop)
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def run_hosted(
    cells: Sequence[CellSpec],
    hosts: str,
    *,
    name: str = "campaign",
    cache_dir: Optional[Union[str, Path]] = None,
    workers: int = 1,
    timeout: Optional[float] = None,
    max_retries: Optional[int] = 2,
    resume: bool = True,
    failure_mode: str = "raise",
    log_path: Optional[Union[str, Path]] = None,
    on_result: Optional[Callable[[int, CellSpec, Payload, bool], None]] = None,
) -> Tuple[List[Optional[Payload]], CampaignStats]:
    """``Campaign.run(hosts=...)`` back end.

    ``hosts="local:N"`` stands up an ephemeral :class:`LocalCluster`
    of N worker subprocesses (each running a ``workers``-wide engine
    pool) for just this campaign; any other value is the ``host:port``
    of an already-running service (``repro.cli serve``), in which case
    the execution knobs (``workers``/``timeout``/``max_retries``/
    ``cache_dir``) belong to the service, not this call.
    """
    if hosts.startswith("local:"):
        count = int(hosts.split(":", 1)[1])
        with LocalCluster(
            count,
            cache_dir=cache_dir,
            capacity=max(1, workers),
            timeout=timeout,
            max_retries=max_retries,
            log_path=log_path,
            name=name,
        ) as cluster:
            return execute_cells_remote(
                cells,
                cluster.address,
                name=name,
                resume=resume,
                failure_mode=failure_mode,
                on_result=on_result,
            )
    return execute_cells_remote(
        cells,
        hosts,
        name=name,
        resume=resume,
        failure_mode=failure_mode,
        on_result=on_result,
    )
