"""Supervision primitives for the campaign executor.

The executor in :mod:`repro.campaign.engine` used to trust its
workers; this module gives it the pieces to stop doing that:

* :class:`RetryPolicy` — per-cell attempt budget, wall-clock timeout,
  and exponential backoff with *deterministic* jitter (hashed from the
  cell key and attempt number, never from a clock or RNG, so two runs
  of the same campaign back off identically);
* :func:`error_signature` / :func:`classify_attempts` — the
  transient-vs-deterministic classifier: a cell that fails twice with
  the *identical* signature is deterministically broken and gets
  quarantined instead of re-run, while differing signatures (or worker
  crashes) stay retryable within the budget;
* :class:`QuarantineLedger` — a persistent ledger beside the cell
  cache (``ledger.jsonl`` plus one structured report per quarantined
  cell, including any :class:`~repro.noc.invariants.PostMortem` the
  failure carried) consulted at campaign start so known-bad cells are
  skipped without burning their retry budget again;
* :class:`CampaignCheckpoint` — an atomically rewritten snapshot of
  completed cell payloads, keyed like the cell cache, so a campaign
  hard-killed mid-flight (``kill -9``) resumes from its last
  checkpoint with bit-identical results;
* :class:`WorkerCrashError` / :class:`CellTimeoutError` /
  :class:`QuarantinedCellError` — typed stand-ins for failures that
  happen *around* a cell rather than inside it (a worker process died,
  a wall-clock deadline expired, the ledger already condemned the
  cell).

See ``docs/resilience.md`` for the failure taxonomy and recovery
semantics.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .cache import code_salt, decode_payload, encode_payload
from .spec import CellSpec


class WorkerCrashError(RuntimeError):
    """A pool worker died (signal kill, OOM, segfault) mid-cell."""


class CellTimeoutError(RuntimeError):
    """A cell exceeded its per-cell wall-clock budget."""


class QuarantinedCellError(RuntimeError):
    """The quarantine ledger already condemned this cell."""


#: Signature prefix for failures that happened around the cell rather
#: than inside it (no simulator traceback to fingerprint).
_CRASH_SIGNATURE = "worker-crash"
_TIMEOUT_SIGNATURE = "timeout"


def error_signature(exc: BaseException) -> str:
    """Stable fingerprint of a failure, for the deterministic-failure
    classifier.  Simulator errors are fully deterministic (seeds live
    inside the spec), so type + message identifies a failure mode."""
    if isinstance(exc, WorkerCrashError):
        return _CRASH_SIGNATURE
    if isinstance(exc, CellTimeoutError):
        return _TIMEOUT_SIGNATURE
    return f"{type(exc).__qualname__}: {exc}"


def classify_attempts(signatures: Sequence[str]) -> str:
    """``"deterministic"`` once the last two signatures are identical,
    else ``"transient"``.  Crash/timeout signatures participate too: a
    cell that OOM-kills its worker (or hangs past the deadline) twice
    in a row is as deterministically broken as one that raises the
    same ``SimulationError`` twice."""
    if len(signatures) >= 2 and signatures[-1] == signatures[-2]:
        return "deterministic"
    return "transient"


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget, timeout and deterministic backoff for one cell.

    ``max_retries`` is the *total* attempt budget (the CLI flag of the
    same name): with the default of 2, a deterministic failure is
    observed twice — exactly enough for the identical-twice classifier
    — and then quarantined.
    """

    max_retries: int = 2
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError("max_retries must be at least 1 (total attempts)")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (seconds)")

    def delay_before(self, attempt: int, key: str) -> float:
        """Seconds to wait before ``attempt`` (2-based) of cell ``key``.

        Exponential in the attempt number, plus up to +50% jitter
        derived from ``sha256(key, attempt)`` — deterministic, so a
        re-run of the same campaign replays the same schedule, but
        de-correlated across cells so a crashed pool's survivors do
        not thundering-herd their retries.
        """
        if attempt <= 1:
            return 0.0
        base = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (attempt - 2),
        )
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        jitter = digest[0] / 255.0 * 0.5
        return base * (1.0 + jitter)


@dataclass
class FailureReport:
    """Structured account of one cell's demise."""

    key: str
    label: str
    spec: dict
    attempts: int
    classification: str
    signatures: List[str]
    error: str
    error_type: str
    #: Rendered :class:`~repro.noc.invariants.PostMortem`, when the
    #: final exception carried one (deadlock watchdog, drain timeout).
    post_mortem: Optional[str] = None
    #: Fault schedule active when the cell died (compact ``--faults``
    #: grammar) and the routers declared dead at that point, when the
    #: final exception carried them — together they make a liveness
    #: failure reproducible straight from the report.
    fault_spec: Optional[str] = None
    dead_routers: List[int] = field(default_factory=list)

    @classmethod
    def from_failure(
        cls,
        spec: CellSpec,
        key: str,
        exc: BaseException,
        attempts: int,
        signatures: Sequence[str],
        classification: str,
    ) -> "FailureReport":
        post_mortem = getattr(exc, "post_mortem", None)
        rendered = None
        if post_mortem is not None:
            try:
                rendered = post_mortem.render()
            except Exception:  # pragma: no cover - defensive
                rendered = repr(post_mortem)
        return cls(
            key=key,
            label=spec.label,
            spec=spec.canonical(),
            attempts=attempts,
            classification=classification,
            signatures=list(signatures),
            error=str(exc),
            error_type=type(exc).__qualname__,
            post_mortem=rendered,
            fault_spec=getattr(exc, "fault_spec", None),
            dead_routers=sorted(getattr(exc, "dead_routers", ()) or ()),
        )

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "label": self.label,
            "spec": self.spec,
            "attempts": self.attempts,
            "classification": self.classification,
            "signatures": self.signatures,
            "error": self.error,
            "error_type": self.error_type,
            "post_mortem": self.post_mortem,
            "fault_spec": self.fault_spec,
            "dead_routers": self.dead_routers,
        }


def _atomic_write_json(path: Path, doc: dict) -> None:
    """Write ``doc`` to ``path`` via temp file + ``os.replace``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class QuarantineLedger:
    """Persistent record of cells condemned as deterministically broken.

    Lives beside the cell cache (``<dir>/ledger.jsonl`` plus
    ``<dir>/reports/<key>.json``) and survives across campaigns: a
    quarantined cell is skipped — reported as failed without burning
    its retry budget — until the operator deletes its ledger entry or
    the code salt moves (keys embed the salt, so a simulator fix
    automatically paroles every affected cell).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.ledger_path = self.root / "ledger.jsonl"
        self.reports_dir = self.root / "reports"
        self._keys: Dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        try:
            lines = self.ledger_path.read_text().splitlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                self._keys[entry["key"]] = entry
            except (ValueError, KeyError, TypeError):
                continue  # a torn line quarantines nobody

    def __len__(self) -> int:
        return len(self._keys)

    def keys(self):
        return self._keys.keys()

    def is_quarantined(self, key: str) -> bool:
        return key in self._keys

    def entry_for(self, key: str) -> Optional[dict]:
        return self._keys.get(key)

    def report_path(self, key: str) -> Path:
        return self.reports_dir / f"{key}.json"

    def load_report(self, key: str) -> Optional[dict]:
        """The full structured report for ``key``, if present."""
        try:
            return json.loads(self.report_path(key).read_text())
        except (OSError, ValueError):
            return None

    def record_failure(self, report: FailureReport) -> None:
        """Write the structured report *without* condemning the cell.

        Used for ``exhausted`` failures (retry budget ran out on
        differing signatures): the post-mortem evidence is kept under
        ``reports/`` but no ledger line is appended, so the cell stays
        retryable in the next campaign.
        """
        _atomic_write_json(self.report_path(report.key), report.as_dict())

    def quarantine(self, report: FailureReport) -> None:
        """Condemn a cell: append the ledger line, write the report."""
        entry = {
            "ts": round(time.time(), 3),
            "key": report.key,
            "label": report.label,
            "classification": report.classification,
            "attempts": report.attempts,
            "error_type": report.error_type,
            "error": report.error,
        }
        _atomic_write_json(self.report_path(report.key), report.as_dict())
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.ledger_path, "a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._keys[report.key] = entry


@dataclass
class CampaignCheckpoint:
    """Atomic snapshot of completed cell payloads for crash recovery.

    The cell cache already persists each payload as it completes; the
    checkpoint additionally works for campaigns run *without* a cache
    directory and gives ``kill -9`` recovery a single self-describing
    artifact (campaign name, salt, entry count).  Entries are keyed
    exactly like the cache (``spec.cache_key(salt)``) and store the
    same type-tagged payload encoding, so recovery is bit-identical to
    a cache hit.
    """

    path: Path
    salt: str = field(default_factory=code_salt)
    name: str = "campaign"
    entries: Dict[str, dict] = field(default_factory=dict)
    #: Completions since the last flush (drives periodic flushing).
    dirty: int = 0

    def __post_init__(self) -> None:
        self.path = Path(self.path)

    def load(self) -> int:
        """Read entries recorded under this salt; returns the count.

        A checkpoint written under a different salt (the simulator
        changed underneath it) is ignored wholesale, exactly like a
        stale cache entry.
        """
        try:
            doc = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return 0
        if not isinstance(doc, dict) or doc.get("salt") != self.salt:
            return 0
        entries = doc.get("entries")
        if isinstance(entries, dict):
            self.entries.update(entries)
        return len(self.entries)

    def get(self, key: str):
        """Decoded payload for ``key``, or ``None``."""
        doc = self.entries.get(key)
        if doc is None:
            return None
        try:
            return decode_payload(doc)
        except (KeyError, TypeError, ValueError):
            return None

    def record(self, key: str, payload) -> None:
        self.entries[key] = encode_payload(payload)
        self.dirty += 1

    def flush(self) -> None:
        """Atomically rewrite the checkpoint file."""
        if not self.dirty:
            return
        _atomic_write_json(
            self.path,
            {
                "version": 1,
                "name": self.name,
                "salt": self.salt,
                "completed": len(self.entries),
                "entries": self.entries,
            },
        )
        self.dirty = 0
