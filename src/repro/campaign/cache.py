"""Content-addressed on-disk cell cache.

Every cached entry is addressed by ``sha256(code_salt + canonical
spec JSON)``: the same cell re-run against unchanged simulator source
is a hit, while *any* edit to the simulation-relevant source trees
changes the salt and silently invalidates every affected entry (stale
files are simply never addressed again).  Interrupted campaigns
therefore resume for free — completed cells hit, missing cells run.

What the salt covers is deliberately scoped to code that can change
simulation *results*: ``repro.noc``, ``repro.core``, ``repro.system``,
``repro.traffic``, ``repro.power``, ``repro.powergate``,
``repro.baselines`` and the cell runner itself.  Editing report
formatting, CLI plumbing or the engine does not invalidate results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from functools import lru_cache
from pathlib import Path
from typing import Optional, Union

from ..experiments.common import RunRecord
from .spec import CellSpec

#: Source trees whose content feeds the code-version salt.
SALT_PACKAGES = (
    "noc",
    "core",
    "system",
    "traffic",
    "power",
    "powergate",
    "baselines",
)


@lru_cache(maxsize=1)
def code_salt() -> str:
    """Version hash of the simulation-relevant source trees."""
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    files = []
    for package in SALT_PACKAGES:
        files.extend(sorted((root / package).glob("*.py")))
    files.append(root / "campaign" / "runner.py")
    for path in files:
        digest.update(path.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# Payload (de)serialization
# ----------------------------------------------------------------------
Payload = Union[RunRecord, dict]


def encode_payload(payload: Payload) -> dict:
    """JSON-ready wrapper tagging the payload type."""
    if isinstance(payload, RunRecord):
        return {"type": "run_record", "data": asdict(payload)}
    if isinstance(payload, dict):
        return {"type": "mapping", "data": payload}
    raise TypeError(f"uncacheable cell payload type {type(payload).__name__}")


def decode_payload(doc: dict) -> Payload:
    """Inverse of :func:`encode_payload`."""
    if doc["type"] == "run_record":
        return RunRecord(**doc["data"])
    return doc["data"]


class CellCache:
    """Directory of content-addressed cell results.

    Entries live at ``<root>/<key[:2]>/<key>.json`` and carry the
    canonical spec and salt alongside the payload for debuggability;
    the key alone decides hits.  Writes are atomic (temp file +
    ``os.replace``) so parallel workers and interrupted runs can never
    leave a truncated entry behind.
    """

    def __init__(self, root: Union[str, Path], salt: Optional[str] = None) -> None:
        self.root = Path(root)
        self.salt = code_salt() if salt is None else salt

    def key_for(self, spec: CellSpec) -> str:
        """The content address of ``spec`` under this cache's salt."""
        return spec.cache_key(self.salt)

    def path_for(self, spec: CellSpec) -> Path:
        key = self.key_for(spec)
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: CellSpec) -> Optional[Payload]:
        """The cached payload for ``spec``, or ``None`` on a miss.

        Corrupt entries count as misses (and are overwritten by the
        next :meth:`put`), so a damaged cache degrades to recompute
        instead of crashing the campaign.
        """
        path = self.path_for(spec)
        try:
            with open(path) as fh:
                doc = json.load(fh)
            return decode_payload(doc["payload"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, spec: CellSpec, payload: Payload) -> Path:
        """Store ``payload`` for ``spec``; returns the entry path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "salt": self.salt,
            "spec": spec.canonical(),
            "payload": encode_payload(payload),
        }
        # Per-key prefix: concurrent writers of the *same* entry each
        # get a private temp file in the entry's own directory, and the
        # final os.replace is atomic — last writer wins, readers only
        # ever see a complete entry.
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path
