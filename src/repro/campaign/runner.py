"""Cell runners: one deterministic simulation (or analysis) per spec.

``run_cell`` is the single entry point the engine executes — inline or
on process-pool workers — so it and everything it dispatches to must
stay importable at module top level (picklability) and must derive all
behavior from the spec alone (determinism).  The former
``common.run_parsec``/``common.run_synthetic`` loops live here now.
"""

from __future__ import annotations

from typing import Optional

from ..experiments.common import (
    CANONICAL_INSTRUCTIONS,
    RunRecord,
    make_scheme,
)
from ..noc import Network, NoCConfig
from ..noc.packet import reset_packet_ids
from ..power import EnergyModel
from ..system import Chip, get_profile
from ..traffic import SyntheticTraffic
from .spec import CellSpec


def build_scheme(spec: CellSpec):
    """Instantiate the spec's scheme and apply attribute overrides."""
    scheme = make_scheme(spec.scheme, **dict(spec.scheme_kwargs))
    for attr, value in spec.scheme_attrs:
        if not hasattr(scheme, attr):
            raise TypeError(
                f"scheme {spec.scheme!r} has no attribute {attr!r} "
                "(typo in a cell's scheme_attrs?)"
            )
        setattr(scheme, attr, value)
    return scheme


# ----------------------------------------------------------------------
# Direct runners (also the public imperative API)
# ----------------------------------------------------------------------
def run_parsec(
    benchmark: str,
    scheme_name: str,
    instructions: int = CANONICAL_INSTRUCTIONS,
    seed: int = 1,
    config: Optional[NoCConfig] = None,
    **scheme_kwargs,
) -> RunRecord:
    """Run one PARSEC-profile workload under one scheme."""
    config = config or NoCConfig()
    scheme = make_scheme(scheme_name, **scheme_kwargs)
    chip = Chip(
        config,
        scheme,
        get_profile(benchmark),
        instructions_per_core=instructions,
        seed=seed,
        benchmark=benchmark,
    )
    result = chip.run(max_cycles=8_000_000)
    energy = EnergyModel().account(chip.network)
    return RunRecord(
        workload=benchmark,
        scheme=scheme_name,
        execution_time=result.execution_time,
        avg_packet_latency=result.avg_packet_latency,
        avg_total_latency=result.avg_total_latency,
        avg_blocked_routers=result.avg_blocked_routers,
        avg_wakeup_wait=result.avg_wakeup_wait,
        injection_rate=result.injection_rate,
        dynamic_energy=energy.dynamic,
        static_energy=energy.static,
        overhead_energy=energy.overhead,
        cycles=result.cycles,
    )


def run_synthetic(
    pattern: str,
    injection_rate: float,
    scheme_name: str,
    warmup: int = 1000,
    measurement: int = 6000,
    seed: int = 7,
    config: Optional[NoCConfig] = None,
    drain: bool = True,
    **scheme_kwargs,
) -> RunRecord:
    """Run one open-loop synthetic-traffic point under one scheme."""
    config = config or NoCConfig()
    scheme = make_scheme(scheme_name, **scheme_kwargs)
    network = Network(config, scheme)
    traffic = SyntheticTraffic(network, pattern, injection_rate, seed=seed)
    energy_model = EnergyModel()
    traffic.run(warmup)
    snapshot = energy_model.snapshot(network)
    network.stats.measure_from = network.cycle
    traffic.run(measurement)
    energy = energy_model.account(network, since=snapshot)
    if drain:
        traffic.drain()
    stats = network.stats
    return RunRecord(
        workload=f"{pattern}@{injection_rate}",
        scheme=scheme_name,
        execution_time=network.cycle,
        avg_packet_latency=stats.avg_packet_latency,
        avg_total_latency=stats.avg_total_latency,
        avg_blocked_routers=stats.avg_blocked_routers,
        avg_wakeup_wait=stats.avg_wakeup_wait,
        injection_rate=stats.throughput(config.num_nodes),
        dynamic_energy=energy.dynamic,
        static_energy=energy.static,
        overhead_energy=energy.overhead,
        cycles=energy.cycles,
    )


# ----------------------------------------------------------------------
# Cell-kind dispatch
# ----------------------------------------------------------------------
def _run_parsec_cell(spec: CellSpec) -> RunRecord:
    record = run_parsec(
        spec.workload,
        spec.scheme,
        instructions=spec.instructions,
        seed=spec.seed,
        config=spec.build_config(),
        **dict(spec.scheme_kwargs),
    )
    if spec.scheme_attrs:
        raise TypeError("parsec cells do not support scheme_attrs")
    return record


def _run_synthetic_cell(spec: CellSpec) -> RunRecord:
    if spec.scheme_attrs:
        raise TypeError("RunRecord synthetic cells do not support scheme_attrs")
    return run_synthetic(
        spec.workload,
        spec.injection_rate,
        spec.scheme,
        warmup=spec.warmup,
        measurement=spec.measurement,
        seed=spec.seed,
        config=spec.build_config(),
        drain=spec.drain,
        **dict(spec.scheme_kwargs),
    )


def _run_metrics_cell(spec: CellSpec) -> dict:
    """Extended metrics payload (ablations / baselines comparison)."""
    config = spec.build_config()
    scheme = build_scheme(spec)
    network = Network(config, scheme)
    traffic = SyntheticTraffic(
        network, spec.workload, spec.injection_rate, seed=spec.seed
    )
    model = EnergyModel()
    traffic.run(spec.warmup)
    snap = model.snapshot(network)
    network.stats.measure_from = network.cycle
    traffic.run(spec.measurement)
    energy = model.account(network, since=snap)
    if spec.drain:
        traffic.drain()
    stats = network.stats
    controllers = getattr(scheme, "controllers", None) or []
    off = sum(c.off_cycles for c in controllers)
    total = sum(
        c.active_cycles + c.off_cycles + c.waking_cycles for c in controllers
    )
    return {
        "latency": stats.avg_total_latency,
        "wait": stats.avg_wakeup_wait,
        "off_fraction": off / total if total else 0.0,
        "wake_events": scheme.total_wake_events() if controllers else 0,
        "net_static": energy.net_static,
        "delivered": stats.delivered,
        "detoured": getattr(scheme, "detoured_packets", 0),
    }


def _run_bet_cell(spec: CellSpec) -> dict:
    """Energy re-accounting under a given break-even time.

    BET only scales the per-event PG overhead, so the simulation is
    identical across BET values — only the accounting differs (the
    timing fields prove it: they match bit-for-bit between cells).
    """
    from ..power import PowerConstants

    bet = dict(spec.extras)["bet"]
    config = spec.build_config()
    scheme = build_scheme(spec)
    network = Network(config, scheme)
    traffic = SyntheticTraffic(
        network, spec.workload, spec.injection_rate, seed=spec.seed
    )
    traffic.run(spec.warmup + spec.measurement)
    model = EnergyModel(PowerConstants(break_even_cycles=bet))
    energy = model.account(network)
    return {
        "latency": network.stats.avg_total_latency,
        "wait": network.stats.avg_wakeup_wait,
        "off_fraction": 0.0,
        "wake_events": scheme.total_wake_events(),
        "net_static": energy.net_static,
    }


def _run_analysis_cell(spec: CellSpec) -> dict:
    """Deterministic non-simulation analyses, dispatched by label."""
    params = dict(spec.extras)
    if spec.workload == "table1":
        from ..experiments import table1

        return {"report": table1.report(**params)}
    raise ValueError(f"unknown analysis cell {spec.workload!r}")


def _run_bench_cell(spec: CellSpec) -> dict:
    """Kernel cycles/sec benchmark cell (timing — never cache this)."""
    from ..bench import bench_config

    params = dict(spec.extras)
    config = spec.build_config()
    return bench_config(
        spec.scheme,
        config.width,
        config.height,
        spec.injection_rate,
        params["cycles"],
        params["repeat"],
        seed=spec.seed,
        topology=config.topology,
    )


def _run_reliability_cell(spec: CellSpec) -> dict:
    """One Monte-Carlo reliability trial (see spec module docstring).

    The fault schedule is sampled from the cell seed, injected into a
    network built from the cell config (the experiments layer passes a
    ``degradation="reroute"`` config), and run under strict invariants
    plus the deadlock watchdog.  Liveness failures (watchdog deadlock,
    drain timeout, fail-fast degradation) are *outcomes*, not crashes —
    they are folded into the payload so the estimator sees them;
    genuine invariant violations still propagate to quarantine.
    """
    from ..noc import FaultInjector, InvariantChecker
    from ..noc.errors import DeadlockError, DegradedNetworkError, DrainTimeoutError
    from ..noc.faults import sample_fault_schedule

    params = dict(spec.extras)
    config = spec.build_config()
    schedule = sample_fault_schedule(
        spec.seed,
        config.num_nodes,
        max_faults=int(params.get("max_faults", 2)),
        horizon=int(params.get("horizon", 2000)),
    )
    scheme = build_scheme(spec) if spec.scheme != "-" else None
    network = Network(config, scheme)
    network.install_faults(FaultInjector(schedule))
    network.install_invariants(
        InvariantChecker(
            strict=True, max_network_age=int(params.get("watchdog", 50_000))
        )
    )
    traffic = SyntheticTraffic(
        network, spec.workload, spec.injection_rate, seed=spec.seed
    )
    outcome = "drained"
    try:
        traffic.run(spec.warmup + spec.measurement)
        traffic.drain()
    except (DeadlockError, DrainTimeoutError):
        outcome = "deadlock"
    except DegradedNetworkError:
        outcome = "degraded"
    stats = network.stats
    in_flight_losses = stats.dropped_packets - stats.refused_packets
    return {
        "fault_spec": schedule.to_spec(),
        "outcome": outcome,
        "deadlocked": outcome == "deadlock",
        "injected": stats.injected_packets,
        "delivered": stats.delivered,
        "dropped": stats.dropped_packets,
        "refused": stats.refused_packets,
        "delivered_all": outcome == "drained"
        and in_flight_losses == 0
        and stats.delivered == stats.injected_packets,
        "dead_routers": sorted(network.dead_routers),
        "wakeup_retries": stats.wakeup_retries,
        "rerouted_packets": stats.rerouted_packets,
        "detour_hops": stats.detour_hops,
        "cycles": network.cycle,
    }


def _run_guarantees_cell(spec: CellSpec) -> dict:
    """One latency-bound validation run (see spec module docstring).

    Fault-free by construction — the bound checker refuses faulted
    networks — and kernel-agnostic: the checker rides the delivery
    stream, so ``kernel="vector"`` cells stay engaged.  Warmup
    deliveries are checked too (a certified bound holds for every
    packet, not just measured ones); the latency quantiles cover the
    measurement window, matching every other stats figure.
    """
    from ..guarantees import BoundChecker

    params = dict(spec.extras)
    config = spec.build_config()
    scheme = build_scheme(spec) if spec.scheme != "-" else None
    network = Network(config, scheme)
    checker = BoundChecker(strict=bool(params.get("strict", False)))
    network.install_bounds(checker)
    traffic = SyntheticTraffic(
        network, spec.workload, spec.injection_rate, seed=spec.seed
    )
    traffic.run(spec.warmup)
    network.stats.measure_from = network.cycle
    traffic.run(spec.measurement)
    if spec.drain:
        traffic.drain()
    stats = network.stats
    return {
        **checker.report(),
        "delivered": stats.delivered,
        "avg_latency": stats.avg_packet_latency,
        "p50": stats.p50_latency,
        "p95": stats.p95_latency,
        "p99": stats.p99_latency,
        "cycles": network.cycle,
    }


_RUNNERS = {
    "parsec": _run_parsec_cell,
    "synthetic": _run_synthetic_cell,
    "synthetic_metrics": _run_metrics_cell,
    "bet_account": _run_bet_cell,
    "analysis": _run_analysis_cell,
    "bench": _run_bench_cell,
    "reliability": _run_reliability_cell,
    "guarantees": _run_guarantees_cell,
}


def run_cell(spec: CellSpec):
    """Execute one cell and return its payload.

    Simulator failures get the cell's identity attached as an
    exception note, so a traceback that crosses a process-pool
    boundary (or lands in a quarantine report) still says which cell
    died without the supervisor having to reconstruct it.
    """
    try:
        runner = _RUNNERS[spec.kind]
    except KeyError:
        raise ValueError(f"unknown cell kind {spec.kind!r}") from None
    # Packet IDs restart per cell so a retried attempt is bit-identical
    # to the first — error messages embed packet IDs, and the
    # deterministic-failure classifier compares them verbatim.
    reset_packet_ids()
    try:
        return runner(spec)
    except Exception as exc:
        note = f"cell: {spec.label} (kind={spec.kind}, seed={spec.seed})"
        if hasattr(exc, "add_note"):  # PEP 678, Python 3.11+
            exc.add_note(note)
        else:  # pragma: no cover - exercised on 3.9/3.10 only
            exc.cell_note = note
        raise
