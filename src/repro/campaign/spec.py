"""Declarative campaign cells.

A :class:`CellSpec` is the unit of work of the experiments layer: one
fully-described simulation (or analysis) whose result is a pure
function of the spec and the simulator source.  Specs are frozen and
hashable, serialize to canonical JSON, and therefore support
content-addressed caching (see :mod:`repro.campaign.cache`) and
process-pool execution (see :mod:`repro.campaign.engine`).

Cell kinds and their payloads:

``parsec``
    Closed-loop CMP run of one PARSEC-profile benchmark under one
    scheme → :class:`~repro.experiments.common.RunRecord`.
``synthetic``
    Open-loop synthetic-traffic point → ``RunRecord``.
``synthetic_metrics``
    Synthetic point returning the extended metrics dict used by the
    ablations and the NoRD comparison (off-fraction, wake events,
    detours, ...).
``bet_account``
    Synthetic run re-accounted under a given break-even time
    (``extras: bet``) → metrics dict.
``analysis``
    Deterministic non-simulation analysis (Table 1 enumeration)
    → ``{"report": str}``.
``bench``
    Kernel cycles/sec benchmark cell (never cached — wall-clock
    timings are not content-addressable) → bench result dict.
``reliability``
    One Monte-Carlo reliability trial: a fault schedule sampled from
    the cell's seed (see ``repro.noc.faults.sample_fault_schedule``)
    injected into a reroute-capable network under synthetic traffic,
    with strict invariants and the deadlock watchdog armed → outcome
    dict (delivered/dropped/refused counts, ``deadlocked`` flag, the
    sampled fault spec string, retry/reroute counters).
``guarantees``
    One bound-validation run: a fault-free synthetic run with a
    :class:`repro.guarantees.BoundChecker` on the delivery stream →
    tightness dict (checked/violation counts, worst observed/bound
    ratio with decomposition, reservoir latency quantiles, the bound
    model's parameters).  ``extras: strict`` selects raise-on-first
    enforcement instead of violation accounting.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Mapping, Optional, Sequence, Tuple, Union

from ..experiments.common import CANONICAL_INSTRUCTIONS
from ..noc import NoCConfig

#: Sorted, hashable ``(key, value)`` pairs — the wire form of every
#: mapping-valued spec field.
Items = Tuple[Tuple[str, object], ...]

ItemsLike = Union[None, Items, Mapping[str, object], Sequence[Tuple[str, object]]]

CELL_KINDS = (
    "parsec",
    "synthetic",
    "synthetic_metrics",
    "bet_account",
    "analysis",
    "bench",
    "reliability",
    "guarantees",
)


def freeze_items(mapping: ItemsLike) -> Items:
    """Normalize a mapping (or pair sequence) to sorted item tuples."""
    if not mapping:
        return ()
    pairs = mapping.items() if isinstance(mapping, Mapping) else mapping
    return tuple(sorted((str(k), v) for k, v in pairs))


def _config_items(config: Optional[NoCConfig]) -> Items:
    return () if config is None else config.to_items()


@dataclass(frozen=True)
class CellSpec:
    """One frozen, hashable unit of campaign work."""

    kind: str
    #: Benchmark name (parsec), traffic pattern (synthetic*), or an
    #: analysis label.
    workload: str
    scheme: str = "-"
    #: Constructor kwargs for the scheme, as sorted items.
    scheme_kwargs: Items = ()
    #: Post-construction attribute overrides (ablations toggle
    #: ``slack2``/``use_forewarning`` this way), as sorted items.
    scheme_attrs: Items = ()
    #: Non-default :class:`NoCConfig` fields, as sorted items.
    config: Items = ()
    seed: int = 1
    #: Per-core instruction budget (parsec cells only).
    instructions: int = CANONICAL_INSTRUCTIONS
    #: Synthetic-traffic parameters (ignored by parsec/analysis cells).
    injection_rate: float = 0.0
    warmup: int = 1000
    measurement: int = 6000
    drain: bool = False
    #: Kind-specific extension point (e.g. ``bet`` for bet_account,
    #: enumeration parameters for analysis cells), as sorted items.
    extras: Items = ()

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ValueError(f"unknown cell kind {self.kind!r}; one of {CELL_KINDS}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def parsec(
        cls,
        benchmark: str,
        scheme: str,
        *,
        instructions: int = CANONICAL_INSTRUCTIONS,
        seed: int = 1,
        config: Optional[NoCConfig] = None,
        scheme_kwargs: ItemsLike = None,
        scheme_attrs: ItemsLike = None,
    ) -> "CellSpec":
        """A closed-loop PARSEC-profile cell."""
        return cls(
            kind="parsec",
            workload=benchmark,
            scheme=scheme,
            scheme_kwargs=freeze_items(scheme_kwargs),
            scheme_attrs=freeze_items(scheme_attrs),
            config=_config_items(config),
            seed=seed,
            instructions=instructions,
        )

    @classmethod
    def synthetic(
        cls,
        pattern: str,
        injection_rate: float,
        scheme: str,
        *,
        warmup: int = 1000,
        measurement: int = 6000,
        seed: int = 7,
        drain: bool = True,
        config: Optional[NoCConfig] = None,
        scheme_kwargs: ItemsLike = None,
        scheme_attrs: ItemsLike = None,
        metrics: bool = False,
    ) -> "CellSpec":
        """An open-loop synthetic-traffic cell.

        ``metrics=True`` selects the extended metrics payload instead
        of a :class:`RunRecord`.
        """
        return cls(
            kind="synthetic_metrics" if metrics else "synthetic",
            workload=pattern,
            scheme=scheme,
            scheme_kwargs=freeze_items(scheme_kwargs),
            scheme_attrs=freeze_items(scheme_attrs),
            config=_config_items(config),
            seed=seed,
            injection_rate=injection_rate,
            warmup=warmup,
            measurement=measurement,
            drain=drain,
        )

    @classmethod
    def bet(
        cls,
        pattern: str,
        injection_rate: float,
        scheme: str,
        *,
        bet: int,
        warmup: int = 1000,
        measurement: int = 4000,
        seed: int = 7,
        config: Optional[NoCConfig] = None,
        scheme_kwargs: ItemsLike = None,
    ) -> "CellSpec":
        """A break-even-time energy-accounting cell."""
        return cls(
            kind="bet_account",
            workload=pattern,
            scheme=scheme,
            scheme_kwargs=freeze_items(scheme_kwargs),
            config=_config_items(config),
            seed=seed,
            injection_rate=injection_rate,
            warmup=warmup,
            measurement=measurement,
            extras=freeze_items({"bet": bet}),
        )

    @classmethod
    def analysis(cls, label: str, **params: object) -> "CellSpec":
        """A deterministic analysis cell (no simulation)."""
        return cls(kind="analysis", workload=label, extras=freeze_items(params))

    @classmethod
    def reliability(
        cls,
        sample_seed: int,
        *,
        pattern: str = "uniform_random",
        injection_rate: float = 0.02,
        scheme: str = "PowerPunch-PG",
        warmup: int = 500,
        measurement: int = 4000,
        config: Optional[NoCConfig] = None,
        max_faults: int = 2,
        horizon: int = 2000,
        watchdog: int = 50_000,
        scheme_kwargs: ItemsLike = None,
    ) -> "CellSpec":
        """One Monte-Carlo reliability trial.

        ``sample_seed`` drives both the fault-schedule sampler and the
        traffic generator, so the trial is a pure function of the spec;
        ``max_faults``/``horizon`` parameterize the sampler and
        ``watchdog`` bounds the deadlock detector.  ``scheme="-"``
        runs without power gating (structural faults only).
        """
        return cls(
            kind="reliability",
            workload=pattern,
            scheme=scheme,
            scheme_kwargs=freeze_items(scheme_kwargs),
            seed=sample_seed,
            injection_rate=injection_rate,
            warmup=warmup,
            measurement=measurement,
            config=_config_items(config),
            extras=freeze_items(
                {
                    "max_faults": max_faults,
                    "horizon": horizon,
                    "watchdog": watchdog,
                }
            ),
        )

    @classmethod
    def guarantees(
        cls,
        pattern: str,
        injection_rate: float,
        scheme: str,
        *,
        warmup: int = 500,
        measurement: int = 2000,
        seed: int = 7,
        drain: bool = True,
        config: Optional[NoCConfig] = None,
        scheme_kwargs: ItemsLike = None,
        strict: bool = False,
    ) -> "CellSpec":
        """One latency-bound validation run.

        A fault-free synthetic run whose delivery stream is checked
        against the analytical per-route bounds.  ``strict=True``
        raises on the first violating packet (the enforcement
        acceptance scenario); the default records violations into the
        payload so tightness campaigns report them as data.
        ``scheme="-"`` runs the always-on baseline.
        """
        return cls(
            kind="guarantees",
            workload=pattern,
            scheme=scheme,
            scheme_kwargs=freeze_items(scheme_kwargs),
            config=_config_items(config),
            seed=seed,
            injection_rate=injection_rate,
            warmup=warmup,
            measurement=measurement,
            drain=drain,
            extras=freeze_items({"strict": strict}),
        )

    # ------------------------------------------------------------------
    # Canonical form / cache key
    # ------------------------------------------------------------------
    def build_config(self) -> NoCConfig:
        """Materialize this cell's :class:`NoCConfig`."""
        return NoCConfig.from_items(self.config)

    def canonical(self) -> dict:
        """All fields as a deterministic JSON-ready dict."""
        doc = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = [list(pair) for pair in value]
            doc[f.name] = value
        return doc

    @classmethod
    def from_canonical(cls, doc: Mapping[str, object]) -> "CellSpec":
        """Rebuild a spec from :meth:`canonical` output (or its JSON).

        The exact inverse of :meth:`canonical`: item-valued fields come
        back as sorted tuples, so ``from_canonical(json.loads(
        spec.canonical_json()))`` equals ``spec`` (and hashes to the
        same cache key).  This is the wire form of the campaign
        service — specs travel between orchestrator and worker hosts
        as canonical JSON.
        """
        kwargs = {}
        item_fields = {"scheme_kwargs", "scheme_attrs", "config", "extras"}
        for f in fields(cls):
            if f.name not in doc:
                continue
            value = doc[f.name]
            if f.name in item_fields:
                value = freeze_items(value)  # type: ignore[arg-type]
            kwargs[f.name] = value
        return cls(**kwargs)

    def canonical_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators."""
        return json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))

    def cache_key(self, salt: str) -> str:
        """Content address: hash of the canonical spec + code salt."""
        digest = hashlib.sha256()
        digest.update(salt.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()

    @property
    def label(self) -> str:
        """Short human-readable identity for logs."""
        work = self.workload
        if self.kind in ("synthetic", "synthetic_metrics", "bet_account"):
            work = f"{self.workload}@{self.injection_rate:g}"
        return f"{self.kind}:{work}:{self.scheme}:s{self.seed}"
