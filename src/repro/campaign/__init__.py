"""Declarative campaign engine for the experiments layer.

Experiments declare frozen :class:`CellSpec` cells — one simulation
each — and run them through :func:`execute_cells` / :class:`Campaign`:
a supervised process-pool executor with a content-addressed on-disk
cache (:class:`CellCache`), crash isolation and pool respawn, per-cell
wall-clock timeouts, retry classification with a persistent
:class:`QuarantineLedger`, periodic :class:`CampaignCheckpoint`
snapshots for ``kill -9`` recovery, and a structured JSONL progress
log.  See ``docs/campaigns.md`` and ``docs/resilience.md``.

Campaigns also run distributed: the :mod:`repro.campaign.service`
subpackage provides a sharded orchestrator with leases, heartbeats
and work-stealing over TCP worker hosts (``Campaign.run(hosts=...)``
or ``--hosts`` on any campaign CLI; see ``docs/service.md``).
"""

from .cache import CellCache, code_salt, decode_payload, encode_payload
from .cli import (
    add_campaign_args,
    add_guarantees_args,
    add_robustness_args,
    apply_guarantees_args,
    apply_robustness_args,
    campaign_argparser,
    engine_options,
    require_mesh_topology,
    sprt_options,
)
from .engine import (
    Campaign,
    CampaignError,
    CampaignInterrupted,
    CampaignStats,
    EventLog,
    execute_cells,
    iter_events,
    merge_event_streams,
)
from .runner import build_scheme, run_cell, run_parsec, run_synthetic
from .spec import CellSpec, freeze_items
from .supervisor import (
    CampaignCheckpoint,
    CellTimeoutError,
    FailureReport,
    QuarantinedCellError,
    QuarantineLedger,
    RetryPolicy,
    WorkerCrashError,
    classify_attempts,
    error_signature,
)

__all__ = [
    "Campaign",
    "CampaignCheckpoint",
    "CampaignError",
    "CampaignInterrupted",
    "CampaignStats",
    "CellCache",
    "CellSpec",
    "CellTimeoutError",
    "EventLog",
    "FailureReport",
    "QuarantineLedger",
    "QuarantinedCellError",
    "RetryPolicy",
    "WorkerCrashError",
    "add_campaign_args",
    "add_guarantees_args",
    "add_robustness_args",
    "apply_guarantees_args",
    "apply_robustness_args",
    "build_scheme",
    "campaign_argparser",
    "classify_attempts",
    "code_salt",
    "decode_payload",
    "encode_payload",
    "engine_options",
    "error_signature",
    "execute_cells",
    "freeze_items",
    "iter_events",
    "merge_event_streams",
    "require_mesh_topology",
    "run_cell",
    "run_parsec",
    "run_synthetic",
    "sprt_options",
]
