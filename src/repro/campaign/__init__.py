"""Declarative campaign engine for the experiments layer.

Experiments declare frozen :class:`CellSpec` cells — one simulation
each — and run them through :func:`execute_cells` / :class:`Campaign`:
a process-pool executor with a content-addressed on-disk cache
(:class:`CellCache`), per-cell retries on the typed
``SimulationError`` hierarchy, and a structured JSONL progress log.
See ``docs/campaigns.md``.
"""

from .cache import CellCache, code_salt, decode_payload, encode_payload
from .cli import add_campaign_args, campaign_argparser, engine_options
from .engine import Campaign, CampaignError, CampaignStats, execute_cells
from .runner import build_scheme, run_cell, run_parsec, run_synthetic
from .spec import CellSpec, freeze_items

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignStats",
    "CellCache",
    "CellSpec",
    "add_campaign_args",
    "build_scheme",
    "campaign_argparser",
    "code_salt",
    "decode_payload",
    "encode_payload",
    "engine_options",
    "execute_cells",
    "freeze_items",
    "run_cell",
    "run_parsec",
    "run_synthetic",
]
