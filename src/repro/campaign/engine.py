"""Campaign execution: cache lookup, process-pool fan-out, retries.

``execute_cells`` is the one code path every experiment goes through:

1. each cell is looked up in the content-addressed cache (hits skip
   simulation entirely, which is also what makes interrupted
   campaigns resumable);
2. misses run — inline for ``workers=1``, else on a
   ``ProcessPoolExecutor`` (cells are independent and deterministic,
   with seeds carried *inside* the spec, so fan-out cannot change
   results, only wall-clock);
3. a failed cell is retried (``SimulationError`` and its subclasses
   only — the PR 1 typed hierarchy — so genuine bugs like ``KeyError``
   still crash immediately);
4. every step appends a structured event to a JSONL progress log.

Results always come back in declared cell order regardless of
completion order.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..noc.errors import SimulationError
from .cache import CellCache, Payload
from .runner import run_cell
from .spec import CellSpec


class CampaignError(RuntimeError):
    """A cell exhausted its retries; carries the spec and the cause."""

    def __init__(self, spec: CellSpec, cause: BaseException, attempts: int) -> None:
        self.spec = spec
        self.cause = cause
        self.attempts = attempts
        super().__init__(
            f"cell {spec.label} failed after {attempts} attempt(s): {cause}"
        )


@dataclass
class CampaignStats:
    """Outcome counters of one ``execute_cells`` call."""

    total: int = 0
    hits: int = 0
    executed: int = 0
    retried: int = 0
    elapsed: float = 0.0

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "hits": self.hits,
            "executed": self.executed,
            "retried": self.retried,
            "elapsed": round(self.elapsed, 3),
        }


class _EventLog:
    """Append-only JSONL event sink (no-op without a path)."""

    def __init__(self, path: Optional[Union[str, Path]]) -> None:
        self._fh = None
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(path, "a")

    def emit(self, event: dict) -> None:
        if self._fh is None:
            return
        event = {"ts": round(time.time(), 3), **event}
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _cell_event(status: str, spec: CellSpec, **extra) -> dict:
    event = {
        "event": "cell",
        "status": status,
        "kind": spec.kind,
        "label": spec.label,
        "workload": spec.workload,
        "scheme": spec.scheme,
        "seed": spec.seed,
    }
    event.update(extra)
    return event


def _attempt_cell(spec: CellSpec, retries: int) -> Tuple[Payload, int]:
    """Run one cell with retry-on-``SimulationError``; top-level so it
    pickles onto pool workers.  Returns ``(payload, attempts)``."""
    attempts = 0
    while True:
        attempts += 1
        try:
            return run_cell(spec), attempts
        except SimulationError:
            if attempts > retries:
                raise


def _attempts_made(exc: BaseException, retries: int) -> int:
    """Attempts a failed cell consumed: only ``SimulationError`` is
    retried, so anything else failed on the first try."""
    return retries + 1 if isinstance(exc, SimulationError) else 1


def execute_cells(
    cells: Sequence[CellSpec],
    *,
    workers: int = 1,
    cache: Optional[CellCache] = None,
    resume: bool = True,
    retries: int = 1,
    log_path: Optional[Union[str, Path]] = None,
    name: str = "campaign",
    on_result: Optional[Callable[[int, CellSpec, Payload, bool], None]] = None,
) -> Tuple[List[Payload], CampaignStats]:
    """Execute cells; return ``(payloads_in_declared_order, stats)``.

    ``resume=False`` ignores cached entries (they are recomputed and
    overwritten) while still writing fresh results.  ``on_result`` is
    called as ``(index, spec, payload, was_hit)`` in completion order
    — hits first, then runs as they finish.
    """
    cells = list(cells)
    stats = CampaignStats(total=len(cells))
    log = _EventLog(log_path)
    log.emit(
        {
            "event": "campaign-start",
            "name": name,
            "cells": len(cells),
            "workers": workers,
            "resume": resume,
            "salt": cache.salt if cache else None,
        }
    )
    start = perf_counter()
    results: List[Optional[Payload]] = [None] * len(cells)
    done = [False] * len(cells)
    pending: List[int] = []
    try:
        for index, spec in enumerate(cells):
            payload = cache.get(spec) if (cache is not None and resume) else None
            if payload is not None:
                results[index] = payload
                done[index] = True
                stats.hits += 1
                log.emit(_cell_event("hit", spec, key=cache.key_for(spec)))
                if on_result is not None:
                    on_result(index, spec, payload, True)
            else:
                pending.append(index)

        def _complete(index: int, payload: Payload, attempts: int, secs: float):
            results[index] = payload
            done[index] = True
            stats.executed += 1
            stats.retried += attempts - 1
            spec = cells[index]
            if cache is not None:
                cache.put(spec, payload)
            log.emit(
                _cell_event(
                    "done",
                    spec,
                    attempts=attempts,
                    elapsed=round(secs, 3),
                    key=cache.key_for(spec) if cache else None,
                )
            )
            if on_result is not None:
                on_result(index, spec, payload, False)

        if workers > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_attempt_cell, cells[index], retries): (
                        index,
                        perf_counter(),
                    )
                    for index in pending
                }
                outstanding = set(futures)
                while outstanding:
                    finished, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        index, t0 = futures[future]
                        try:
                            payload, attempts = future.result()
                        except Exception as exc:
                            for other in outstanding:
                                other.cancel()
                            log.emit(
                                _cell_event(
                                    "failed", cells[index], error=str(exc)
                                )
                            )
                            raise CampaignError(
                                cells[index], exc, _attempts_made(exc, retries)
                            ) from exc
                        _complete(index, payload, attempts, perf_counter() - t0)
        else:
            for index in pending:
                t0 = perf_counter()
                try:
                    payload, attempts = _attempt_cell(cells[index], retries)
                except Exception as exc:
                    log.emit(_cell_event("failed", cells[index], error=str(exc)))
                    raise CampaignError(
                        cells[index], exc, _attempts_made(exc, retries)
                    ) from exc
                _complete(index, payload, attempts, perf_counter() - t0)

        stats.elapsed = perf_counter() - start
        log.emit({"event": "campaign-end", "name": name, **stats.as_dict()})
        assert all(done)
        return list(results), stats
    finally:
        log.close()


@dataclass
class Campaign:
    """A named iterable of cells plus an optional reducer.

    ``run()`` executes the cells through :func:`execute_cells` and
    returns ``reducer(payloads)`` (or the raw payload list).  The
    stats of the latest run are kept on ``last_stats`` so callers —
    and the CI cache-hit smoke check — can assert hit/run counts.
    """

    name: str
    cells: Tuple[CellSpec, ...]
    reducer: Optional[Callable[[List[Payload]], object]] = None
    last_stats: Optional[CampaignStats] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        self.cells = tuple(self.cells)

    def run(
        self,
        *,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        resume: bool = True,
        retries: int = 1,
        log_path: Optional[Union[str, Path]] = None,
        on_result: Optional[Callable] = None,
    ):
        cache = None
        if cache_dir is not None:
            cache = CellCache(cache_dir)
            if log_path is None:
                safe = "".join(
                    c if c.isalnum() or c in "-_" else "-" for c in self.name
                )
                log_path = Path(cache_dir) / f"{safe}.events.jsonl"
        payloads, stats = execute_cells(
            self.cells,
            workers=workers,
            cache=cache,
            resume=resume,
            retries=retries,
            log_path=log_path,
            name=self.name,
            on_result=on_result,
        )
        self.last_stats = stats
        return self.reducer(payloads) if self.reducer is not None else payloads
