"""Campaign execution: cache lookup, supervised fan-out, recovery.

``execute_cells`` is the one code path every experiment goes through:

1. each cell is looked up in the content-addressed cache, then in the
   campaign checkpoint (hits skip simulation entirely, which is also
   what makes interrupted — even ``kill -9``'d — campaigns resumable);
2. cells already condemned by the :class:`QuarantineLedger` are
   reported as failed immediately instead of burning retries again;
3. misses run under supervision — inline for ``workers=1`` without a
   timeout, else on a ``ProcessPoolExecutor`` with a sliding
   submission window.  The supervisor owns the retry loop (one
   attempt per submission): per-cell wall-clock timeouts, detection
   of worker death (``BrokenProcessPool`` from an OOM kill, segfault
   or signal) with automatic pool respawn, exponential backoff with
   deterministic jitter, and transient-vs-deterministic failure
   classification — a cell failing twice with the identical signature
   is quarantined, not re-run;
4. completed payloads land in the cache and the periodic checkpoint;
   every step appends a structured event to a JSONL progress log, and
   failures produce structured reports carrying any post-mortem the
   error captured.

Results always come back in declared cell order regardless of
completion order.  With ``failure_mode="raise"`` (the default) a
campaign with failed cells finishes every *other* cell first — so the
work is cached and resumable — then raises the first failure in
declared order; ``failure_mode="continue"`` returns ``None`` for
failed cells instead.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..noc.errors import SimulationError
from .cache import CellCache, Payload, code_salt
from .runner import run_cell
from .spec import CellSpec
from .supervisor import (
    CampaignCheckpoint,
    CellTimeoutError,
    FailureReport,
    QuarantinedCellError,
    QuarantineLedger,
    RetryPolicy,
    WorkerCrashError,
    classify_attempts,
    error_signature,
)


class CampaignError(RuntimeError):
    """A cell failed for good; carries the spec and the cause."""

    def __init__(self, spec: CellSpec, cause: BaseException, attempts: int) -> None:
        self.spec = spec
        self.cause = cause
        self.attempts = attempts
        super().__init__(
            f"cell {spec.label} failed after {attempts} attempt(s): {cause}"
        )


@dataclass
class CampaignStats:
    """Outcome counters of one ``execute_cells`` call."""

    total: int = 0
    hits: int = 0
    executed: int = 0
    retried: int = 0
    #: Cells recovered from the campaign checkpoint (subset of hits).
    restored: int = 0
    #: Worker-pool deaths detected and survived (respawns).
    crashes: int = 0
    #: Cells killed for exceeding the wall-clock budget (attempt count).
    timeouts: int = 0
    #: Cells condemned to the quarantine ledger this run, plus cells
    #: skipped because a previous run condemned them.
    quarantined: int = 0
    failed: int = 0
    elapsed: float = 0.0

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "hits": self.hits,
            "executed": self.executed,
            "retried": self.retried,
            "restored": self.restored,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "quarantined": self.quarantined,
            "failed": self.failed,
            "elapsed": round(self.elapsed, 3),
        }


class CampaignInterrupted(KeyboardInterrupt):
    """A SIGTERM/SIGINT arrived mid-campaign.

    Raised *after* the engine's cleanup has a chance to run (checkpoint
    flush, event-log close, pool-worker kill), so a Ctrl-C'd or
    systemd-stopped campaign resumes cleanly from its checkpoint.
    Subclasses :class:`KeyboardInterrupt` so callers that already treat
    Ctrl-C as fatal keep their semantics.
    """

    def __init__(self, signum: int) -> None:
        self.signum = signum
        super().__init__(f"campaign interrupted by signal {signum}")


class _SignalGuard:
    """Convert SIGTERM/SIGINT into :class:`CampaignInterrupted`.

    Installed for the duration of ``execute_cells`` so termination
    unwinds through the engine's ``finally`` blocks (checkpoint and
    event-log flush, pool-worker kill) instead of dying mid-write.
    Signal handlers are a main-thread-only facility; anywhere else
    (e.g. a worker host running the engine on a thread) this guard is
    a no-op and the surrounding process owns signal handling.
    """

    def __enter__(self) -> "_SignalGuard":
        self._installed: List[Tuple[int, object]] = []
        if threading.current_thread() is threading.main_thread():
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous = signal.signal(sig, self._raise)
                except (ValueError, OSError):  # pragma: no cover - exotic
                    continue
                self._installed.append((sig, previous))
        return self

    def _raise(self, signum: int, frame) -> None:
        raise CampaignInterrupted(signum)

    def __exit__(self, *exc_info) -> bool:
        for sig, previous in self._installed:
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):  # pragma: no cover - exotic
                pass
        return False


class EventLog:
    """Append-only JSONL event sink (no-op without a path).

    Every event carries a wall-clock ``ts`` plus a monotonic per-log
    ``seq``; with a ``host`` identity set, events are additionally
    stamped with it, so event streams from several hosts merge
    deterministically (see :func:`merge_event_streams`).
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]],
        host: Optional[str] = None,
    ) -> None:
        self._fh = None
        self._host = host
        self._seq = 0
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(path, "a")

    def emit(self, event: dict) -> None:
        if self._fh is None:
            return
        stamped = {"ts": round(time.time(), 3), "seq": self._seq}
        if self._host is not None:
            stamped["host"] = self._host
        stamped.update(event)
        self._seq += 1
        self._fh.write(json.dumps(stamped, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


#: Backwards-compatible alias (the class used to be module-private).
_EventLog = EventLog


def iter_events(path: Union[str, Path]) -> Iterator[dict]:
    """Yield the events of a JSONL log, skipping torn/corrupt lines.

    A crashed (or SIGKILLed) writer can leave a truncated trailing
    line; like ``QuarantineLedger._load``, a line that does not parse
    as a JSON object is silently skipped so readers degrade to the
    events that were durably written instead of crashing.
    """
    try:
        lines = Path(path).read_text().splitlines()
    except OSError:
        return
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if isinstance(event, dict):
            yield event


def merge_event_streams(paths: Sequence[Union[str, Path]]) -> List[dict]:
    """Deterministically merge several JSONL event logs.

    Events are ordered by ``(ts, host, seq)`` — wall-clock first, ties
    broken by host identity then per-host sequence number — so merging
    the orchestrator's log with every worker host's log yields the
    same stream no matter when or where the merge runs.
    """
    merged: List[dict] = []
    for path in paths:
        merged.extend(iter_events(path))
    merged.sort(
        key=lambda e: (e.get("ts", 0.0), str(e.get("host", "")), e.get("seq", 0))
    )
    return merged


def _cell_event(status: str, spec: CellSpec, **extra) -> dict:
    event = {
        "event": "cell",
        "status": status,
        "kind": spec.kind,
        "label": spec.label,
        "workload": spec.workload,
        "scheme": spec.scheme,
        "seed": spec.seed,
    }
    event.update(extra)
    return event


def _run_one(spec: CellSpec) -> Payload:
    """Single-attempt worker entry point; top-level so it pickles onto
    pool workers.  The retry loop lives supervisor-side now, so every
    attempt is individually visible, classified and backed off."""
    return run_cell(spec)


def _attempt_cell(spec: CellSpec, retries: int) -> Tuple[Payload, int]:
    """Run one cell with retry-on-``SimulationError``.

    Kept as the minimal inline retry helper (and for callers/tests
    that drive single cells); campaign execution goes through the
    supervised single-attempt path instead.  Returns
    ``(payload, attempts)``.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            return run_cell(spec), attempts
        except SimulationError:
            if attempts > retries:
                raise


def _retryable(exc: BaseException) -> bool:
    """Whether a failure is worth another attempt at all: typed
    simulator errors and failures of the *machinery around* the cell
    (worker death, timeout).  Anything else — ``KeyError`` and friends
    — is a genuine bug and fails on the first observation."""
    return isinstance(exc, (SimulationError, WorkerCrashError, CellTimeoutError))


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """Hard-kill every worker of ``pool`` (per-cell timeout enforcement;
    the resulting ``BrokenProcessPool`` is handled by the supervisor)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already-dead workers
            pass


def execute_cells(
    cells: Sequence[CellSpec],
    *,
    workers: int = 1,
    cache: Optional[CellCache] = None,
    resume: bool = True,
    retries: int = 1,
    max_retries: Optional[int] = None,
    timeout: Optional[float] = None,
    quarantine: Optional[Union[QuarantineLedger, str, Path]] = None,
    checkpoint: Optional[Union[CampaignCheckpoint, str, Path]] = None,
    checkpoint_every: int = 4,
    failure_mode: str = "raise",
    log_path: Optional[Union[str, Path]] = None,
    log_host: Optional[str] = None,
    name: str = "campaign",
    on_result: Optional[Callable[[int, CellSpec, Payload, bool], None]] = None,
    on_failure: Optional[Callable[[int, CellSpec, BaseException, str], None]] = None,
) -> Tuple[List[Optional[Payload]], CampaignStats]:
    """Execute cells; return ``(payloads_in_declared_order, stats)``.

    ``max_retries`` is the total per-cell attempt budget (defaults to
    the legacy ``retries + 1``).  ``timeout`` is a per-cell wall-clock
    budget in seconds; enforcing it requires process isolation, so a
    timeout forces the pool path even for ``workers=1``.
    ``quarantine`` is a :class:`QuarantineLedger` (or its directory);
    ``checkpoint`` a :class:`CampaignCheckpoint` (or its file path).
    ``resume=False`` ignores cached/checkpointed entries (they are
    recomputed and overwritten) while still writing fresh results.
    ``on_result`` is called as ``(index, spec, payload, was_hit)`` in
    completion order — hits first, then runs as they finish;
    ``on_failure`` as ``(index, spec, exception, classification)`` when
    a cell fails for good.  ``log_host`` stamps every event with a host
    identity (multi-host campaigns merge their logs deterministically).

    While the engine runs on the main thread, SIGTERM/SIGINT are
    converted into :class:`CampaignInterrupted`: the checkpoint and
    event log are flushed and pool workers killed before the exception
    propagates, so an interrupted campaign resumes cleanly.
    """
    if failure_mode not in ("raise", "continue"):
        raise ValueError("failure_mode must be 'raise' or 'continue'")
    cells = list(cells)
    budget = max_retries if max_retries is not None else retries + 1
    policy = RetryPolicy(max_retries=budget, timeout=timeout)
    if isinstance(quarantine, (str, Path)):
        quarantine = QuarantineLedger(quarantine)
    if isinstance(checkpoint, (str, Path)):
        checkpoint = CampaignCheckpoint(
            Path(checkpoint),
            salt=cache.salt if cache is not None else code_salt(),
            name=name,
        )

    stats = CampaignStats(total=len(cells))
    log = EventLog(log_path, host=log_host)
    log.emit(
        {
            "event": "campaign-start",
            "name": name,
            "cells": len(cells),
            "workers": workers,
            "resume": resume,
            "salt": cache.salt if cache else None,
            "max_retries": budget,
            "timeout": timeout,
            "quarantine": str(quarantine.root) if quarantine else None,
            "checkpoint": str(checkpoint.path) if checkpoint else None,
        }
    )
    start = perf_counter()
    results: List[Optional[Payload]] = [None] * len(cells)
    done = [False] * len(cells)
    failures: Dict[int, CampaignError] = {}
    pending: List[int] = []

    keyed = cache is not None or quarantine is not None or checkpoint is not None
    keys: Dict[int, str] = {}

    def key_of(index: int) -> str:
        key = keys.get(index)
        if key is None:
            salt = cache.salt if cache is not None else code_salt()
            keys[index] = key = cells[index].cache_key(salt)
        return key

    if checkpoint is not None and resume:
        checkpoint.load()

    # Entered/exited manually so the large body below keeps its
    # indentation; semantically a ``with _SignalGuard():`` around the
    # whole execution.
    guard = _SignalGuard()
    guard.__enter__()
    try:
        # ---- Phase 1: cache / checkpoint recovery --------------------
        for index, spec in enumerate(cells):
            payload = cache.get(spec) if (cache is not None and resume) else None
            restored = False
            if payload is None and checkpoint is not None and resume:
                payload = checkpoint.get(key_of(index))
                restored = payload is not None
                if restored and cache is not None:
                    cache.put(spec, payload)  # heal the cache
            if payload is not None:
                results[index] = payload
                done[index] = True
                stats.hits += 1
                if restored:
                    stats.restored += 1
                if checkpoint is not None:
                    checkpoint.record(key_of(index), payload)
                log.emit(
                    _cell_event(
                        "restored" if restored else "hit",
                        spec,
                        key=key_of(index) if keyed else None,
                    )
                )
                if on_result is not None:
                    on_result(index, spec, payload, True)
            else:
                pending.append(index)

        # ---- Phase 2: quarantine skip --------------------------------
        runnable: List[int] = []
        for index in pending:
            if quarantine is not None and quarantine.is_quarantined(key_of(index)):
                spec = cells[index]
                entry = quarantine.entry_for(key_of(index)) or {}
                exc = QuarantinedCellError(
                    f"cell {spec.label} is quarantined "
                    f"({entry.get('classification', 'unknown')}: "
                    f"{entry.get('error', 'see ledger')}); remove "
                    f"{quarantine.report_path(key_of(index))} to retry"
                )
                failures[index] = CampaignError(spec, exc, 0)
                stats.quarantined += 1
                stats.failed += 1
                if on_failure is not None:
                    on_failure(index, spec, exc, "quarantined")
                log.emit(
                    _cell_event(
                        "quarantined-skip", spec, key=key_of(index)
                    )
                )
            else:
                runnable.append(index)

        attempts: Dict[int, int] = {index: 0 for index in runnable}
        signatures: Dict[int, List[str]] = {index: [] for index in runnable}

        def _complete(index: int, payload: Payload, secs: float) -> None:
            attempts[index] += 1  # the successful attempt
            results[index] = payload
            done[index] = True
            stats.executed += 1
            stats.retried += attempts[index] - 1
            spec = cells[index]
            if cache is not None:
                cache.put(spec, payload)
            if checkpoint is not None:
                checkpoint.record(key_of(index), payload)
                if checkpoint.dirty >= checkpoint_every:
                    checkpoint.flush()
                    log.emit(
                        {
                            "event": "checkpoint",
                            "name": name,
                            "completed": len(checkpoint.entries),
                        }
                    )
            log.emit(
                _cell_event(
                    "done",
                    spec,
                    attempts=attempts[index],
                    elapsed=round(secs, 3),
                    key=key_of(index) if keyed else None,
                )
            )
            if on_result is not None:
                on_result(index, spec, payload, False)

        def _fail(index: int, exc: BaseException, classification: str) -> None:
            spec = cells[index]
            stats.failed += 1
            if quarantine is not None:
                report = FailureReport.from_failure(
                    spec,
                    key_of(index),
                    exc,
                    attempts[index],
                    signatures[index],
                    classification,
                )
                if classification in ("deterministic", "fatal"):
                    quarantine.quarantine(report)
                    stats.quarantined += 1
                else:
                    # "exhausted" means the budget ran out on *differing*
                    # signatures — a flaky cell, not a condemned one.  Keep
                    # the structured report for post-mortems but write no
                    # ledger line, so the next campaign retries it.
                    quarantine.record_failure(report)
            log.emit(
                _cell_event(
                    "failed",
                    spec,
                    attempts=attempts[index],
                    classification=classification,
                    error=str(exc),
                    key=key_of(index) if keyed else None,
                )
            )
            failures[index] = CampaignError(spec, exc, attempts[index])
            if on_failure is not None:
                on_failure(index, spec, exc, classification)

        def _after_failure(index: int, exc: BaseException):
            """Account one failed attempt; returns ``("fail", cls)`` or
            ``("retry", delay_seconds)``."""
            signatures[index].append(error_signature(exc))
            attempts[index] += 1
            if not _retryable(exc):
                return ("fail", "fatal")
            classification = classify_attempts(signatures[index])
            if classification == "deterministic":
                return ("fail", "deterministic")
            if attempts[index] >= budget:
                return ("fail", "exhausted")
            jitter_key = key_of(index) if keyed else cells[index].canonical_json()
            delay = policy.delay_before(attempts[index] + 1, jitter_key)
            log.emit(
                _cell_event(
                    "retry",
                    cells[index],
                    attempts=attempts[index],
                    error=str(exc),
                    delay=round(delay, 3),
                )
            )
            return ("retry", delay)

        # ---- Phase 3: supervised execution ---------------------------
        use_pool = bool(runnable) and (
            (workers > 1 and len(runnable) > 1) or timeout is not None
        )
        if use_pool:
            _supervise_pool(
                cells,
                runnable,
                workers=max(1, workers),
                timeout=timeout,
                stats=stats,
                log=log,
                name=name,
                after_failure=_after_failure,
                complete=_complete,
                fail=_fail,
            )
        else:
            for index in runnable:
                t0 = perf_counter()
                spec = cells[index]
                while True:
                    try:
                        payload = run_cell(spec)
                    except Exception as exc:
                        verdict, extra = _after_failure(index, exc)
                        if verdict == "fail":
                            _fail(index, exc, extra)
                            break
                        time.sleep(extra)
                        continue
                    _complete(index, payload, perf_counter() - t0)
                    break

        stats.elapsed = perf_counter() - start
        if checkpoint is not None:
            checkpoint.flush()
        log.emit({"event": "campaign-end", "name": name, **stats.as_dict()})
        assert all(done[i] or i in failures for i in range(len(cells)))
        if failures and failure_mode == "raise":
            raise failures[min(failures)]
        return list(results), stats
    except CampaignInterrupted as exc:
        # Graceful shutdown: record the interruption, then let the
        # ``finally`` below flush the checkpoint and close the log
        # before the signal propagates.
        log.emit({"event": "interrupted", "name": name, "signal": exc.signum})
        raise
    finally:
        guard.__exit__()
        if checkpoint is not None:
            checkpoint.flush()
        log.close()


def _supervise_pool(
    cells: List[CellSpec],
    runnable: List[int],
    *,
    workers: int,
    timeout: Optional[float],
    stats: CampaignStats,
    log: _EventLog,
    name: str,
    after_failure,
    complete,
    fail,
) -> None:
    """The supervised process-pool loop.

    Submissions are single attempts through a sliding window of at
    most ``workers`` in-flight futures (so a wall-clock deadline
    measured from submission is a faithful per-cell budget).  Worker
    death breaks every in-flight future; the supervisor charges the
    attempt only to the cells that were actually *running* (the likely
    culprits), resubmits the queued innocents for free, and respawns
    the pool.  A timed-out cell is killed by killing the whole pool —
    the only portable lever — and classified ``timeout`` rather than
    ``worker-crash``; cells that merely shared the pool with it
    (running but within their own deadline) are collateral damage and
    are resubmitted without being charged an attempt, so back-to-back
    timeout kills cannot condemn an innocent cell as deterministic.
    """
    pool = ProcessPoolExecutor(max_workers=workers)
    inflight: Dict[Future, int] = {}
    started: Dict[Future, float] = {}
    deadlines: Dict[Future, float] = {}
    first_start: Dict[int, float] = {}
    #: (ready_at, index) retry/backlog queue, consumed in order.
    waiting: List[Tuple[float, int]] = [(0.0, index) for index in runnable]
    timed_out: Set[int] = set()
    running_snapshot: Set[Future] = set()
    #: True while a pool break was supervisor-initiated (timeout
    #: enforcement) rather than a spontaneous worker death.
    supervisor_kill = False

    def respawn() -> None:
        nonlocal pool
        pool.shutdown(wait=False)
        pool = ProcessPoolExecutor(max_workers=workers)

    def submit(index: int) -> None:
        nonlocal pool
        for _ in range(2):
            try:
                future = pool.submit(_run_one, cells[index])
            except BrokenProcessPool:
                respawn()
                continue
            now = perf_counter()
            inflight[future] = index
            started[future] = now
            first_start.setdefault(index, now)
            if timeout is not None:
                deadlines[future] = now + timeout
            return
        raise RuntimeError("process pool kept breaking on submit")

    def handle_outcome(future: Future, index: int, exc: Optional[BaseException],
                       payload) -> None:
        timed_out.discard(index)
        if exc is None:
            complete(index, payload, perf_counter() - first_start[index])
            return
        verdict, extra = after_failure(index, exc)
        if verdict == "fail":
            fail(index, exc, extra)
        else:
            waiting.append((perf_counter() + extra, index))

    try:
        while inflight or waiting:
            now = perf_counter()
            if waiting and len(inflight) < workers:
                still_waiting: List[Tuple[float, int]] = []
                for ready_at, index in waiting:
                    if len(inflight) < workers and ready_at <= now:
                        submit(index)
                    else:
                        still_waiting.append((ready_at, index))
                waiting = still_waiting
            if not inflight:
                next_ready = min(ready_at for ready_at, _ in waiting)
                time.sleep(min(max(0.0, next_ready - now), 0.25))
                continue

            running_snapshot = {f for f in inflight if f.running()}
            wait_timeout = None
            if deadlines:
                wait_timeout = max(0.01, min(deadlines.values()) - now)
            if waiting:
                next_ready = max(0.01, min(r for r, _ in waiting) - now)
                wait_timeout = (
                    next_ready
                    if wait_timeout is None
                    else min(wait_timeout, next_ready)
                )
            finished, _ = wait(
                list(inflight), timeout=wait_timeout, return_when=FIRST_COMPLETED
            )

            if timeout is not None and not finished:
                now = perf_counter()
                expired = [
                    future
                    for future, deadline in deadlines.items()
                    if deadline <= now and not future.done()
                ]
                if expired:
                    for future in expired:
                        timed_out.add(inflight[future])
                        stats.timeouts += 1
                    log.emit(
                        {
                            "event": "timeout-kill",
                            "name": name,
                            "cells": [
                                cells[inflight[f]].label for f in expired
                            ],
                        }
                    )
                    running_snapshot = {f for f in inflight if f.running()}
                    running_snapshot.update(expired)
                    supervisor_kill = True
                    _kill_pool_workers(pool)
                continue

            # A broken pool still returns results from futures that
            # completed before the break, so harvest every finished
            # future first; only futures that broke (or are still
            # pending in-flight) become victims.
            victims: Dict[Future, int] = {}
            for future in finished:
                index = inflight.pop(future)
                started.pop(future, None)
                deadlines.pop(future, None)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    victims[future] = index
                except Exception as exc:
                    handle_outcome(future, index, exc, None)
                else:
                    handle_outcome(future, index, None, payload)

            if victims:
                victims.update(inflight)
                inflight.clear()
                started.clear()
                deadlines.clear()
                stats.crashes += 1
                log.emit(
                    {
                        "event": "pool-respawn",
                        "name": name,
                        "victims": [cells[i].label for i in victims.values()],
                    }
                )
                now = perf_counter()
                for future, index in victims.items():
                    if index in timed_out:
                        exc: BaseException = CellTimeoutError(
                            f"cell exceeded its {timeout:.3f}s wall-clock budget"
                        )
                        handle_outcome(future, index, exc, None)
                    elif future in running_snapshot and not supervisor_kill:
                        exc = WorkerCrashError(
                            "worker process died mid-cell "
                            "(killed, out-of-memory, or crashed)"
                        )
                        handle_outcome(future, index, exc, None)
                    else:
                        # Queued innocent — or collateral damage of a
                        # supervisor timeout kill: resubmit without
                        # charging an attempt.
                        waiting.append((now, index))
                supervisor_kill = False
                respawn()
    except BaseException:
        # An interrupt (SIGTERM/SIGINT via CampaignInterrupted) or an
        # engine bug is unwinding the campaign; without this, running
        # pool workers would survive the orchestrating process as
        # orphans still burning CPU on cells nobody will collect.
        _kill_pool_workers(pool)
        raise
    finally:
        pool.shutdown(wait=False)


@dataclass
class Campaign:
    """A named iterable of cells plus an optional reducer.

    ``run()`` executes the cells through :func:`execute_cells` and
    returns ``reducer(payloads)`` (or the raw payload list).  The
    stats of the latest run are kept on ``last_stats`` so callers —
    and the CI cache-hit smoke check — can assert hit/run counts.

    With a ``cache_dir``, the supervision artifacts land beside the
    cell cache by default: the JSONL event log, the campaign
    checkpoint, and the quarantine ledger (under
    ``<cache_dir>/quarantine``).
    """

    name: str
    cells: Tuple[CellSpec, ...]
    reducer: Optional[Callable[[List[Payload]], object]] = None
    last_stats: Optional[CampaignStats] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        self.cells = tuple(self.cells)

    def run(
        self,
        *,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        resume: bool = True,
        retries: int = 1,
        max_retries: Optional[int] = None,
        timeout: Optional[float] = None,
        quarantine_dir: Optional[Union[str, Path]] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 4,
        failure_mode: str = "raise",
        log_path: Optional[Union[str, Path]] = None,
        on_result: Optional[Callable] = None,
        hosts: Optional[str] = None,
    ):
        if hosts:
            # Distributed path: shard the cells across worker hosts via
            # the campaign service (``local:N`` spawns an ephemeral
            # localhost cluster; ``host:port`` submits to a running
            # orchestrator).  See docs/service.md.
            from .service import run_hosted

            payloads, stats = run_hosted(
                self.cells,
                hosts,
                name=self.name,
                cache_dir=cache_dir,
                workers=workers,
                timeout=timeout,
                max_retries=max_retries,
                resume=resume,
                failure_mode=failure_mode,
                log_path=log_path,
                on_result=on_result,
            )
            self.last_stats = stats
            return self.reducer(payloads) if self.reducer is not None else payloads
        cache = None
        if cache_dir is not None:
            cache = CellCache(cache_dir)
            safe = "".join(
                c if c.isalnum() or c in "-_" else "-" for c in self.name
            )
            if log_path is None:
                log_path = Path(cache_dir) / f"{safe}.events.jsonl"
            if checkpoint_path is None:
                checkpoint_path = Path(cache_dir) / f"{safe}.checkpoint.json"
            if quarantine_dir is None:
                quarantine_dir = Path(cache_dir) / "quarantine"
        quarantine = (
            QuarantineLedger(quarantine_dir) if quarantine_dir is not None else None
        )
        checkpoint = None
        if checkpoint_path is not None:
            checkpoint = CampaignCheckpoint(
                Path(checkpoint_path),
                salt=cache.salt if cache is not None else code_salt(),
                name=self.name,
            )
        payloads, stats = execute_cells(
            self.cells,
            workers=workers,
            cache=cache,
            resume=resume,
            retries=retries,
            max_retries=max_retries,
            timeout=timeout,
            quarantine=quarantine,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            failure_mode=failure_mode,
            log_path=log_path,
            name=self.name,
            on_result=on_result,
        )
        self.last_stats = stats
        return self.reducer(payloads) if self.reducer is not None else payloads
