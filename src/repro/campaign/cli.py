"""Shared campaign argparse flags.

Every experiment CLI builds its parser here, so an engine flag added
once (``--workers``, ``--cache-dir``, ``--resume``) lands in every
figure script at the same time instead of being re-declared per file.
"""

from __future__ import annotations

import argparse
from typing import Optional

from ..experiments.common import CANONICAL_INSTRUCTIONS


def add_campaign_args(
    parser: argparse.ArgumentParser,
    *,
    suite_cache: bool = False,
    instructions: bool = False,
) -> argparse.ArgumentParser:
    """Attach the shared engine flags to an existing parser."""
    group = parser.add_argument_group("campaign engine")
    group.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool fan-out (cells are independent and seeded)",
    )
    group.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed cell cache directory (enables caching, "
        "resume, and the JSONL progress log)",
    )
    group.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached cells (--no-resume recomputes and overwrites)",
    )
    group.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-cell wall-clock budget in seconds (enforced via "
        "process isolation; the offending worker is killed)",
    )
    group.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="total attempts per cell before it is quarantined "
        "(identical failures twice in a row quarantine immediately)",
    )
    group.add_argument(
        "--quarantine-dir",
        default=None,
        help="quarantine ledger directory (default: <cache-dir>/quarantine)",
    )
    if suite_cache:
        group.add_argument(
            "--cache",
            default=None,
            help="whole-suite records JSON produced by parsec-suite --out",
        )
    if instructions:
        group.add_argument(
            "--instructions", type=int, default=CANONICAL_INSTRUCTIONS
        )
    return parser


def campaign_argparser(
    description: Optional[str] = None,
    *,
    suite_cache: bool = False,
    instructions: bool = False,
    prog: Optional[str] = None,
) -> argparse.ArgumentParser:
    """A fresh parser pre-loaded with the shared engine flags."""
    parser = argparse.ArgumentParser(prog=prog, description=description)
    return add_campaign_args(
        parser, suite_cache=suite_cache, instructions=instructions
    )


def engine_options(args: argparse.Namespace) -> dict:
    """Extract engine kwargs from a parsed namespace."""
    return {
        "workers": args.workers,
        "cache_dir": args.cache_dir,
        "resume": args.resume,
        "timeout": args.timeout,
        "max_retries": args.max_retries,
        "quarantine_dir": args.quarantine_dir,
    }
