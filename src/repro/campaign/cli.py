"""Shared campaign argparse flags.

Every experiment CLI builds its parser here, so an engine flag added
once (``--workers``, ``--cache-dir``, ``--resume``) lands in every
figure script at the same time instead of being re-declared per file.
"""

from __future__ import annotations

import argparse
from typing import Optional

from ..experiments.common import CANONICAL_INSTRUCTIONS


def add_campaign_args(
    parser: argparse.ArgumentParser,
    *,
    suite_cache: bool = False,
    instructions: bool = False,
) -> argparse.ArgumentParser:
    """Attach the shared engine flags to an existing parser."""
    group = parser.add_argument_group("campaign engine")
    group.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool fan-out (cells are independent and seeded)",
    )
    group.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed cell cache directory (enables caching, "
        "resume, and the JSONL progress log)",
    )
    group.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached cells (--no-resume recomputes and overwrites)",
    )
    group.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-cell wall-clock budget in seconds (enforced via "
        "process isolation; the offending worker is killed)",
    )
    group.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="total attempts per cell before it is quarantined "
        "(identical failures twice in a row quarantine immediately)",
    )
    group.add_argument(
        "--quarantine-dir",
        default=None,
        help="quarantine ledger directory (default: <cache-dir>/quarantine)",
    )
    group.add_argument(
        "--hosts",
        default=None,
        help="run the campaign on the distributed service instead of "
        "the in-process pool: 'local:N' spins up an ephemeral "
        "N-worker cluster on this machine, 'HOST:PORT' submits to "
        "a running 'repro.cli serve' orchestrator (results are "
        "bit-identical either way; see docs/service.md)",
    )
    group.add_argument(
        "--topology",
        choices=("mesh", "torus", "ring"),
        default="mesh",
        help="network fabric for the campaign (experiments that only "
        "reproduce mesh figures reject non-mesh values)",
    )
    if suite_cache:
        group.add_argument(
            "--cache",
            default=None,
            help="whole-suite records JSON produced by parsec-suite --out",
        )
    if instructions:
        group.add_argument(
            "--instructions", type=int, default=CANONICAL_INSTRUCTIONS
        )
    return parser


def add_robustness_args(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the graceful-degradation override flags to a parser.

    These mirror the global ``repro.cli`` front-door flags for
    experiment scripts invoked directly.  Apply the parsed values with
    :func:`apply_robustness_args` (and ``clear_ambient`` in a
    ``finally``): they merge into the process-wide ambient config, so
    they affect networks built in this process — campaign cells that
    must carry robustness settings across process-pool workers encode
    them in the cell's ``NoCConfig`` instead (see the ``reliability``
    cell kind).
    """
    group = parser.add_argument_group("robustness")
    group.add_argument(
        "--degradation",
        choices=("none", "drop", "reroute", "fail_fast"),
        default=None,
        help="graceful-degradation mode override for every network "
        "built by this process (see docs/fault_model.md)",
    )
    group.add_argument(
        "--reroute",
        action="store_true",
        help="shorthand for --degradation reroute",
    )
    group.add_argument(
        "--dead-router-threshold",
        type=int,
        default=None,
        help="continuously stalled cycles before a router is declared "
        "permanently dead",
    )
    return parser


def apply_robustness_args(args: argparse.Namespace) -> bool:
    """Merge parsed robustness flags into the ambient configuration.

    Returns True when anything was staged (the caller owns the
    matching ``clear_ambient``); existing ambient state — e.g. a
    ``--faults`` schedule staged by the ``repro.cli`` front door — is
    preserved.
    """
    from ..noc.faults import ambient_config, set_ambient

    degradation = "reroute" if getattr(args, "reroute", False) else None
    if degradation is None:
        degradation = getattr(args, "degradation", None)
    threshold = getattr(args, "dead_router_threshold", None)
    if degradation is None and threshold is None:
        return False
    (
        spec,
        strict,
        watchdog,
        ambient_degradation,
        ambient_threshold,
        bounds,
    ) = ambient_config()
    set_ambient(
        spec,
        strict,
        watchdog,
        degradation if degradation is not None else ambient_degradation,
        threshold if threshold is not None else ambient_threshold,
        bounds,
    )
    return True


def add_guarantees_args(
    parser: argparse.ArgumentParser,
    *,
    bounds: bool = True,
    sprt: bool = True,
) -> argparse.ArgumentParser:
    """Attach the guarantees-layer flags to a parser.

    Mirrors :func:`add_robustness_args`: ``--bounds`` merges into the
    process-wide ambient config via :func:`apply_guarantees_args` (so
    every network built in-process gets a strict
    :class:`repro.guarantees.BoundChecker`), while the ``--sprt``
    family parameterizes sequential statistical model checking and is
    read back with :func:`sprt_options`.  Experiments that sample
    faulted networks pass ``bounds=False`` — bounds certify fault-free
    runs only.
    """
    group = parser.add_argument_group("guarantees")
    if bounds:
        group.add_argument(
            "--bounds",
            action="store_true",
            help="enforce certified worst-case latency bounds on every "
            "network built by this process (strict: the first "
            "violating packet raises; see docs/guarantees.md)",
        )
    if sprt:
        group.add_argument(
            "--sprt",
            action="store_true",
            help="sequential probability ratio test mode: stop sampling "
            "as soon as the delivery-probability hypothesis is "
            "accepted or rejected instead of burning the full "
            "--samples budget",
        )
        group.add_argument(
            "--sprt-p0",
            type=float,
            default=0.9,
            help="null hypothesis: P(clean trial) >= p0 (accept)",
        )
        group.add_argument(
            "--sprt-p1",
            type=float,
            default=0.6,
            help="alternative hypothesis: P(clean trial) <= p1 (reject); "
            "must be < p0",
        )
        group.add_argument(
            "--sprt-alpha",
            type=float,
            default=0.05,
            help="bound on the false-rejection probability",
        )
        group.add_argument(
            "--sprt-beta",
            type=float,
            default=0.05,
            help="bound on the false-acceptance probability",
        )
        group.add_argument(
            "--sprt-batch",
            type=int,
            default=8,
            help="trials declared per sequential round (larger batches "
            "parallelize better, smaller ones stop earlier)",
        )
    return parser


def apply_guarantees_args(args: argparse.Namespace) -> bool:
    """Merge a parsed ``--bounds`` flag into the ambient configuration.

    Returns True when staged (the caller owns the matching
    ``clear_ambient``); existing ambient state is preserved, exactly
    like :func:`apply_robustness_args`.
    """
    from ..noc.faults import ambient_config, set_ambient

    if not getattr(args, "bounds", False):
        return False
    spec, strict, watchdog, degradation, threshold, _bounds = ambient_config()
    set_ambient(spec, strict, watchdog, degradation, threshold, True)
    return True


def sprt_options(args: argparse.Namespace) -> dict:
    """Extract the SPRT parameters from a parsed namespace."""
    return {
        "p0": args.sprt_p0,
        "p1": args.sprt_p1,
        "alpha": args.sprt_alpha,
        "beta": args.sprt_beta,
        "batch": args.sprt_batch,
    }


def require_mesh_topology(args: argparse.Namespace, what: str) -> None:
    """Reject ``--topology`` values a mesh-only experiment cannot honor.

    The paper's punch-scheme figures are defined on the 2D mesh (the
    punch-target decomposition is XY-specific), so their campaign
    scripts fail fast with an actionable message instead of crashing
    deep inside scheme attachment.
    """
    topology = getattr(args, "topology", "mesh")
    if topology != "mesh":
        raise SystemExit(
            f"{what} reproduces mesh-only paper figures and does not "
            f"support --topology {topology}; use the 'topologies' "
            "experiment for cross-fabric comparisons"
        )


def campaign_argparser(
    description: Optional[str] = None,
    *,
    suite_cache: bool = False,
    instructions: bool = False,
    prog: Optional[str] = None,
) -> argparse.ArgumentParser:
    """A fresh parser pre-loaded with the shared engine flags."""
    parser = argparse.ArgumentParser(prog=prog, description=description)
    return add_campaign_args(
        parser, suite_cache=suite_cache, instructions=instructions
    )


def engine_options(args: argparse.Namespace) -> dict:
    """Extract engine kwargs from a parsed namespace."""
    return {
        "workers": args.workers,
        "cache_dir": args.cache_dir,
        "resume": args.resume,
        "timeout": args.timeout,
        "max_retries": args.max_retries,
        "quarantine_dir": args.quarantine_dir,
        "hosts": getattr(args, "hosts", None),
    }
