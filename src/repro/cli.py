"""Command-line entry point: ``python -m repro.cli <command>``.

One front door for every harness in the repository::

    python -m repro.cli table1
    python -m repro.cli parsec-suite --out results/parsec.json
    python -m repro.cli fig7-fig8 --cache results/parsec.json
    python -m repro.cli fig12 --patterns uniform_random
    python -m repro.cli ablations
    python -m repro.cli baselines
    python -m repro.cli all --out results/

``repro.cli all`` regenerates the complete evaluation in one go (this
is the long way to reproduce EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .experiments import (
    ablations,
    headline,
    baselines_compare,
    fig7_fig8,
    fig9_fig10,
    fig11,
    fig12,
    fig13,
    parsec_suite,
    scalability,
    table1,
)

_COMMANDS = {
    "table1": table1.main,
    "parsec-suite": parsec_suite.main,
    "fig7-fig8": fig7_fig8.main,
    "fig9-fig10": fig9_fig10.main,
    "fig11": fig11.main,
    "fig12": fig12.main,
    "fig13": fig13.main,
    "scalability": scalability.main,
    "ablations": ablations.main,
    "baselines": baselines_compare.main,
    "headline": headline.main,
}


def _run_all(argv: Sequence[str]) -> None:
    parser = argparse.ArgumentParser(prog="repro.cli all")
    parser.add_argument("--out", default="results")
    parser.add_argument("--instructions", type=int, default=2000)
    args = parser.parse_args(argv)
    cache = f"{args.out}/parsec_suite.json"
    parsec_suite.main(["--out", cache, "--instructions", str(args.instructions)])
    for name, main in (
        ("fig7-fig8", fig7_fig8.main),
        ("fig9-fig10", fig9_fig10.main),
        ("fig11", fig11.main),
        ("headline", headline.main),
    ):
        print(f"\n==== {name} ====")
        main(["--cache", cache])
    for name, main in (
        ("table1", table1.main),
        ("fig12", fig12.main),
        ("fig13", fig13.main),
        ("scalability", scalability.main),
        ("ablations", ablations.main),
        ("baselines", baselines_compare.main),
    ):
        print(f"\n==== {name} ====")
        main([])


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Dispatch a CLI command (see module docstring for the list)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("commands:", ", ".join(sorted(_COMMANDS)), ", all")
        return
    command, rest = argv[0], argv[1:]
    if command == "all":
        _run_all(rest)
        return
    try:
        runner = _COMMANDS[command]
    except KeyError:
        raise SystemExit(
            f"unknown command {command!r}; available: {sorted(_COMMANDS)} + ['all']"
        )
    runner(rest)


if __name__ == "__main__":
    main()
