"""Command-line entry point: ``python -m repro.cli <command>``.

One front door for every harness in the repository::

    python -m repro.cli table1
    python -m repro.cli parsec-suite --out results/parsec.json
    python -m repro.cli fig7-fig8 --cache results/parsec.json
    python -m repro.cli fig12 --patterns uniform_random
    python -m repro.cli ablations
    python -m repro.cli baselines
    python -m repro.cli all --out results/

``repro.cli all`` regenerates the complete evaluation in one go (this
is the long way to reproduce EXPERIMENTS.md).  Every experiment runs
through the campaign engine (``docs/campaigns.md``): ``--workers N``
fans independent cells out over a process pool, ``--cache-dir`` keeps
a content-addressed cell cache so re-runs recompute only invalidated
cells, and ``--resume`` (default) lets an interrupted ``all`` pick up
where it stopped::

    python -m repro.cli all --out results/ --workers 4
    python -m repro.cli all --out results/ --workers 4   # warm: 0 cells re-run

Execution is supervised (``docs/resilience.md``): ``--timeout SECS``
bounds each cell's wall clock, ``--max-retries N`` caps attempts
before a cell is quarantined, and ``--quarantine-dir`` relocates the
persistent quarantine ledger (default: ``<cache-dir>/quarantine``).
Worker crashes (OOM kills, segfaults) are isolated and the pool is
respawned; a ``kill -9``'d campaign resumes from its checkpoint.

Robustness flags (before the command; see ``docs/fault_model.md``)::

    python -m repro.cli --strict-invariants headline
    python -m repro.cli --faults "punch_drop,rate=0.5;seed=7" fig12
    python -m repro.cli --strict-invariants --watchdog 50000 baselines
    python -m repro.cli --reroute --faults "router_stall,router=27" fig12
    python -m repro.cli --degradation drop --dead-router-threshold 500 fig13

``--faults`` injects a deterministic fault schedule into every network
the experiment builds; ``--strict-invariants`` runs the per-cycle
invariant checker and deadlock watchdog (bound adjustable with
``--watchdog``), aborting on the first violation.  ``--degradation``
overrides every network's graceful-degradation mode (``none``,
``drop``, ``reroute``, ``fail_fast``; ``--reroute`` is shorthand for
``--degradation reroute``) and ``--dead-router-threshold`` the number
of continuously stalled cycles before a router is declared dead.

Monte-Carlo reliability campaigns (``docs/resilience.md``)::

    python -m repro.cli reliability --samples 200 --workers 4
    python -m repro.cli reliability --sprt --samples 200   # sequential

Guarantees mode (``docs/guarantees.md``)::

    python -m repro.cli guarantees --certify-only
    python -m repro.cli guarantees --loads 0.02 0.2 --out bounds.json
    python -m repro.cli --bounds fig12

``--bounds`` (before the command, like the robustness flags) installs
a strict latency-bound checker on every network the experiment builds:
the first delivered packet to exceed its certified worst-case bound
raises a structured ``BoundViolationError``.  Bounds certify the
fault-free pipeline, so ``--bounds`` and ``--faults`` are mutually
exclusive.

Distributed campaigns (``docs/service.md``)::

    python -m repro.cli serve --cache-dir results/cellcache --port 8765
    python -m repro.cli work --connect 127.0.0.1:8765 --capacity 4
    python -m repro.cli reliability --samples 200 --hosts 127.0.0.1:8765
    python -m repro.cli fig12 --hosts local:3        # ephemeral cluster

``serve`` runs the sharded orchestrator (leases, heartbeats,
work-stealing; results land in its ``--cache-dir`` store); ``work``
attaches a worker host.  ``--hosts`` on any campaign command routes
that campaign through the service — ``local:N`` stands up an
ephemeral N-worker cluster just for the run.  Results are
bit-identical to single-host execution either way.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence, Tuple

from .noc.faults import clear_ambient, set_ambient

from .experiments import (
    ablations,
    headline,
    baselines_compare,
    fig7_fig8,
    fig9_fig10,
    fig11,
    fig12,
    fig13,
    guarantees,
    parsec_suite,
    reliability,
    scalability,
    table1,
    topologies,
)

_COMMANDS = {
    "table1": table1.main,
    "parsec-suite": parsec_suite.main,
    "fig7-fig8": fig7_fig8.main,
    "fig9-fig10": fig9_fig10.main,
    "fig11": fig11.main,
    "fig12": fig12.main,
    "fig13": fig13.main,
    "scalability": scalability.main,
    "ablations": ablations.main,
    "baselines": baselines_compare.main,
    "guarantees": guarantees.main,
    "headline": headline.main,
    "reliability": reliability.main,
    "topologies": topologies.main,
}

#: Valid values for the global ``--degradation`` override.
_DEGRADATION_MODES = ("none", "drop", "reroute", "fail_fast")


def _run_all(argv: Sequence[str]) -> None:
    from .campaign import campaign_argparser
    from .experiments.common import CANONICAL_INSTRUCTIONS

    parser = campaign_argparser(prog="repro.cli all")
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--instructions", type=int, default=CANONICAL_INSTRUCTIONS
    )
    args = parser.parse_args(argv)
    cache = f"{args.out}/parsec_suite.json"
    # One shared cell cache under the output directory unless the user
    # pointed somewhere else: every figure below reuses (and resumes
    # from) the same content-addressed cells.
    cache_dir = args.cache_dir or f"{args.out}/cellcache"
    engine_flags = ["--workers", str(args.workers), "--cache-dir", cache_dir]
    if not args.resume:
        engine_flags.append("--no-resume")
    # Supervision flags propagate to every sub-command of the full run.
    if args.timeout is not None:
        engine_flags += ["--timeout", str(args.timeout)]
    engine_flags += ["--max-retries", str(args.max_retries)]
    if args.quarantine_dir is not None:
        engine_flags += ["--quarantine-dir", args.quarantine_dir]
    parsec_suite.main(
        ["--out", cache, "--instructions", str(args.instructions)] + engine_flags
    )
    for name, main in (
        ("fig7-fig8", fig7_fig8.main),
        ("fig9-fig10", fig9_fig10.main),
        ("fig11", fig11.main),
        ("headline", headline.main),
    ):
        print(f"\n==== {name} ====")
        main(["--cache", cache])
    for name, main in (
        ("table1", table1.main),
        ("fig12", fig12.main),
        ("fig13", fig13.main),
        ("scalability", scalability.main),
        ("ablations", ablations.main),
        ("baselines", baselines_compare.main),
        ("topologies", topologies.main),
    ):
        print(f"\n==== {name} ====")
        main(list(engine_flags))


def _serve(argv: Sequence[str]) -> None:
    """Run the campaign-service orchestrator until interrupted."""
    import argparse
    import asyncio

    from .campaign.service import FilesystemStore, MemoryStore, Orchestrator
    from .campaign.service import orchestrator as orchestrator_defaults

    parser = argparse.ArgumentParser(
        prog="repro.cli serve",
        description="campaign-service orchestrator (see docs/service.md)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="filesystem result store (shared with single-host runs); "
        "omitting it keeps results in memory only",
    )
    parser.add_argument(
        "--lease-duration",
        type=float,
        default=orchestrator_defaults.LEASE_DURATION,
        help="seconds a granted cell stays leased without renewal",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=orchestrator_defaults.HEARTBEAT_INTERVAL,
        help="seconds between worker heartbeats (each renews its leases)",
    )
    parser.add_argument(
        "--miss-limit",
        type=int,
        default=orchestrator_defaults.MISS_LIMIT,
        help="consecutive missed heartbeats before a host is declared dead",
    )
    parser.add_argument(
        "--log-path",
        default=None,
        help="orchestrator JSONL event log (default: "
        "<cache-dir>/service.events.jsonl when --cache-dir is set)",
    )
    args = parser.parse_args(argv)
    store = (
        FilesystemStore(args.cache_dir)
        if args.cache_dir is not None
        else MemoryStore()
    )
    log_path = args.log_path
    if log_path is None and args.cache_dir is not None:
        log_path = f"{args.cache_dir}/service.events.jsonl"
    service = Orchestrator(
        store,
        host=args.host,
        port=args.port,
        lease_duration=args.lease_duration,
        heartbeat_interval=args.heartbeat_interval,
        miss_limit=args.miss_limit,
        log_path=log_path,
    )

    async def _run() -> None:
        await service.start()
        print(
            f"[serve] orchestrator on {service.address} "
            f"(salt {store.salt[:12]}..., lease {service.lease_duration}s, "
            f"heartbeat {service.heartbeat_interval}s)"
        )
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("[serve] stopped")


def _work(argv: Sequence[str]) -> None:
    """Run a worker host attached to an orchestrator."""
    from .campaign.service.worker import main as worker_main

    worker_main(list(argv))


def _split_robustness_flags(
    argv: List[str],
) -> Tuple[List[str], Optional[str], bool, Optional[int], Optional[str], Optional[int]]:
    """Extract the global robustness flags (``--faults``,
    ``--strict-invariants``, ``--watchdog``, ``--degradation`` /
    ``--reroute``, ``--dead-router-threshold``, ``--bounds``; valid
    anywhere before the command) from ``argv``."""
    rest: List[str] = []
    fault_spec: Optional[str] = None
    strict = False
    watchdog: Optional[int] = None
    degradation: Optional[str] = None
    dead_threshold: Optional[int] = None
    bounds = False

    def parse_int(flag: str, value: str) -> int:
        try:
            return int(value)
        except ValueError:
            raise SystemExit(f"{flag} expects an integer, got {value!r}")

    valued = ("--faults", "--watchdog", "--degradation", "--dead-router-threshold")
    i = 0
    while i < len(argv):
        arg = argv[i]
        if rest:  # past the command: everything belongs to the subcommand
            rest.append(arg)
        elif arg == "--strict-invariants":
            strict = True
        elif arg == "--bounds":
            bounds = True
        elif arg == "--reroute":
            degradation = "reroute"
        elif arg in valued or (
            arg.startswith("--") and arg.split("=", 1)[0] in valued
        ):
            flag, sep, value = arg.partition("=")
            if not sep:
                if i + 1 >= len(argv):
                    raise SystemExit(f"{flag} requires a value")
                value = argv[i + 1]
                i += 1
            if flag == "--faults":
                fault_spec = value
            elif flag == "--watchdog":
                watchdog = parse_int(flag, value)
            elif flag == "--degradation":
                if value not in _DEGRADATION_MODES:
                    raise SystemExit(
                        f"--degradation expects one of {_DEGRADATION_MODES}, "
                        f"got {value!r}"
                    )
                degradation = value
            else:
                dead_threshold = parse_int(flag, value)
        else:
            rest.append(arg)
        i += 1
    return rest, fault_spec, strict, watchdog, degradation, dead_threshold, bounds


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Dispatch a CLI command (see module docstring for the list)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    argv, fault_spec, strict, watchdog, degradation, dead_threshold, bounds = (
        _split_robustness_flags(argv)
    )
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("commands:", ", ".join(sorted(_COMMANDS)), ", all, serve, work")
        return
    command, rest = argv[0], argv[1:]
    robustness = (
        fault_spec is not None
        or strict
        or degradation is not None
        or dead_threshold is not None
        or bounds
    )
    if robustness:
        set_ambient(
            fault_spec, strict, watchdog, degradation, dead_threshold, bounds
        )
        notice = []
        if fault_spec is not None:
            notice.append(f"fault schedule {fault_spec!r}")
        if strict:
            notice.append("strict invariant checking")
        if degradation is not None:
            notice.append(f"degradation={degradation}")
        if dead_threshold is not None:
            notice.append(f"dead-router threshold {dead_threshold}")
        if bounds:
            notice.append("certified latency bounds (strict)")
        print(f"[robustness] {', '.join(notice)} enabled for all networks")
    try:
        if command == "all":
            _run_all(rest)
            return
        if command == "serve":
            _serve(rest)
            return
        if command == "work":
            _work(rest)
            return
        try:
            runner = _COMMANDS[command]
        except KeyError:
            raise SystemExit(
                f"unknown command {command!r}; available: "
                f"{sorted(_COMMANDS)} + ['all', 'serve', 'work']"
            )
        runner(rest)
    finally:
        if robustness:
            clear_ambient()


if __name__ == "__main__":
    main()
