"""Terminal visualization helpers.

Text renderings of per-router and per-link quantities on the fabric —
handy for eyeballing where power-gating actually happens (gated-off
fraction per router), where traffic concentrates (link utilization) and
where packets get blocked.  Everything returns plain strings so it
composes with the experiment harnesses and tests.

Heatmaps lay nodes out on the topology's ``(width, height)`` coordinate
grid (meshes and tori render as the familiar WxH block; a ring renders
as one row), so they work for every registered topology.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from .core.schemes import PowerGatedScheme
from .noc.network import Network
from .noc.topology import Topology

#: Shade ramp from empty to full.
_RAMP = " .:-=+*#%@"


def shade(value: float) -> str:
    """Map [0, 1] to a one-character shade."""
    value = min(1.0, max(0.0, value))
    return _RAMP[min(len(_RAMP) - 1, int(value * len(_RAMP)))]


def node_heatmap(
    topology: Topology,
    values: Sequence[float],
    title: str = "",
    fmt: Callable[[float], str] = lambda v: f"{v:4.2f}",
) -> str:
    """Render per-node values on the topology's coordinate grid."""
    if len(values) != topology.num_nodes:
        raise ValueError("need one value per node")
    width, height = topology.shape
    peak = max(values) or 1.0
    lines = [title] if title else []
    for y in range(height):
        shades = []
        numbers = []
        for x in range(width):
            v = values[topology.node_at(x, y)]
            shades.append(shade(v / peak) * 4)
            numbers.append(fmt(v))
        lines.append(" ".join(shades))
        lines.append(" ".join(n.rjust(4) for n in numbers))
    return "\n".join(lines)


#: Back-compat name from when the mesh was the only fabric.
mesh_heatmap = node_heatmap


def gated_fraction_map(network: Network, title: str = "Gated-off fraction") -> str:
    """Heatmap of each router's gated-off time fraction."""
    policy = network.policy
    if not isinstance(policy, PowerGatedScheme):
        values = [0.0] * network.config.num_nodes
    else:
        values = []
        for ctl in policy.controllers:
            total = ctl.active_cycles + ctl.off_cycles + ctl.waking_cycles
            values.append(ctl.off_cycles / total if total else 0.0)
    return node_heatmap(network.topology, values, title=title)


def wake_events_map(network: Network, title: str = "Wake events") -> str:
    """Heatmap of wake events per router."""
    policy = network.policy
    if not isinstance(policy, PowerGatedScheme):
        values = [0.0] * network.config.num_nodes
    else:
        values = [float(ctl.wake_events) for ctl in policy.controllers]
    return node_heatmap(
        network.topology, values, title=title, fmt=lambda v: f"{int(v):4d}"
    )


def link_load_map(network: Network, title: str = "Router forwarding load") -> str:
    """Heatmap of flits forwarded per router (all output directions)."""
    cycles = max(1, network.cycle)
    values = [
        sum(counts.values()) / cycles for counts in network.link_counts
    ]
    return node_heatmap(network.topology, values, title=title)


def latency_histogram(
    latencies: Sequence[int], bins: int = 12, width: int = 50, title: str = ""
) -> str:
    """ASCII histogram of packet latencies (needs stats.keep_samples)."""
    if not latencies:
        return "(no samples)"
    lo, hi = min(latencies), max(latencies)
    span = max(1, hi - lo)
    counts = [0] * bins
    for value in latencies:
        idx = min(bins - 1, (value - lo) * bins // span)
        counts[idx] += 1
    peak = max(counts)
    lines = [title] if title else []
    for i, count in enumerate(counts):
        left = lo + i * span // bins
        right = lo + (i + 1) * span // bins
        bar = "#" * (count * width // peak if peak else 0)
        lines.append(f"{left:5d}-{right:<5d} |{bar} {count}")
    return "\n".join(lines)


def scheme_comparison_bars(
    rows: Dict[str, float], width: int = 50, title: str = "", unit: str = ""
) -> str:
    """Horizontal bars comparing one metric across schemes."""
    peak = max(rows.values()) or 1.0
    label_width = max(len(k) for k in rows)
    lines = [title] if title else []
    for name, value in rows.items():
        bar = "#" * int(value / peak * width)
        lines.append(f"{name.ljust(label_width)} |{bar} {value:.2f}{unit}")
    return "\n".join(lines)
