"""Power Punch core: punch encoding, punch fabric and the evaluated schemes."""

from .punch_encoding import LinkEncoding, PunchEncodingAnalysis
from .punch_fabric import PunchFabric
from .schemes import (
    ConvOptPG,
    NoPG,
    PowerGatedScheme,
    PowerPunchPG,
    PowerPunchSignal,
)

__all__ = [
    "ConvOptPG",
    "LinkEncoding",
    "NoPG",
    "PowerGatedScheme",
    "PowerPunchPG",
    "PowerPunchSignal",
    "PunchEncodingAnalysis",
    "PunchFabric",
]
