"""Cycle-level punch-signal fabric.

The paper's punch signals are narrow, always-on control wires running
alongside every mesh link (Fig. 5).  Each cycle a router's power-gating
controller merges the wakeup signals it generates locally with the
punch signals arriving from neighbors and relays the result — purely
combinationally, so a punch crosses one link per cycle with **zero
contention delay** (Sec. 4.1 step 5).

This module simulates the fabric at the information level: each link
carries the *set of targeted routers* the encoded punch signal denotes.
:mod:`repro.core.punch_encoding` separately proves that these sets fit
into the paper's 5-bit (X) and 2-bit (Y) encodings.

Every punch that reaches a controller — as final target or as a relay
hop — wakes that router if it is gated off and forewarns it that a
packet arrives within the punch horizon (implicit notification of
intermediate routers, Sec. 4.1 step 2).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Set, Tuple

from ..noc.errors import SimulationError
from ..noc.routing import XYRouting

#: Signature of the controller-side punch sink: (router_id, cycle).
PunchSink = Callable[[int, int], None]


class PunchFabric:
    """Contention-free multi-hop wakeup-signal network."""

    def __init__(self, routing: XYRouting, on_punch: PunchSink) -> None:
        self.routing = routing
        self.num_nodes = routing.topology.num_nodes
        #: Controller callback invoked for every router a punch touches.
        self.on_punch = on_punch
        #: Targets to be processed by each router at the *next* delivery.
        self._pending: Dict[int, Set[int]] = {}
        #: Punches a fault delayed, keyed by their new delivery cycle.
        self._delayed: Dict[int, List[Tuple[int, Set[int]]]] = {}
        #: Optional :class:`repro.noc.faults.FaultInjector` consulted at
        #: every per-router punch-processing step.
        self.faults = None
        #: Memoize the relay decomposition per (router, target set).
        #: XY routing is static, and a head flit stalled (or streaming)
        #: at the same router regenerates the identical punch every
        #: cycle, so the split into locally-delivered targets and
        #: per-neighbor relay sets repeats constantly.  Behavior-exact;
        #: enabled by the scheme only under the active-set kernel so
        #: the naive kernel keeps seed cost.
        self.memoize = False
        self._route_cache: Dict[Tuple[int, frozenset], tuple] = {}
        # --- statistics ---------------------------------------------------
        #: Link-cycles on which a (merged) punch signal was transmitted;
        #: feeds the punch-propagation energy overhead of Fig. 11.
        self.link_transmissions = 0
        #: Total targets delivered to their final router.
        self.targets_delivered = 0
        #: Punch-processing steps lost or deferred to faults.
        self.faulted_punches = 0

    # ------------------------------------------------------------------
    def send_local(self, router: int, targets: Iterable[int], cycle: int) -> None:
        """Process locally generated wakeup targets at ``router``.

        The local controller reacts in the same cycle (the punch wires
        are driven combinationally from the router's own wakeup
        requirements); relayed targets reach each neighbor one cycle
        later.
        """
        if self.memoize and self.faults is None:
            # Hot path: ``_process`` inlined, as in :meth:`deliver`.
            if type(targets) is not frozenset:
                targets = frozenset(targets)
            key = (router, targets)
            entry = self._route_cache.get(key)
            if entry is None:
                entry = self._route_cache[key] = self._decompose(
                    router, targets, cycle
                )
            delivered, relays = entry
            self.targets_delivered += delivered
            if delivered or relays:
                self.on_punch(router, cycle)
            pending = self._pending
            for nxt, tset in relays:
                self.link_transmissions += 1
                bucket = pending.get(nxt)
                if bucket is None:
                    pending[nxt] = tset
                else:
                    pending[nxt] = bucket | tset
            return
        self._process(router, targets, cycle)

    def deliver(self, cycle: int) -> None:
        """Deliver last cycle's relayed punches to their next routers."""
        delayed = self._delayed.pop(cycle, None)
        if delayed:
            for router, targets in delayed:
                # Fault-exempt: a punch suffers at most one fault per hop,
                # otherwise a delay/dup rule at rate 1.0 would defer (or
                # duplicate) the same punch forever.
                self._process(router, targets, cycle, faultable=False)
        if not self._pending:
            return
        pending, self._pending = self._pending, {}
        if self.memoize and self.faults is None:
            # Hot path: the per-router processing of ``_process`` inlined
            # (same order, same effects) — one call layer fewer for every
            # wavefront hop, every cycle.
            cache = self._route_cache
            on_punch = self.on_punch
            new_pending = self._pending
            for router, targets in pending.items():
                if type(targets) is not frozenset:
                    targets = frozenset(targets)
                key = (router, targets)
                entry = cache.get(key)
                if entry is None:
                    entry = cache[key] = self._decompose(router, targets, cycle)
                delivered, relays = entry
                self.targets_delivered += delivered
                if delivered or relays:
                    on_punch(router, cycle)
                for nxt, tset in relays:
                    self.link_transmissions += 1
                    bucket = new_pending.get(nxt)
                    if bucket is None:
                        new_pending[nxt] = tset
                    else:
                        new_pending[nxt] = bucket | tset
            return
        for router, targets in pending.items():
            self._process(router, targets, cycle)

    def pending_routers(self) -> List[int]:
        """Routers with punch targets awaiting next-cycle delivery."""
        return list(self._pending)

    def pending_work(self) -> int:
        """Punch deliveries still queued (pending relays + delayed)."""
        return len(self._pending) + sum(len(v) for v in self._delayed.values())

    # ------------------------------------------------------------------
    def _process(
        self, router: int, targets: Iterable[int], cycle: int, faultable: bool = True
    ) -> None:
        """Wake ``router`` and relay every non-final target onward."""
        if self.faults is not None and faultable:
            action, delay = self.faults.punch_disposition(router, cycle)
            if action == "drop":
                # The punch vanishes at this hop: it neither wakes this
                # router nor relays onward.
                self.faulted_punches += 1
                return
            if action == "delay":
                self.faulted_punches += 1
                self._delayed.setdefault(cycle + delay, []).append(
                    (router, set(targets))
                )
                return
            if action == "dup":
                # Processed normally now, and again next cycle.
                self.faulted_punches += 1
                self._delayed.setdefault(cycle + 1, []).append(
                    (router, set(targets))
                )
        if self.memoize:
            if type(targets) is not frozenset:
                targets = frozenset(targets)
            key = (router, targets)
            entry = self._route_cache.get(key)
            if entry is None:
                entry = self._route_cache[key] = self._decompose(
                    router, targets, cycle
                )
            delivered, relays = entry
            self.targets_delivered += delivered
            if delivered or relays:
                # Implicit notification: any punch arriving at or
                # passing through a router wakes it (Sec. 4.1 step 2).
                self.on_punch(router, cycle)
            pending = self._pending
            for nxt, tset in relays:
                self.link_transmissions += 1
                bucket = pending.get(nxt)
                if bucket is None:
                    # Frozensets flow through ``_pending`` unchanged
                    # (and un-copied) until a merge is needed, so the
                    # next hop's memo key needs no conversion either.
                    pending[nxt] = tset
                else:
                    pending[nxt] = bucket | tset
            return
        touched = False
        outgoing: Dict[int, Set[int]] = {}
        for target in targets:
            touched = True
            if target == router:
                self.targets_delivered += 1
                continue
            nxt = self.routing.next_hop(router, target)
            if nxt is None:
                raise SimulationError(
                    f"punch relay toward {target} has no next hop",
                    cycle=cycle, router=router,
                )
            outgoing.setdefault(nxt, set()).add(target)
        if touched:
            # Implicit notification: any punch arriving at or passing
            # through a router wakes it (Sec. 4.1 step 2).
            self.on_punch(router, cycle)
        for nxt, tset in outgoing.items():
            self.link_transmissions += 1
            bucket = self._pending.get(nxt)
            if bucket is None:
                self._pending[nxt] = tset
            else:
                bucket |= tset

    def _decompose(
        self, router: int, targets: Iterable[int], cycle: int
    ) -> Tuple[int, Tuple[Tuple[int, frozenset], ...]]:
        """Split ``targets`` at ``router`` into (locally delivered count,
        per-next-hop relay target sets) — a pure function of the static
        XY routing, safe to memoize."""
        delivered = 0
        outgoing: Dict[int, Set[int]] = {}
        for target in targets:
            if target == router:
                delivered += 1
                continue
            nxt = self.routing.next_hop(router, target)
            if nxt is None:
                raise SimulationError(
                    f"punch relay toward {target} has no next hop",
                    cycle=cycle, router=router,
                )
            outgoing.setdefault(nxt, set()).add(target)
        return delivered, tuple(
            (nxt, frozenset(tset)) for nxt, tset in outgoing.items()
        )
