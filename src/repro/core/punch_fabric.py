"""Cycle-level punch-signal fabric.

The paper's punch signals are narrow, always-on control wires running
alongside every mesh link (Fig. 5).  Each cycle a router's power-gating
controller merges the wakeup signals it generates locally with the
punch signals arriving from neighbors and relays the result — purely
combinationally, so a punch crosses one link per cycle with **zero
contention delay** (Sec. 4.1 step 5).

This module simulates the fabric at the information level: each link
carries the *set of targeted routers* the encoded punch signal denotes.
:mod:`repro.core.punch_encoding` separately proves that these sets fit
into the paper's 5-bit (X) and 2-bit (Y) encodings.

Every punch that reaches a controller — as final target or as a relay
hop — wakes that router if it is gated off and forewarns it that a
packet arrives within the punch horizon (implicit notification of
intermediate routers, Sec. 4.1 step 2).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Set, Tuple

from ..noc.routing import XYRouting

#: Signature of the controller-side punch sink: (router_id, cycle).
PunchSink = Callable[[int, int], None]


class PunchFabric:
    """Contention-free multi-hop wakeup-signal network."""

    def __init__(self, routing: XYRouting, on_punch: PunchSink) -> None:
        self.routing = routing
        self.num_nodes = routing.topology.num_nodes
        #: Controller callback invoked for every router a punch touches.
        self.on_punch = on_punch
        #: Targets to be processed by each router at the *next* delivery.
        self._pending: Dict[int, Set[int]] = {}
        #: Punches a fault delayed, keyed by their new delivery cycle.
        self._delayed: Dict[int, List[Tuple[int, Set[int]]]] = {}
        #: Optional :class:`repro.noc.faults.FaultInjector` consulted at
        #: every per-router punch-processing step.
        self.faults = None
        # --- statistics ---------------------------------------------------
        #: Link-cycles on which a (merged) punch signal was transmitted;
        #: feeds the punch-propagation energy overhead of Fig. 11.
        self.link_transmissions = 0
        #: Total targets delivered to their final router.
        self.targets_delivered = 0
        #: Punch-processing steps lost or deferred to faults.
        self.faulted_punches = 0

    # ------------------------------------------------------------------
    def send_local(self, router: int, targets: Iterable[int], cycle: int) -> None:
        """Process locally generated wakeup targets at ``router``.

        The local controller reacts in the same cycle (the punch wires
        are driven combinationally from the router's own wakeup
        requirements); relayed targets reach each neighbor one cycle
        later.
        """
        self._process(router, targets, cycle)

    def deliver(self, cycle: int) -> None:
        """Deliver last cycle's relayed punches to their next routers."""
        delayed = self._delayed.pop(cycle, None)
        if delayed:
            for router, targets in delayed:
                # Fault-exempt: a punch suffers at most one fault per hop,
                # otherwise a delay/dup rule at rate 1.0 would defer (or
                # duplicate) the same punch forever.
                self._process(router, targets, cycle, faultable=False)
        if not self._pending:
            return
        pending, self._pending = self._pending, {}
        for router, targets in pending.items():
            self._process(router, targets, cycle)

    def pending_routers(self) -> List[int]:
        """Routers with punch targets awaiting next-cycle delivery."""
        return list(self._pending)

    def pending_work(self) -> int:
        """Punch deliveries still queued (pending relays + delayed)."""
        return len(self._pending) + sum(len(v) for v in self._delayed.values())

    # ------------------------------------------------------------------
    def _process(
        self, router: int, targets: Iterable[int], cycle: int, faultable: bool = True
    ) -> None:
        """Wake ``router`` and relay every non-final target onward."""
        if self.faults is not None and faultable:
            action, delay = self.faults.punch_disposition(router, cycle)
            if action == "drop":
                # The punch vanishes at this hop: it neither wakes this
                # router nor relays onward.
                self.faulted_punches += 1
                return
            if action == "delay":
                self.faulted_punches += 1
                self._delayed.setdefault(cycle + delay, []).append(
                    (router, set(targets))
                )
                return
            if action == "dup":
                # Processed normally now, and again next cycle.
                self.faulted_punches += 1
                self._delayed.setdefault(cycle + 1, []).append(
                    (router, set(targets))
                )
        touched = False
        outgoing: Dict[int, Set[int]] = {}
        for target in targets:
            touched = True
            if target == router:
                self.targets_delivered += 1
                continue
            nxt = self.routing.next_hop(router, target)
            assert nxt is not None
            outgoing.setdefault(nxt, set()).add(target)
        if touched:
            # Implicit notification: any punch arriving at or passing
            # through a router wakes it (Sec. 4.1 step 2).
            self.on_punch(router, cycle)
        for nxt, tset in outgoing.items():
            self.link_transmissions += 1
            bucket = self._pending.get(nxt)
            if bucket is None:
                self._pending[nxt] = tset
            else:
                bucket |= tset
