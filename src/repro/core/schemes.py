"""The four evaluated power-management schemes (paper Sec. 5).

* :class:`NoPG` — baseline, routers always on.
* :class:`ConvOptPG` — conventional power-gating optimized with the
  idle timeout and the one-hop-early wakeup from look-ahead routing
  (the strongest conventional baseline the paper compares against).
* :class:`PowerPunchSignal` — Power Punch's multi-hop punch signals
  only (no NI slack): wakeup control information stays ``punch_hops``
  hops ahead of packets, merged contention-free.
* :class:`PowerPunchPG` — the comprehensive scheme: multi-hop punch
  signals plus both injection-node slacks of Sec. 4.2 (*slack 1*: punch
  at the start of the NI delay; *slack 2*: wake the local router when a
  resource access that will surely generate a packet begins).

All power-gated schemes share the same controller substrate
(:class:`repro.powergate.PowerGateController`) and differ only in when
wakeup information is generated and how far ahead it travels — exactly
the paper's framing.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..noc.network import Network
from ..noc.packet import Packet
from ..noc.policy import AlwaysOnPolicy, PowerPolicy
from ..powergate.controller import PowerGateController
from .punch_fabric import PunchFabric


class NoPG(AlwaysOnPolicy):
    """Baseline without power-gating."""

    name = "No-PG"


class PowerGatedScheme(PowerPolicy):
    """Shared machinery of all power-gated schemes."""

    name = "PG-base"

    def __init__(
        self,
        wakeup_latency: int = 8,
        timeout: int = 4,
        punch_hops: Optional[int] = None,
        use_forewarning: bool = False,
        slack1: bool = False,
        slack2: bool = False,
        slack2_window: int = 6,
    ) -> None:
        self.wakeup_latency = wakeup_latency
        self.timeout = timeout
        self._punch_hops = punch_hops
        #: Whether punch arrivals open a no-sleep forewarning window
        #: (Power Punch's accurate short-idle filtering, Sec. 4.3).
        self.use_forewarning = use_forewarning
        #: Send injection punches at message creation (start of NI delay).
        self.slack1 = slack1
        #: Honor early local-router notices from resource accesses.
        self.slack2 = slack2
        self.slack2_window = slack2_window
        self.controllers: List[PowerGateController] = []
        self.fabric: Optional[PunchFabric] = None
        self._slack2_hold: Dict[int, int] = {}
        #: Baseline blocking-wakeup fallback: when a flit is stalled by a
        #: gated neighbor, assert the one-hop WU handshake directly at
        #: that neighbor's controller.  Off by default (the punch fabric
        #: regenerates wakeups every cycle, making the handshake
        #: redundant and timing-perturbing); armed automatically when a
        #: fault injector is installed, so lost/late punch signals
        #: degrade to the paper's blocking behavior instead of hanging.
        self.blocking_fallback = False

    # ------------------------------------------------------------------
    def attach(self, network: Network) -> None:
        """Derive punch parameters and build controllers/fabric for a network."""
        self.network = network
        cfg = network.config
        if self._punch_hops is None:
            # Just enough hop slack to cover the wakeup latency:
            # a signal H hops ahead hides H * Trouter cycles (Sec. 3).
            self.punch_hops = max(1, math.ceil(self.wakeup_latency / cfg.router_stages))
        else:
            self.punch_hops = self._punch_hops
        self.expectation_window = (
            self.punch_hops * cfg.hop_latency if self.use_forewarning else 0
        )
        self.controllers = [
            PowerGateController(node, self.wakeup_latency, self.timeout)
            for node in range(cfg.num_nodes)
        ]
        self.fabric = PunchFabric(network.routing, self._on_punch)
        # Targeted-router lookups happen for every buffered head flit
        # every cycle; memoize per (current, destination) at the fixed
        # punch horizon.
        ahead_cache: Dict[tuple, int] = {}
        routing_ahead = network.routing.router_ahead
        hops = self.punch_hops

        def cached_ahead(current: int, destination: int, _hops: int) -> int:
            key = (current, destination)
            target = ahead_cache.get(key)
            if target is None:
                target = ahead_cache[key] = routing_ahead(
                    current, destination, hops
                )
            return target

        self._router_ahead = cached_ahead

    def _on_punch(self, router: int, cycle: int) -> None:
        self.controllers[router].request_wakeup(cycle, self.expectation_window)

    def on_faults_installed(self, injector) -> None:
        """Wire the injector into the punch fabric and every controller,
        and arm the blocking-wakeup fallback (graceful degradation)."""
        if self.fabric is not None:
            self.fabric.faults = injector
        for controller in self.controllers:
            controller.faults = injector
        self.blocking_fallback = True

    def note_blocked(self, router_id: int, next_router: int, packet, cycle: int) -> None:
        """A flit is stalled behind a gated-off/waking neighbor.

        With the fallback armed this asserts the conventional one-hop WU
        handshake at the blocking neighbor — retried every stalled cycle
        by construction, so even a fully dropped punch stream converges
        to the baseline blocking-wakeup path (bounded by the deadlock
        watchdog rather than a silent hang).
        """
        if self.blocking_fallback:
            self.controllers[next_router].request_wakeup(cycle, 0)

    # ------------------------------------------------------------------
    # Availability / state queries
    # ------------------------------------------------------------------
    def is_router_available(self, router_id: int) -> bool:
        """PG signal de-asserted for this router right now."""
        return self.controllers[router_id].is_available

    def is_router_available_by(self, router_id: int, by_cycle: int) -> bool:
        """Whether the router will be powered on at ``by_cycle`` (ETA check)."""
        return self.controllers[router_id].available_by(by_cycle)

    def router_is_off(self, router_id: int) -> bool:
        """Whether the router is currently gated off."""
        return self.controllers[router_id].is_off

    def router_is_waking(self, router_id: int) -> bool:
        """Whether the router is mid-wakeup (PG still asserted)."""
        return self.controllers[router_id].is_waking

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------
    def begin_cycle(self, cycle: int) -> None:
        """Deliver punches, apply slack-2 holds, step every controller FSM."""
        self.fabric.deliver(cycle)
        if self._slack2_hold:
            expired = []
            for node, until in self._slack2_hold.items():
                if cycle > until:
                    expired.append(node)
                else:
                    self.controllers[node].request_wakeup(cycle, 0)
            for node in expired:
                del self._slack2_hold[node]
        interfaces = self.network.interfaces
        routers = self.network.routers
        for node, controller in enumerate(self.controllers):
            ni_wants = interfaces[node].wants_local_router(cycle)
            if ni_wants:
                # The NI's WU wire into its local PG controller.
                controller.request_wakeup(cycle, 0)
            controller.step(cycle, routers[node].datapath_empty(), ni_wants)

    def end_cycle(self, cycle: int) -> None:
        # Punch/WU wires are combinational functions of the wakeup
        # requirements visible this cycle (Sec. 6.6(1)): regenerate them
        # from every buffered head flit and every pending injection.
        """Regenerate punch signals from this cycle's wakeup requirements."""
        ahead = self._router_ahead
        hops = self.punch_hops
        fabric = self.fabric
        for router in self.network.routers:
            if not router._occupied:
                continue
            requirements = router.head_flit_requirements()
            if not requirements:
                continue
            rid = router.router_id
            targets = {ahead(rid, dest, hops) for _next, dest in requirements}
            fabric.send_local(rid, targets, cycle)
        self._generate_injection_punches(cycle)

    def _generate_injection_punches(self, cycle: int) -> None:
        """Injection-side wakeup generation; scheme-specific."""

    # ------------------------------------------------------------------
    # NI hooks
    # ------------------------------------------------------------------
    def on_injection_check(self, node: int, packet: Packet, cycle: int) -> None:
        # Wakeup-issue point for schemes without NI slack: the packet
        # "encounters" a powered-off local router (Fig. 9 semantics) if
        # the router is not fully on when the NI checks availability,
        # even when the wakeup wait itself ends up partially hidden.
        """Record a blocked-router encounter at the availability check."""
        if not self.controllers[node].is_available:
            packet.blocked_routers.add(node)

    def early_local_notice(self, node: int, cycle: int) -> None:
        """Slack 2: wake/hold the local router ahead of a certain message."""
        if not self.slack2:
            return
        until = cycle + self.slack2_window
        if until > self._slack2_hold.get(node, -1):
            self._slack2_hold[node] = until
        self.controllers[node].request_wakeup(cycle, 0)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_off_cycles(self) -> int:
        """Sum of gated-off cycles across all routers."""
        return sum(c.off_cycles for c in self.controllers)

    def total_wake_events(self) -> int:
        """Total wakeup events across all routers."""
        return sum(c.wake_events for c in self.controllers)

    def currently_off(self) -> int:
        """Number of routers gated off right now."""
        return sum(1 for c in self.controllers if c.is_off)


class ConvOptPG(PowerGatedScheme):
    """Optimized conventional power-gating (timeout + early wakeup).

    Wakeup signals travel exactly one hop (the look-ahead routing
    early-wakeup of [Matsutani et al.]); there is no multi-hop punch,
    no forewarning window and no use of NI slack, so packets pay most
    of the wakeup latency whenever they run into gated-off routers.
    """

    name = "ConvOpt-PG"

    def __init__(self, wakeup_latency: int = 8, timeout: int = 4) -> None:
        super().__init__(
            wakeup_latency=wakeup_latency,
            timeout=timeout,
            punch_hops=1,
            use_forewarning=False,
            slack1=False,
            slack2=False,
        )

    def _generate_injection_punches(self, cycle: int) -> None:
        # Conventional PG only asserts the local WU when the NI checks
        # availability; that wire is already modeled in begin_cycle via
        # ``wants_local_router`` + ``request_wakeup``.
        return


class PowerPunchSignal(PowerGatedScheme):
    """Power Punch with multi-hop punch signals only (no NI slack)."""

    name = "PowerPunch-Signal"

    def __init__(
        self,
        wakeup_latency: int = 8,
        timeout: int = 4,
        punch_hops: Optional[int] = None,
    ) -> None:
        super().__init__(
            wakeup_latency=wakeup_latency,
            timeout=timeout,
            punch_hops=punch_hops,
            use_forewarning=True,
            slack1=False,
            slack2=False,
        )

    def _generate_injection_punches(self, cycle: int) -> None:
        # Punches for packets whose NI processing has completed (the
        # availability-check point of Fig. 6 — no slack exploited).
        ni_latency = self.network.config.ni_latency
        ahead = self._router_ahead
        hops = self.punch_hops
        for ni in self.network.interfaces:
            targets = None
            for queue in ni.queues:
                if queue:
                    packet = queue[0]
                    if cycle >= packet.created_at + ni_latency:
                        if targets is None:
                            targets = set()
                        targets.add(ahead(ni.node, packet.destination, hops))
            if targets:
                self.fabric.send_local(ni.node, targets, cycle)


class PowerPunchPG(PowerPunchSignal):
    """Comprehensive Power Punch: punch signals + injection-node slack."""

    name = "PowerPunch-PG"

    def __init__(
        self,
        wakeup_latency: int = 8,
        timeout: int = 4,
        punch_hops: Optional[int] = None,
        slack2_window: int = 6,
    ) -> None:
        PowerGatedScheme.__init__(
            self,
            wakeup_latency=wakeup_latency,
            timeout=timeout,
            punch_hops=punch_hops,
            use_forewarning=True,
            slack1=True,
            slack2=True,
            slack2_window=slack2_window,
        )

    def on_message_created(self, node: int, packet: Packet, cycle: int) -> None:
        # Slack-1 wakeup issue point: if the local router is not fully
        # on when the message enters the NI, the packet "encounters" a
        # powered-off router (Fig. 9 semantics) even though the NI
        # slack may hide most or all of the wakeup wait (Fig. 10).
        """Slack-1 wakeup-issue point: count powered-off encounters here."""
        if not self.controllers[node].is_available:
            packet.blocked_routers.add(node)

    def _generate_injection_punches(self, cycle: int) -> None:
        # Slack 1: wakeup information is available as soon as the
        # message enters the NI, so every queued packet punches —
        # including those still inside the NI pipeline (Fig. 6).
        ahead = self._router_ahead
        hops = self.punch_hops
        for ni in self.network.interfaces:
            targets = None
            for queue in ni.queues:
                for packet in queue:
                    if targets is None:
                        targets = set()
                    targets.add(ahead(ni.node, packet.destination, hops))
            if targets:
                self.fabric.send_local(ni.node, targets, cycle)
