"""The four evaluated power-management schemes (paper Sec. 5).

* :class:`NoPG` — baseline, routers always on.
* :class:`ConvOptPG` — conventional power-gating optimized with the
  idle timeout and the one-hop-early wakeup from look-ahead routing
  (the strongest conventional baseline the paper compares against).
* :class:`PowerPunchSignal` — Power Punch's multi-hop punch signals
  only (no NI slack): wakeup control information stays ``punch_hops``
  hops ahead of packets, merged contention-free.
* :class:`PowerPunchPG` — the comprehensive scheme: multi-hop punch
  signals plus both injection-node slacks of Sec. 4.2 (*slack 1*: punch
  at the start of the NI delay; *slack 2*: wake the local router when a
  resource access that will surely generate a packet begins).

All power-gated schemes share the same controller substrate
(:class:`repro.powergate.PowerGateController`) and differ only in when
wakeup information is generated and how far ahead it travels — exactly
the paper's framing.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from ..noc.errors import UnsupportedTopologyError
from ..noc.network import Network
from ..noc.packet import Packet
from ..noc.policy import AlwaysOnPolicy, PowerPolicy
from ..noc.topology import Direction
from ..powergate.controller import PGState, PowerGateController
from .punch_fabric import PunchFabric

#: Shared empty punch-target set for routers whose heads need no wakeups.
_EMPTY_TARGETS: frozenset = frozenset()


class NoPG(AlwaysOnPolicy):
    """Baseline without power-gating."""

    name = "No-PG"


class PowerGatedScheme(PowerPolicy):
    """Shared machinery of all power-gated schemes."""

    name = "PG-base"

    def __init__(
        self,
        wakeup_latency: int = 8,
        timeout: int = 4,
        punch_hops: Optional[int] = None,
        use_forewarning: bool = False,
        slack1: bool = False,
        slack2: bool = False,
        slack2_window: int = 6,
    ) -> None:
        self.wakeup_latency = wakeup_latency
        self.timeout = timeout
        self._punch_hops = punch_hops
        #: Whether punch arrivals open a no-sleep forewarning window
        #: (Power Punch's accurate short-idle filtering, Sec. 4.3).
        self.use_forewarning = use_forewarning
        #: Send injection punches at message creation (start of NI delay).
        self.slack1 = slack1
        #: Honor early local-router notices from resource accesses.
        self.slack2 = slack2
        self.slack2_window = slack2_window
        #: Vector-kernel controller substrate: while a
        #: ``ControllerArrayBank`` is installed the array state is
        #: authoritative and every controller read goes through the
        #: ``controllers`` property, which flushes the bank back onto
        #: the objects first (see ``repro.noc.vector``).
        self._vector_bank = None
        self._bank_dirty = False
        self.controllers: List[PowerGateController] = []
        self.fabric: Optional[PunchFabric] = None
        self._slack2_hold: Dict[int, int] = {}
        # --- active-set kernel state (see attach) -----------------------
        #: Whether the attached network runs the active-set kernel.
        self._active = False
        #: Controllers whose FSM step is non-trivial this cycle: every
        #: non-OFF controller.  A controller leaves when a step observes
        #: it OFF and re-enters via its ``wake_hook`` the moment any
        #: wakeup event pulls it out of OFF, so the invariant
        #: "non-OFF => armed" holds at every observation point.
        self._armed: Set[int] = set()
        #: Last cycle whose controller-step phase completed; the lazy
        #: OFF-cycle accounting clock for skipped controllers.
        self._stepped_through = -1
        #: Event-driven sleep deadlines: cycle -> [(node, quiescent
        #: since)].  When a step observes a controller fully quiescent
        #: (ACTIVE, datapath empty, no NI demand, no wakeup signal),
        #: its inputs cannot change without an external event — so
        #: instead of stepping it every cycle, the scheme computes the
        #: cycle its sleep decision will fire and parks the controller
        #: until then.  Any disturbance (wakeup request, flit headed
        #: its way) settles the owed accounting and re-arms stepping;
        #: the parked entry is then stale and skipped by the ``since``
        #: check.
        self._sleep_deadlines: Dict[int, List[Tuple[int, int]]] = {}
        #: Per-router punch-target memo: router_id -> (head_version,
        #: targets).  Valid until the router's front head flits change.
        self._punch_cache: Dict[int, Tuple[int, Set[int]]] = {}
        #: Baseline blocking-wakeup fallback: when a flit is stalled by a
        #: gated neighbor, assert the one-hop WU handshake directly at
        #: that neighbor's controller.  Off by default (the punch fabric
        #: regenerates wakeups every cycle, making the handshake
        #: redundant and timing-perturbing); armed automatically when a
        #: fault injector is installed, so lost/late punch signals
        #: degrade to the paper's blocking behavior instead of hanging.
        self.blocking_fallback = False

    # ------------------------------------------------------------------
    @property
    def controllers(self) -> List[PowerGateController]:
        """The per-router controller objects, flushed up to date when
        the vector kernel's array bank holds the authoritative state."""
        if self._bank_dirty:
            self._bank_dirty = False
            self._vector_bank.flush_into(self._controllers)
        return self._controllers

    @controllers.setter
    def controllers(self, value: List[PowerGateController]) -> None:
        self._controllers = value

    # ------------------------------------------------------------------
    def attach(self, network: Network) -> None:
        """Derive punch parameters and build controllers/fabric for a network."""
        self.network = network
        cfg = network.config
        if self._punch_hops is None:
            # Just enough hop slack to cover the wakeup latency:
            # a signal H hops ahead hides H * Trouter cycles (Sec. 3).
            self.punch_hops = max(1, math.ceil(self.wakeup_latency / cfg.router_stages))
        else:
            self.punch_hops = self._punch_hops
        if self.punch_hops > 1 and cfg.topology != "mesh":
            # Multi-hop punch signals are Power Punch's contribution and
            # stay mesh+XY: the contention-free encoding (Sec. 4.1) is
            # derived from XY's turn restrictions.  One-hop wakeup
            # (ConvOpt-PG) only needs the generic next-hop relation and
            # runs on any fabric.
            raise UnsupportedTopologyError(
                f"scheme {self.name!r} (punch_hops={self.punch_hops})",
                cfg.topology,
                reason="multi-hop punch encoding is derived from XY "
                "turn restrictions on the mesh",
            )
        self.expectation_window = (
            self.punch_hops * cfg.hop_latency if self.use_forewarning else 0
        )
        self.controllers = [
            PowerGateController(node, self.wakeup_latency, self.timeout)
            for node in range(cfg.num_nodes)
        ]
        for controller in self.controllers:
            # Mirror retry events into the network-wide counters so
            # campaign dumps see them without walking controllers.
            controller.stats = network.stats
        # The vector kernel falls back to the active-set machinery
        # whenever its engine is not engaged.
        self._active = cfg.kernel in ("active", "vector")
        self._vector_bank = None
        self._bank_dirty = False
        self._faulted = False
        self._armed = set(range(cfg.num_nodes))
        self._stepped_through = -1
        self._punch_cache = {}
        self._singleton_targets = {}
        self._sleep_deadlines = {}
        if self._active:
            for controller in self.controllers:
                controller.clock = self._controller_clock
                controller.wake_hook = self._armed.add
        # Punch targets are always derived from the static XY view:
        # under fault-tolerant rerouting the live routing tables change
        # when routers die, but the fabric memoizes decompositions and
        # the paper's punch horizon is a property of the dimension-order
        # baseline — ``static_view`` is the pure-XY twin either way.
        self.fabric = PunchFabric(network.routing.static_view, self._on_punch)
        # Punch routing is static: memoizing the per-(router, targets)
        # relay decomposition is behavior-exact, but it is gated to the
        # active kernel so the naive kernel stays a faithful seed-cost
        # reference for the benchmarks.
        self.fabric.memoize = self._active
        # Targeted-router lookups happen for every buffered head flit
        # every cycle; memoize per (current, destination) at the fixed
        # punch horizon.
        ahead_cache: Dict[tuple, int] = {}
        routing_ahead = network.routing.static_view.router_ahead
        hops = self.punch_hops

        def cached_ahead(current: int, destination: int, _hops: int) -> int:
            key = (current, destination)
            target = ahead_cache.get(key)
            if target is None:
                target = ahead_cache[key] = routing_ahead(
                    current, destination, hops
                )
            return target

        self._router_ahead = cached_ahead

    def _controller_clock(self) -> int:
        """Lazy OFF-accounting clock handed to skipped controllers."""
        return self._stepped_through

    def _on_punch(self, router: int, cycle: int) -> None:
        bank = self._vector_bank
        if bank is not None:
            # Vector kernel: the controller FSMs live in the array bank.
            bank.request_scalar(router, cycle, self.expectation_window)
            return
        controller = self.controllers[router]
        if controller._quiescent_since is not None and controller.faults is None:
            # Parked controller: absorb the wakeup without waking the
            # FSM — the inline twin of ``request_wakeup``'s parked fast
            # path (its ``clock()`` is ``self._stepped_through``).
            reset_step = self._stepped_through + 1
            if reset_step != controller._parked_reset_last:
                controller._parked_reset_prev = controller._parked_reset_last
                controller._parked_reset_last = reset_step
            window = self.expectation_window
            if window > 0:
                expect = cycle + window
                if expect > controller.expect_until:
                    controller.expect_until = expect
            return
        controller.request_wakeup(cycle, self.expectation_window)

    def on_faults_installed(self, injector) -> None:
        """Wire the injector into the punch fabric and every controller,
        and arm the blocking-wakeup fallback (graceful degradation)."""
        if self.fabric is not None:
            self.fabric.faults = injector
        for controller in self.controllers:
            controller.faults = injector
        self.blocking_fallback = True
        # Fault dispositions are drawn per delivered wakeup request, so
        # the lazy parked-controller paths must not absorb requests:
        # resume per-cycle stepping for every parked controller and
        # stop parking from here on.
        self._faulted = True
        if self._active:
            for controller in self.controllers:
                if controller._quiescent_since is not None:
                    controller.settle_quiescence()
                    self._armed.add(controller.router_id)

    def on_router_disturbed(self, router_id: int) -> None:
        """A flit was sent toward ``router_id``: its controller's
        datapath-empty input changes without a wakeup signal.

        The sender already incremented ``incoming_in_flight``, so every
        step from the next one on is provably ``busy`` until the
        emptied hook fires — the quiescent park converts in place into
        a busy skip instead of bouncing through the armed set for one
        busy step.  Busy-skip parks are unaffected (the datapath stays
        non-empty) and WAKING parks ignore the datapath until their
        wake-at transition, which reads it fresh.
        """
        controller = self.controllers[router_id]
        if (
            controller._quiescent_since is not None
            and not controller._parked_busy
            and controller.state is PGState.ACTIVE
        ):
            controller.settle_quiescence()
            if self._faulted:
                self._armed.add(router_id)
            else:
                controller.enter_busy_skip(self._stepped_through)

    def on_router_emptied(self, router_id: int) -> None:
        """The last flit left ``router_id``'s datapath: a busy-skip
        parked controller sees its sleep precondition change.

        Idle counting restarts at the next step, so the controller
        re-parks directly as quiescent with its sleep decision due a
        full timeout from now; a wakeup still pending consumption
        translates into a parked reset one step later, exactly as if
        the next stepped cycle had consumed it.
        """
        controller = self.controllers[router_id]
        if controller._parked_busy:
            controller.settle_quiescence()
            if self._faulted:
                self._armed.add(router_id)
                return
            now = self._stepped_through
            controller.enter_quiescence(now)
            if controller.wu_seen:
                controller.wu_seen = False
                controller._parked_reset_last = now + 1
                deadline = now + 1 + controller.timeout
            else:
                deadline = now + controller.timeout
            expect_gate = controller.expect_until + 1
            if expect_gate > deadline:
                deadline = expect_gate
            self._sleep_deadlines.setdefault(deadline, []).append(
                (router_id, now)
            )

    def note_blocked(self, router_id: int, next_router: int, packet, cycle: int) -> None:
        """A flit is stalled behind a gated-off/waking neighbor.

        With the fallback armed this asserts the conventional one-hop WU
        handshake at the blocking neighbor — retried every stalled cycle
        by construction, so even a fully dropped punch stream converges
        to the baseline blocking-wakeup path (bounded by the deadlock
        watchdog rather than a silent hang).
        """
        if self.blocking_fallback:
            self.controllers[next_router].request_wakeup(cycle, 0)

    # ------------------------------------------------------------------
    # Availability / state queries
    # ------------------------------------------------------------------
    def is_router_available(self, router_id: int) -> bool:
        """PG signal de-asserted for this router right now."""
        bank = self._vector_bank
        if bank is not None:
            return bank.state[router_id] == 0
        return self.controllers[router_id].is_available

    def is_router_available_by(self, router_id: int, by_cycle: int) -> bool:
        """Whether the router will be powered on at ``by_cycle`` (ETA check).

        Inline twin of :meth:`PowerGateController.available_by` — this
        probe runs once per SA-ready VC per cycle.
        """
        bank = self._vector_bank
        if bank is not None:
            st = bank.state[router_id]
            if st == 0:
                return True
            if st == 2:
                return bool(bank.wake_at[router_id] <= by_cycle)
            return False
        controller = self.controllers[router_id]
        state = controller.state
        if state is PGState.ACTIVE:
            return True
        if state is PGState.WAKING:
            return controller.wake_at <= by_cycle
        return False

    def router_is_off(self, router_id: int) -> bool:
        """Whether the router is currently gated off."""
        bank = self._vector_bank
        if bank is not None:
            return bank.state[router_id] == 1
        return self.controllers[router_id].is_off

    def router_is_waking(self, router_id: int) -> bool:
        """Whether the router is mid-wakeup (PG still asserted)."""
        bank = self._vector_bank
        if bank is not None:
            return bank.state[router_id] == 2
        return self.controllers[router_id].is_waking

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------
    def begin_cycle(self, cycle: int) -> None:
        """Deliver punches, apply slack-2 holds, step the armed FSMs.

        Under the active-set kernel only controllers in the armed set
        (non-OFF) and nodes whose NI has work are visited: for every
        other node the naive per-node iteration is a provable no-op —
        ``wants_local_router`` is false without NI work, and an OFF
        controller's step only accrues ``off_cycles`` (accounted lazily
        against ``_stepped_through``) and clears an already-clear
        ``wu_seen``.  Visiting in sorted node order reproduces the
        naive index-order interleaving of ``request_wakeup``/``step``.
        """
        self.fabric.deliver(cycle)
        if self._slack2_hold:
            expired = []
            for node, until in self._slack2_hold.items():
                if cycle > until:
                    expired.append(node)
                else:
                    self.controllers[node].request_wakeup(cycle, 0)
            for node in expired:
                del self._slack2_hold[node]
        interfaces = self.network.interfaces
        routers = self.network.routers
        controllers = self.controllers
        if self._active:
            armed = self._armed
            active_nis = self.network.active_nis
            due = self._sleep_deadlines.pop(cycle, None)
            # Parked quiescent controllers whose sleep decision fires
            # this cycle are visited at their sorted node position so
            # the decision step lands exactly where the naive kernel's
            # per-node step would — in particular *after* this node's
            # own NI wakeup request, which (as in the seed) prevents
            # rather than cancels the sleep.
            due_map = dict(due) if due else None
            visit = armed | active_nis
            if due_map:
                visit |= due_map.keys()
            for node in sorted(visit):
                ni_wants = node in active_nis and interfaces[
                    node
                ].wants_local_router(cycle)
                if ni_wants:
                    # The NI's WU wire into its local PG controller;
                    # this re-arms an OFF (or parked) controller via
                    # its wake_hook.
                    controllers[node].request_wakeup(cycle, 0)
                if node in armed:
                    controller = controllers[node]
                    empty = routers[node].datapath_empty()
                    controller.step(cycle, empty, ni_wants)
                    state = controller.state
                    if state is PGState.OFF:
                        if controller.retry_at is None:
                            armed.discard(node)
                        # else: a pending wakeup retry needs per-cycle
                        # OFF steps until its deadline fires.
                    elif self._faulted:
                        # Fault dispositions are drawn per delivered
                        # wakeup request, so controllers must stay on
                        # the fully stepped path.
                        pass
                    elif state is PGState.ACTIVE:
                        if empty:
                            # Empty-datapath ACTIVE step: every input
                            # the FSM reacts to from here on arrives as
                            # a request_wakeup (absorbed lazily while
                            # parked) or as a disturbance hook when a
                            # flit heads this way — park the controller
                            # until its sleep decision, due when the
                            # idle timeout has elapsed and any punch
                            # forewarning window has passed.
                            deadline = (
                                cycle + controller.timeout - controller.idle_cycles
                            )
                            expect_gate = controller.expect_until + 1
                            if expect_gate > deadline:
                                deadline = expect_gate
                            armed.discard(node)
                            controller.enter_quiescence(cycle)
                            self._sleep_deadlines.setdefault(deadline, []).append(
                                (node, cycle)
                            )
                        else:
                            # Busy ACTIVE step: every further step is
                            # ``busy`` until the datapath empties, and
                            # the network reports that departure via
                            # the disturbance hook.
                            armed.discard(node)
                            controller.enter_busy_skip(cycle)
                    else:
                        # WAKING: the FSM ticks deterministically until
                        # ``wake_at``; park it until then.
                        armed.discard(node)
                        controller.enter_quiescence(cycle)
                        self._sleep_deadlines.setdefault(
                            controller.wake_at, []
                        ).append((node, cycle))
                elif due_map is not None:
                    since = due_map.get(node)
                    controller = controllers[node]
                    # Busy parks never carry a sleep deadline: a
                    # matching entry is a stale quiescent one whose
                    # park was converted in place by the disturb hook.
                    if (
                        since is not None
                        and controller._quiescent_since == since
                        and not controller._parked_busy
                    ):
                        if controller.state is PGState.WAKING:
                            # The wake-at transition step: fold the
                            # owed WAKING cycles and run it for real.
                            controller.settle_quiescence()
                            controller.step(
                                cycle, routers[node].datapath_empty(), ni_wants
                            )
                            armed.add(node)
                            continue
                        # Wakeups absorbed while parked reset the idle
                        # count (and may have extended the forewarning
                        # window): recompute the true sleep cycle and
                        # re-park if it moved past this deadline.
                        last = controller._parked_reset_last
                        deadline = controller.expect_until + 1
                        if last is not None:
                            timed_out = last + controller.timeout
                            if timed_out > deadline:
                                deadline = timed_out
                        if last is not None and deadline > cycle:
                            self._sleep_deadlines.setdefault(
                                deadline, []
                            ).append((node, since))
                        else:
                            # Undisturbed through its deadline: fold
                            # the owed quiescent steps and run the real
                            # sleep decision step the naive kernel
                            # would run now.
                            controller.settle_quiescence()
                            controller.step(cycle, True, False)
                            if controller.state is not PGState.OFF:
                                armed.add(node)  # safety net
        else:
            for node, controller in enumerate(controllers):
                ni_wants = interfaces[node].wants_local_router(cycle)
                if ni_wants:
                    # The NI's WU wire into its local PG controller.
                    controller.request_wakeup(cycle, 0)
                controller.step(cycle, routers[node].datapath_empty(), ni_wants)
        self._stepped_through = cycle

    def end_cycle(self, cycle: int) -> None:
        # Punch/WU wires are combinational functions of the wakeup
        # requirements visible this cycle (Sec. 6.6(1)): regenerate them
        # from every buffered head flit and every pending injection.
        # Routers outside the network's active set have no buffered
        # flits, so iterating the active set matches the naive scan; the
        # per-router target set is memoized on ``head_version`` so a
        # router whose heads are merely stalled does not recompute it.
        """Regenerate punch signals from this cycle's wakeup requirements."""
        ahead = self._router_ahead
        hops = self.punch_hops
        fabric = self.fabric
        routers = self.network.routers
        if self._active:
            cache = self._punch_cache
            singles = self._singleton_targets
            local = Direction.LOCAL
            for rid in sorted(self.network.active_routers):
                router = routers[rid]
                if not router._occupied:
                    continue
                version = router.head_version
                cached = cache.get(rid)
                if cached is not None and cached[0] == version:
                    targets = cached[1]
                else:
                    # ``head_flit_requirements`` inlined (occupied VCs
                    # are never empty), with the ubiquitous one-head
                    # case building its frozenset once per (router,
                    # destination) instead of once per cycle.
                    connected = router.connected
                    first = first_dest = None
                    rest = None
                    for vc in router._occupied:
                        front = vc.flits[0]
                        if not front.is_head:
                            continue
                        route = vc.route
                        if route is None or route is local:
                            continue
                        if connected[route] is None:
                            continue
                        dest = front.packet.destination
                        target = ahead(rid, dest, hops)
                        if first is None:
                            first, first_dest = target, dest
                        elif rest is None:
                            rest = {first, target}
                        else:
                            rest.add(target)
                    if rest is not None:
                        targets = frozenset(rest)
                    elif first is not None:
                        key = (rid, first_dest)
                        targets = singles.get(key)
                        if targets is None:
                            targets = singles[key] = frozenset((first,))
                    else:
                        targets = _EMPTY_TARGETS
                    cache[rid] = (version, targets)
                if targets:
                    fabric.send_local(rid, targets, cycle)
        else:
            # Seed-cost reference path: recompute every cycle.
            for router in routers:
                if not router._occupied:
                    continue
                requirements = router.head_flit_requirements()
                if not requirements:
                    continue
                rid = router.router_id
                targets = {ahead(rid, dest, hops) for _next, dest in requirements}
                fabric.send_local(rid, targets, cycle)
        self._generate_injection_punches(cycle)

    def _generate_injection_punches(self, cycle: int) -> None:
        """Injection-side wakeup generation; scheme-specific."""

    def _punching_interfaces(self):
        """NIs that may hold punch-generating packets, in node order.

        Under the active-set kernel only NIs with queued/streaming work
        can punch; the naive kernel scans every NI like the seed did.
        """
        interfaces = self.network.interfaces
        if self._active:
            return [interfaces[node] for node in sorted(self.network.active_nis)]
        return interfaces

    # ------------------------------------------------------------------
    # NI hooks
    # ------------------------------------------------------------------
    def on_injection_check(self, node: int, packet: Packet, cycle: int) -> None:
        # Wakeup-issue point for schemes without NI slack: the packet
        # "encounters" a powered-off local router (Fig. 9 semantics) if
        # the router is not fully on when the NI checks availability,
        # even when the wakeup wait itself ends up partially hidden.
        """Record a blocked-router encounter at the availability check."""
        if not self.is_router_available(node):
            packet.blocked_routers.add(node)

    def early_local_notice(self, node: int, cycle: int) -> None:
        """Slack 2: wake/hold the local router ahead of a certain message."""
        if not self.slack2:
            return
        until = cycle + self.slack2_window
        if until > self._slack2_hold.get(node, -1):
            self._slack2_hold[node] = until
        bank = self._vector_bank
        if bank is not None:
            bank.request_scalar(node, cycle, 0)
            return
        self.controllers[node].request_wakeup(cycle, 0)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_off_cycles(self) -> int:
        """Sum of gated-off cycles across all routers."""
        return sum(c.off_cycles for c in self.controllers)

    def total_wake_events(self) -> int:
        """Total wakeup events across all routers."""
        return sum(c.wake_events for c in self.controllers)

    def currently_off(self) -> int:
        """Number of routers gated off right now."""
        return sum(1 for c in self.controllers if c.is_off)


class ConvOptPG(PowerGatedScheme):
    """Optimized conventional power-gating (timeout + early wakeup).

    Wakeup signals travel exactly one hop (the look-ahead routing
    early-wakeup of [Matsutani et al.]); there is no multi-hop punch,
    no forewarning window and no use of NI slack, so packets pay most
    of the wakeup latency whenever they run into gated-off routers.
    """

    name = "ConvOpt-PG"

    def __init__(self, wakeup_latency: int = 8, timeout: int = 4) -> None:
        super().__init__(
            wakeup_latency=wakeup_latency,
            timeout=timeout,
            punch_hops=1,
            use_forewarning=False,
            slack1=False,
            slack2=False,
        )

    def _generate_injection_punches(self, cycle: int) -> None:
        # Conventional PG only asserts the local WU when the NI checks
        # availability; that wire is already modeled in begin_cycle via
        # ``wants_local_router`` + ``request_wakeup``.
        return


class PowerPunchSignal(PowerGatedScheme):
    """Power Punch with multi-hop punch signals only (no NI slack)."""

    name = "PowerPunch-Signal"

    def __init__(
        self,
        wakeup_latency: int = 8,
        timeout: int = 4,
        punch_hops: Optional[int] = None,
    ) -> None:
        super().__init__(
            wakeup_latency=wakeup_latency,
            timeout=timeout,
            punch_hops=punch_hops,
            use_forewarning=True,
            slack1=False,
            slack2=False,
        )

    def _generate_injection_punches(self, cycle: int) -> None:
        # Punches for packets whose NI processing has completed (the
        # availability-check point of Fig. 6 — no slack exploited).
        ni_latency = self.network.config.ni_latency
        ahead = self._router_ahead
        hops = self.punch_hops
        for ni in self._punching_interfaces():
            targets = None
            for queue in ni.queues:
                if queue:
                    packet = queue[0]
                    if cycle >= packet.created_at + ni_latency:
                        if targets is None:
                            targets = set()
                        targets.add(ahead(ni.node, packet.destination, hops))
            if targets:
                self.fabric.send_local(ni.node, targets, cycle)


class PowerPunchPG(PowerPunchSignal):
    """Comprehensive Power Punch: punch signals + injection-node slack."""

    name = "PowerPunch-PG"

    def __init__(
        self,
        wakeup_latency: int = 8,
        timeout: int = 4,
        punch_hops: Optional[int] = None,
        slack2_window: int = 6,
    ) -> None:
        PowerGatedScheme.__init__(
            self,
            wakeup_latency=wakeup_latency,
            timeout=timeout,
            punch_hops=punch_hops,
            use_forewarning=True,
            slack1=True,
            slack2=True,
            slack2_window=slack2_window,
        )

    def on_message_created(self, node: int, packet: Packet, cycle: int) -> None:
        # Slack-1 wakeup issue point: if the local router is not fully
        # on when the message enters the NI, the packet "encounters" a
        # powered-off router (Fig. 9 semantics) even though the NI
        # slack may hide most or all of the wakeup wait (Fig. 10).
        """Slack-1 wakeup-issue point: count powered-off encounters here."""
        if not self.is_router_available(node):
            packet.blocked_routers.add(node)

    def _generate_injection_punches(self, cycle: int) -> None:
        # Slack 1: wakeup information is available as soon as the
        # message enters the NI, so every queued packet punches —
        # including those still inside the NI pipeline (Fig. 6).
        ahead = self._router_ahead
        hops = self.punch_hops
        for ni in self._punching_interfaces():
            targets = None
            for queue in ni.queues:
                for packet in queue:
                    if targets is None:
                        targets = set()
                    targets.add(ahead(ni.node, packet.destination, hops))
            if targets:
                self.fabric.send_local(ni.node, targets, cycle)
