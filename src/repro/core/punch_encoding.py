"""Punch-signal encoding analysis (paper Sec. 4.1, Table 1, Fig. 5).

The paper's central hardware argument is that all wakeup signals
crossing a link in the same cycle can be merged into a *narrow* punch
signal: 5 bits per X link and 2 bits per Y link for 3-hop slack (8/2
bits for 4-hop).  This module re-derives that result from first
principles by walking the paper's five encoding steps:

1. the *targeted router* of a wakeup signal is the router ``H`` hops
   ahead on the packet's XY path (or the destination if closer);
2. intermediate routers are implicitly notified, so only the targeted
   router needs to be named;
3. XY turn restrictions shrink the set of routers whose signals can use
   a given link (e.g. only R25/R26/R27 can source signals on the
   R27->R28 link of an 8x8 mesh);
4. target sets in which one target lies on the relay path of another
   collapse to the same encoding; enumerating the distinct collapsed
   sets gives the minimal code count (22 for the X+ link of R27);
5. the punch-signal width is ``ceil(log2(#distinct sets + 1))`` — one
   extra code for "no signal".

Everything is computed by exhaustive enumeration over the topology, so
the tests can assert the paper's exact numbers.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..noc.routing import XYRouting
from ..noc.topology import Direction, MeshTopology


@dataclass(frozen=True)
class LinkEncoding:
    """Encoding summary for one directed link."""

    router: int
    direction: Direction
    neighbor: int
    #: Routers that may source wakeup signals using this link.
    sources: Tuple[int, ...]
    #: Possible targeted routers per source.
    targets_by_source: Dict[int, FrozenSet[int]]
    #: All distinct canonical target sets that can occur in one cycle.
    distinct_sets: Tuple[FrozenSet[int], ...]

    @property
    def num_codes(self) -> int:
        """Distinct punch values needed, including the idle code."""
        return len(self.distinct_sets) + 1

    @property
    def width_bits(self) -> int:
        """Minimal punch-signal width for this link."""
        return max(1, math.ceil(math.log2(self.num_codes)))


class PunchEncodingAnalysis:
    """Exhaustive punch-encoding analysis for a mesh with XY routing."""

    def __init__(self, topology: MeshTopology, hops: int = 3) -> None:
        if hops < 1:
            raise ValueError("punch hop slack must be at least 1")
        self.topology = topology
        self.routing = XYRouting(topology)
        self.hops = hops
        #: Memoized XY paths — the exhaustive enumerations below revisit
        #: the same (src, dst) pairs many times.
        self._path_cache: Dict[Tuple[int, int], List[int]] = {}
        self._link_cache: Dict[Tuple[int, Direction], LinkEncoding] = {}

    def _path(self, src: int, dst: int) -> List[int]:
        key = (src, dst)
        path = self._path_cache.get(key)
        if path is None:
            path = self.routing.path(src, dst)
            self._path_cache[key] = path
        return path

    # ------------------------------------------------------------------
    # Step 1-3: wakeup-signal sources and targets per link
    # ------------------------------------------------------------------
    def signal_pairs_on_link(self, router: int, direction: Direction):
        """All (source, target) wakeup signals that can use this link."""
        neighbor = self.topology.neighbor(router, direction)
        if neighbor is None:
            raise ValueError(f"router {router} has no {direction.name} link")
        pairs: Set[Tuple[int, int]] = set()
        candidates = [router] + self.topology.nodes_within(router, self.hops - 1)
        for source in candidates:
            for dest in range(self.topology.num_nodes):
                if dest == source:
                    continue
                target = self.routing.router_ahead(source, dest, self.hops)
                path = self._path(source, target)
                for a, b in zip(path, path[1:]):
                    if a == router and b == neighbor:
                        pairs.add((source, target))
                        break
        return pairs

    def analyze_link(self, router: int, direction: Direction) -> LinkEncoding:
        """Full encoding analysis of the link ``router -> direction``."""
        cached = self._link_cache.get((router, direction))
        if cached is not None:
            return cached
        neighbor = self.topology.neighbor(router, direction)
        if neighbor is None:
            raise ValueError(f"router {router} has no {direction.name} link")
        targets_by_source: Dict[int, Set[int]] = {}
        for source, target in self.signal_pairs_on_link(router, direction):
            targets_by_source.setdefault(source, set()).add(target)
        sources = tuple(sorted(targets_by_source))

        distinct: Set[FrozenSet[int]] = set()
        # Each source router emits at most one wakeup signal per output
        # link per cycle; enumerate every simultaneous combination.
        options: List[List[Optional[int]]] = [
            [None] + sorted(targets_by_source[s]) for s in sources
        ]
        for combo in itertools.product(*options):
            raw = frozenset(t for t in combo if t is not None)
            if raw:
                distinct.add(self.canonicalize(raw, neighbor))
        encoding = self._link_cache[(router, direction)] = LinkEncoding(
            router=router,
            direction=direction,
            neighbor=neighbor,
            sources=sources,
            targets_by_source={
                s: frozenset(ts) for s, ts in targets_by_source.items()
            },
            distinct_sets=tuple(
                sorted(distinct, key=lambda s: (len(s), sorted(s)))
            ),
        )
        return encoding

    # ------------------------------------------------------------------
    # Step 4: implicit-containment reduction
    # ------------------------------------------------------------------
    def canonicalize(self, targets: FrozenSet[int], link_dst: int) -> FrozenSet[int]:
        """Drop targets implicitly covered by another target's relay path.

        A target ``T1`` need not be named if it lies on the XY path from
        the link destination toward another target ``T2``: relaying the
        punch to ``T2`` wakes ``T1`` on the way (paper step 4, e.g.
        {R29, R21} == {R21} on the R27->R28 link).
        """
        kept = set(targets)
        for t2 in targets:
            if t2 not in kept:
                continue
            path = self._path(link_dst, t2)
            for t1 in list(kept):
                if t1 != t2 and t1 in path:
                    kept.discard(t1)
        return frozenset(kept)

    # ------------------------------------------------------------------
    # Step 5: widths across the whole chip
    # ------------------------------------------------------------------
    def max_width(self, direction_axis: str) -> int:
        """Worst-case punch width over all links on the given axis."""
        if direction_axis not in ("x", "y"):
            raise ValueError("direction_axis must be 'x' or 'y'")
        dirs = (
            (Direction.XPOS, Direction.XNEG)
            if direction_axis == "x"
            else (Direction.YPOS, Direction.YNEG)
        )
        width = 0
        for router in range(self.topology.num_nodes):
            for direction in dirs:
                if self.topology.neighbor(router, direction) is None:
                    continue
                width = max(width, self.analyze_link(router, direction).width_bits)
        return width

    # ------------------------------------------------------------------
    # Table 1 regeneration
    # ------------------------------------------------------------------
    def encoding_table(
        self, router: int, direction: Direction
    ) -> List[Tuple[FrozenSet[int], str]]:
        """Distinct target sets with assigned binary punch codes.

        Reproduces the paper's Table 1 (sets of targeted routers in a
        direction of a router and their punch-signal encodings).  Codes
        are assigned in enumeration order starting from 0; code
        ``2**width - 1``-style idle value is implicit.
        """
        encoding = self.analyze_link(router, direction)
        width = encoding.width_bits
        return [
            (target_set, format(code, f"0{width}b"))
            for code, target_set in enumerate(encoding.distinct_sets)
        ]
