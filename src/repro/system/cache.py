"""Set-associative cache structure with LRU replacement.

Used for both the private L1s (32 KB, 2-way) and the shared-L2 banks
(256 KB, 16-way) of the paper's Table 2.  The cache stores an opaque
``line`` object per block (protocol state lives in the controllers);
this module only provides placement, lookup and LRU eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

L = TypeVar("L")

#: Cache block size in bytes (Table 2).
BLOCK_BYTES = 64


class SetAssociativeCache(Generic[L]):
    """A ``num_sets`` x ``ways`` cache indexed by block address."""

    def __init__(self, size_bytes: int, ways: int, block_bytes: int = BLOCK_BYTES):
        if size_bytes % (ways * block_bytes):
            raise ValueError("cache size must be a multiple of way * block size")
        self.ways = ways
        self.block_bytes = block_bytes
        self.num_sets = size_bytes // (ways * block_bytes)
        if self.num_sets < 1:
            raise ValueError("cache too small for its associativity")
        #: Per set: block -> line, ordered oldest-first for LRU.
        self._sets: List["OrderedDict[int, L]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    # ------------------------------------------------------------------
    def set_index(self, block: int) -> int:
        """Cache set a block maps to."""
        return block % self.num_sets

    def lookup(self, block: int, touch: bool = True) -> Optional[L]:
        """The line for ``block`` or None; refreshes LRU on hit."""
        cache_set = self._sets[self.set_index(block)]
        line = cache_set.get(block)
        if line is not None and touch:
            cache_set.move_to_end(block)
        return line

    def contains(self, block: int) -> bool:
        """Whether the block is resident (no LRU update)."""
        return block in self._sets[self.set_index(block)]

    def insert(self, block: int, line: L) -> Optional[Tuple[int, L]]:
        """Insert a line; returns the evicted (block, line) if any.

        The caller must make room decisions *before* inserting when an
        eviction has protocol side effects — use :meth:`victim_for`.
        """
        cache_set = self._sets[self.set_index(block)]
        evicted = None
        if block not in cache_set and len(cache_set) >= self.ways:
            evicted = cache_set.popitem(last=False)
        cache_set[block] = line
        cache_set.move_to_end(block)
        return evicted

    def victim_for(self, block: int, evictable=None) -> Optional[Tuple[int, L]]:
        """The (block, line) that inserting ``block`` would evict.

        ``evictable(block)`` may veto candidates (e.g. lines with an
        in-flight transaction); the least-recently-used eligible line
        is chosen.  Returns None when no eviction is needed; raises if
        every line in the set is vetoed.
        """
        cache_set = self._sets[self.set_index(block)]
        if block in cache_set or len(cache_set) < self.ways:
            return None
        for candidate in cache_set.items():
            if evictable is None or evictable(candidate[0]):
                return candidate
        raise RuntimeError("no evictable line in cache set")

    def remove(self, block: int) -> Optional[L]:
        """Remove and return the block's line, or None."""
        return self._sets[self.set_index(block)].pop(block, None)

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Total resident lines."""
        return sum(len(s) for s in self._sets)

    def items(self) -> Iterator[Tuple[int, L]]:
        """Iterate (block, line) pairs across all sets."""
        for cache_set in self._sets:
            yield from cache_set.items()

    @property
    def capacity_blocks(self) -> int:
        """Total line capacity of the cache."""
        return self.num_sets * self.ways
