"""PARSEC benchmark traffic profiles.

The paper evaluates on eight multi-threaded PARSEC benchmarks under
gem5 (Sec. 5).  We substitute per-benchmark :class:`StreamProfile`
parameterizations calibrated to the published qualitative NoC
characteristics of each workload — relative injection rate, sharing
degree and burstiness — rather than to absolute IPC:

* *blackscholes*, *swaptions*: tiny working sets, embarrassingly
  parallel, almost no sharing -> very light NoC load (power-gating
  heaven, long idle periods);
* *bodytrack*, *fluidanimate*: medium working sets, neighbor/stage
  sharing, visibly bursty;
* *x264*, *ferret*, *dedup*: pipeline-parallel with producer-consumer
  sharing and larger streaming working sets -> mid-to-high load;
* *canneal*: cache-hostile random working set with fine-grained
  sharing -> the highest sustained load of the suite.

The absolute numbers below were tuned so the chip-average injection
rate spans roughly 0.002-0.02 flits/node/cycle, the low-load regime the
paper targets ("power-gating is best applied when traffic load is low
to medium").
"""

from __future__ import annotations

from typing import Dict, List

from .memtrace import StreamProfile

PARSEC_PROFILES: Dict[str, StreamProfile] = {
    "blackscholes": StreamProfile(
        mem_op_fraction=0.25,
        cold_fraction=0.0006,
        shared_fraction=0.0015,
        write_fraction=0.20,
        shared_blocks=512,
        comm_accesses=16,
        compute_accesses=600,
        compute_gap_boost=6.0,
    ),
    "bodytrack": StreamProfile(
        mem_op_fraction=0.3,
        cold_fraction=0.0008,
        shared_fraction=0.003,
        write_fraction=0.25,
        shared_blocks=2048,
        comm_accesses=48,
        compute_accesses=320,
        compute_gap_boost=4.0,
    ),
    "canneal": StreamProfile(
        mem_op_fraction=0.35,
        cold_fraction=0.0012,
        shared_fraction=0.005,
        write_fraction=0.30,
        shared_blocks=8192,
        comm_accesses=128,
        compute_accesses=128,
        compute_gap_boost=2.5,
    ),
    "dedup": StreamProfile(
        mem_op_fraction=0.32,
        cold_fraction=0.0009,
        shared_fraction=0.004,
        write_fraction=0.40,
        shared_blocks=4096,
        comm_accesses=96,
        compute_accesses=160,
        compute_gap_boost=3.0,
    ),
    "ferret": StreamProfile(
        mem_op_fraction=0.33,
        cold_fraction=0.0008,
        shared_fraction=0.0035,
        write_fraction=0.30,
        shared_blocks=4096,
        comm_accesses=80,
        compute_accesses=176,
        compute_gap_boost=3.0,
    ),
    "fluidanimate": StreamProfile(
        mem_op_fraction=0.28,
        cold_fraction=0.0007,
        shared_fraction=0.0028,
        write_fraction=0.35,
        shared_blocks=2048,
        comm_accesses=64,
        compute_accesses=288,
        compute_gap_boost=4.0,
    ),
    "swaptions": StreamProfile(
        mem_op_fraction=0.26,
        cold_fraction=0.0007,
        shared_fraction=0.002,
        write_fraction=0.25,
        shared_blocks=512,
        comm_accesses=16,
        compute_accesses=560,
        compute_gap_boost=6.0,
    ),
    "x264": StreamProfile(
        mem_op_fraction=0.3,
        cold_fraction=0.0007,
        shared_fraction=0.0032,
        write_fraction=0.35,
        shared_blocks=4096,
        comm_accesses=96,
        compute_accesses=200,
        compute_gap_boost=3.5,
    ),
}

#: Canonical evaluation order (matches the paper's figures).
PARSEC_BENCHMARKS: List[str] = [
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "ferret",
    "fluidanimate",
    "swaptions",
    "x264",
]


def get_profile(name: str) -> StreamProfile:
    """Look up a benchmark profile by name."""
    try:
        return PARSEC_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; available: {PARSEC_BENCHMARKS}"
        ) from None
