"""Memory controllers.

Four controllers sit at the mesh corners (paper Table 2); block
addresses interleave across them.  A read costs ``memory_latency``
(128) cycles before the data response leaves; writes are absorbed.

Slack-2 hook: the controller knows exactly when its response will be
generated, so it fires the NI early notice ``notice_lead`` cycles
before sending — the same L2/directory-style slack the paper exploits.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from .messages import CoherenceMessage, MessageType


class Memory:
    """Backing-store version map shared by all controllers."""

    def __init__(self) -> None:
        self.versions: Dict[int, int] = {}

    def read(self, block: int) -> int:
        """Current version of a block in backing store."""
        return self.versions.get(block, 0)

    def write(self, block: int, version: int) -> None:
        # Writebacks of the same block may arrive slightly out of order
        # on distinct VCs; never regress a version.
        """Update a block's version (never regresses)."""
        if version > self.versions.get(block, 0):
            self.versions[block] = version


class MemoryController:
    """One corner memory controller."""

    def __init__(
        self,
        node: int,
        memory: Memory,
        send: Callable[[CoherenceMessage, int, int], None],
        latency: int = 128,
        notice_lead: int = 6,
        early_notice: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.node = node
        self.memory = memory
        self._send = send
        self.latency = latency
        self.notice_lead = notice_lead
        #: Called with the cycle at which a response is imminent.
        self._early_notice = early_notice
        #: (ready_cycle, seq, destination, block) min-heap.
        self._pending: List[Tuple[int, int, int, int]] = []
        self._seq = 0
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def handle(self, msg: CoherenceMessage, cycle: int) -> None:
        """Accept a memory read (queued) or write (absorbed)."""
        if msg.mtype is MessageType.MEM_READ:
            self.reads += 1
            heapq.heappush(
                self._pending, (cycle + self.latency, self._seq, msg.sender, msg.block)
            )
            self._seq += 1
        elif msg.mtype is MessageType.MEM_WRITE:
            self.writes += 1
            self.memory.write(msg.block, msg.version)
        else:  # pragma: no cover - protocol hole guard
            raise RuntimeError(f"MC {self.node} cannot handle {msg}")

    def step(self, cycle: int) -> None:
        """Send matured responses; fire early notices shortly before."""
        if self._early_notice is not None:
            for ready, _seq, _dest, _block in self._pending:
                if ready - self.notice_lead <= cycle < ready:
                    self._early_notice(cycle)
                    break
        while self._pending and self._pending[0][0] <= cycle:
            _ready, _seq, dest, block = heapq.heappop(self._pending)
            msg = CoherenceMessage(
                MessageType.MEM_DATA,
                block,
                sender=self.node,
                requester=dest,
                version=self.memory.read(block),
            )
            self._send(msg, dest, cycle)

    @property
    def busy(self) -> bool:
        """Whether any read is still pending."""
        return bool(self._pending)
