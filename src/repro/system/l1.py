"""Private L1 cache controller (MESI, directory-based).

Stable states live in the cache (S/E/M); transient states live in
MSHRs.  The directory (home) is mostly blocking, which keeps the race
surface small; the races that remain are handled explicitly:

* ``Inv`` racing our own upgrade (``SM_AD`` -> ``IM_AD``);
* ``Inv`` racing the data of our own ``GetS`` (``IS_D`` -> ``IS_D_I``:
  use the data once, then drop to I);
* a forward arriving while we are still waiting for our own data
  (buffer it, service it on completion — ownership handoff chains);
* a forward racing our writeback (service it from the WB buffer).

Evictions are non-silent (``PutS``/``PutM``) so the directory's sharer
list stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .cache import SetAssociativeCache
from .messages import CoherenceMessage, MessageType


@dataclass
class L1Line:
    """One stable L1 line: MESI state letter and data version."""
    state: str  # "S", "E" or "M"
    version: int


@dataclass
class MSHR:
    """In-flight transaction state (transient MESI states)."""
    op: str  # "load" or "store"
    state: str  # "IS_D", "IS_D_I", "IM_AD", "SM_AD"
    acks_needed: Optional[int] = None
    acks_got: int = 0
    data_version: Optional[int] = None
    #: Forward received while the transaction was still in flight.
    deferred: List[CoherenceMessage] = field(default_factory=list)
    issued_at: int = 0


@dataclass
class WBEntry:
    """Writeback buffer entry holding evicted M data until WbAck."""
    version: int
    #: Data already handed to a racing forward; home will see a stale
    #: PutM and must still WB_ACK it.
    forwarded: bool = False


class L1Controller:
    """One core's private L1 cache + coherence engine."""

    def __init__(
        self,
        node: int,
        home_of: Callable[[int], int],
        send: Callable[[CoherenceMessage, int, int], None],
        size_bytes: int = 32 * 1024,
        ways: int = 2,
        mshr_limit: int = 8,
    ) -> None:
        self.node = node
        self.home_of = home_of
        #: Send callback: (message, destination_node, cycle).
        self._send = send
        self.cache: SetAssociativeCache[L1Line] = SetAssociativeCache(size_bytes, ways)
        self.mshrs: Dict[int, MSHR] = {}
        self.wb_buffers: Dict[int, WBEntry] = {}
        self.mshr_limit = mshr_limit
        #: Completion callback set by the core: (block, cycle).
        self.on_complete: Optional[Callable[[int, int], None]] = None
        # statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations_received = 0

    # ------------------------------------------------------------------
    # Core-facing interface
    # ------------------------------------------------------------------
    def can_accept(self, block: int) -> bool:
        """Whether a new miss to ``block`` may be issued now."""
        if block in self.mshrs or block in self.wb_buffers:
            return False
        return len(self.mshrs) < self.mshr_limit

    def access(self, block: int, is_write: bool, cycle: int) -> bool:
        """Perform a load/store; returns True on hit.

        On a miss the caller must have checked :meth:`can_accept`; the
        request is sent and ``on_complete`` fires when it finishes.
        """
        line = self.cache.lookup(block)
        if line is not None:
            if not is_write:
                self.hits += 1
                return True
            if line.state in ("E", "M"):
                # Silent E->M upgrade.
                line.state = "M"
                line.version += 1
                self.hits += 1
                return True
            # Store to S: upgrade miss.
            self.misses += 1
            self.mshrs[block] = MSHR(op="store", state="SM_AD", issued_at=cycle)
            self._request(MessageType.GETM, block, cycle)
            return False
        self.misses += 1
        if is_write:
            self.mshrs[block] = MSHR(op="store", state="IM_AD", issued_at=cycle)
            self._request(MessageType.GETM, block, cycle)
        else:
            self.mshrs[block] = MSHR(op="load", state="IS_D", issued_at=cycle)
            self._request(MessageType.GETS, block, cycle)
        return False

    def _request(self, mtype: MessageType, block: int, cycle: int) -> None:
        msg = CoherenceMessage(mtype, block, sender=self.node, requester=self.node)
        self._send(msg, self.home_of(block), cycle)

    # ------------------------------------------------------------------
    # Network-facing interface
    # ------------------------------------------------------------------
    def handle(self, msg: CoherenceMessage, cycle: int) -> None:
        """Dispatch one incoming protocol message."""
        handler = {
            MessageType.DATA: self._on_data,
            MessageType.DATA_E: self._on_data,
            MessageType.ACK_COUNT: self._on_ack_count,
            MessageType.INV_ACK: self._on_inv_ack,
            MessageType.INV: self._on_inv,
            MessageType.FWD_GETS: self._on_fwd,
            MessageType.FWD_GETM: self._on_fwd,
            MessageType.WB_ACK: self._on_wb_ack,
        }[msg.mtype]
        handler(msg, cycle)

    # --- data and acks -------------------------------------------------
    def _on_data(self, msg: CoherenceMessage, cycle: int) -> None:
        mshr = self.mshrs[msg.block]
        mshr.data_version = msg.version
        if mshr.state in ("IS_D", "IS_D_I"):
            if mshr.state == "IS_D_I":
                # Invalidation raced our GetS: use the value once.
                self._complete(msg.block, None, cycle)
            else:
                state = "E" if msg.mtype is MessageType.DATA_E else "S"
                self._complete(msg.block, L1Line(state, msg.version), cycle)
            return
        # IM_AD / SM_AD
        mshr.acks_needed = msg.ack_count
        self._maybe_finish_store(msg.block, cycle)

    def _on_ack_count(self, msg: CoherenceMessage, cycle: int) -> None:
        mshr = self.mshrs[msg.block]
        # Upgrade without data: current S copy's version carries over.
        line = self.cache.lookup(msg.block, touch=False)
        mshr.data_version = msg.version if line is None else line.version
        mshr.acks_needed = msg.ack_count
        self._maybe_finish_store(msg.block, cycle)

    def _on_inv_ack(self, msg: CoherenceMessage, cycle: int) -> None:
        mshr = self.mshrs[msg.block]
        mshr.acks_got += 1
        self._maybe_finish_store(msg.block, cycle)

    def _maybe_finish_store(self, block: int, cycle: int) -> None:
        mshr = self.mshrs[block]
        if mshr.acks_needed is None or mshr.acks_got < mshr.acks_needed:
            return
        if mshr.data_version is None:
            return
        self._complete(block, L1Line("M", mshr.data_version + 1), cycle)

    # --- invalidations and forwards -------------------------------------
    def _on_inv(self, msg: CoherenceMessage, cycle: int) -> None:
        self.invalidations_received += 1
        mshr = self.mshrs.get(msg.block)
        if mshr is not None:
            if mshr.state == "SM_AD":
                # We lost our S copy while upgrading; data now required.
                self.cache.remove(msg.block)
                mshr.state = "IM_AD"
            elif mshr.state == "IS_D":
                mshr.state = "IS_D_I"
        else:
            self.cache.remove(msg.block)
        ack = CoherenceMessage(
            MessageType.INV_ACK, msg.block, sender=self.node, requester=msg.requester
        )
        self._send(ack, msg.requester, cycle)

    def _on_fwd(self, msg: CoherenceMessage, cycle: int) -> None:
        block = msg.block
        mshr = self.mshrs.get(block)
        if mshr is not None:
            # A forward racing our own in-flight transaction: we may be
            # the owner-elect whose data has not arrived yet (even an
            # IS_D load can be about to receive DataExclusive), so the
            # only safe response is to buffer the forward and service
            # it when the transaction completes.  If we turn out not to
            # own the block, the deferred service NACKs then.
            mshr.deferred.append(msg)
            return
        wb = self.wb_buffers.get(block)
        if wb is not None:
            # Forward raced our writeback (PutM in flight).
            if msg.mtype is MessageType.FWD_GETM:
                # Serve the new owner from the WB buffer; our stale
                # PutM will only be acked by the home.
                self._serve_forward(msg, wb.version, cycle)
                wb.forwarded = True
            # FWD_GETS: stay silent — the home is blocking on this
            # block and our in-flight PutM carries the data it needs
            # to complete the GetS itself (single data source).
            return
        line = self.cache.lookup(block, touch=False)
        if line is None or line.state == "S":
            # Truly stale forward (we dropped the block cleanly); tell
            # the home to serve from its own copy.  ack_count encodes
            # which kind of forward this answers so the home can tell
            # concurrent GetS/GetM transactions apart.
            nack = CoherenceMessage(
                MessageType.FWD_NACK,
                block,
                sender=self.node,
                requester=msg.requester,
                ack_count=1 if msg.mtype is MessageType.FWD_GETM else 0,
            )
            self._send(nack, self.home_of(block), cycle)
            return
        self._serve_forward(msg, line.version, cycle)
        if msg.mtype is MessageType.FWD_GETM:
            self.cache.remove(block)
        else:
            line.state = "S"

    def _serve_forward(self, msg: CoherenceMessage, version: int, cycle: int) -> None:
        data = CoherenceMessage(
            MessageType.DATA,
            msg.block,
            sender=self.node,
            requester=msg.requester,
            version=version,
        )
        self._send(data, msg.requester, cycle)
        if msg.mtype is MessageType.FWD_GETS:
            copy = CoherenceMessage(
                MessageType.OWNER_DATA,
                msg.block,
                sender=self.node,
                requester=msg.requester,
                version=version,
            )
            self._send(copy, self.home_of(msg.block), cycle)

    def _on_wb_ack(self, msg: CoherenceMessage, cycle: int) -> None:
        self.wb_buffers.pop(msg.block, None)

    # ------------------------------------------------------------------
    # Completion and eviction
    # ------------------------------------------------------------------
    def _complete(self, block: int, line: Optional[L1Line], cycle: int) -> None:
        mshr = self.mshrs.pop(block)
        if line is not None:
            self._insert(block, line, cycle)
        if self.on_complete is not None:
            self.on_complete(block, cycle)
        for fwd in mshr.deferred:
            self._on_fwd(fwd, cycle)

    def _insert(self, block: int, line: L1Line, cycle: int) -> None:
        victim = self.cache.victim_for(
            block, evictable=lambda b: b not in self.mshrs
        )
        if victim is not None:
            vblock, vline = victim
            self._evict(vblock, vline, cycle)
        self.cache.insert(block, line)

    def _evict(self, block: int, line: L1Line, cycle: int) -> None:
        self.evictions += 1
        self.cache.remove(block)
        home = self.home_of(block)
        if line.state == "M":
            self.wb_buffers[block] = WBEntry(version=line.version)
            msg = CoherenceMessage(
                MessageType.PUTM,
                block,
                sender=self.node,
                requester=self.node,
                version=line.version,
            )
        else:
            msg = CoherenceMessage(
                MessageType.PUTS, block, sender=self.node, requester=self.node
            )
        self._send(msg, home, cycle)

    # ------------------------------------------------------------------
    def state_of(self, block: int) -> str:
        """Stable or transient state name for tests/debugging."""
        if block in self.mshrs:
            return self.mshrs[block].state
        if block in self.wb_buffers:
            return "MI_WB"
        line = self.cache.lookup(block, touch=False)
        return line.state if line is not None else "I"
