"""Synthetic per-core memory access streams.

The paper drives its NoC with multi-threaded PARSEC benchmarks under
gem5.  We substitute parameterized access streams whose knobs map to
the workload properties that matter for NoC power-gating:

* ``mem_op_fraction`` — how often the core touches memory (sets the
  compute gap between accesses);
* ``cold_fraction`` — probability a private access misses the L1
  (drawn from a large cold pool rather than the cache-resident hot
  pool), the main injection-rate control;
* ``shared_fraction`` / ``write_fraction`` — coherence traffic: shared
  writes invalidate other cores' copies and create forward/ack
  traffic on the other virtual networks;
* ``comm_accesses`` / ``compute_accesses`` — phase alternation, which
  produces the bursty idle/busy pattern that makes router power-gating
  worthwhile in the first place.

Streams are deterministic given (core_id, seed).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, Tuple

#: Address-space carving (block numbers).
_PRIVATE_STRIDE = 1 << 24
_SHARED_BASE = 1 << 44


@dataclass(frozen=True)
class StreamProfile:
    """Workload knobs for one core's access stream."""

    mem_op_fraction: float = 0.3
    cold_fraction: float = 0.01
    shared_fraction: float = 0.15
    write_fraction: float = 0.3
    hot_blocks: int = 256
    cold_blocks: int = 65536
    shared_blocks: int = 2048
    #: Accesses per communication / compute phase (0 disables phases).
    comm_accesses: int = 64
    compute_accesses: int = 192
    #: Multiplier on the compute gap during compute phases.
    compute_gap_boost: float = 3.0
    #: Fraction of misses the core can overlap with further progress
    #: (store buffers, prefetch-like accesses); the rest block retire.
    overlap_fraction: float = 0.7

    def __post_init__(self) -> None:
        if not (0.0 < self.mem_op_fraction <= 1.0):
            raise ValueError("mem_op_fraction must be in (0, 1]")
        for name in ("cold_fraction", "shared_fraction", "write_fraction"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1]")

    @property
    def mean_gap(self) -> float:
        """Mean compute instructions between memory operations."""
        return (1.0 - self.mem_op_fraction) / self.mem_op_fraction


class AccessStream:
    """Deterministic (gap, block, is_write) generator for one core."""

    def __init__(self, core_id: int, profile: StreamProfile, seed: int = 1) -> None:
        self.core_id = core_id
        self.profile = profile
        self.rng = random.Random((seed << 20) ^ core_id)
        self._phase_comm = True
        self._phase_left = profile.comm_accesses or 1
        self._private_base = core_id * _PRIVATE_STRIDE
        self.accesses_generated = 0

    # ------------------------------------------------------------------
    def next_access(self) -> Tuple[int, int, bool]:
        """Return (compute_gap, block, is_write) for the next access."""
        p = self.profile
        rng = self.rng
        in_comm = self._advance_phase()

        shared_prob = p.shared_fraction * (2.0 if in_comm else 0.5)
        if rng.random() < min(1.0, shared_prob):
            block = _SHARED_BASE + rng.randrange(p.shared_blocks)
        elif rng.random() < p.cold_fraction:
            block = self._private_base + p.hot_blocks + rng.randrange(p.cold_blocks)
        else:
            block = self._private_base + rng.randrange(p.hot_blocks)

        is_write = rng.random() < p.write_fraction
        gap = self._draw_gap(in_comm)
        self.accesses_generated += 1
        return gap, block, is_write

    def _advance_phase(self) -> bool:
        p = self.profile
        if p.comm_accesses <= 0 or p.compute_accesses <= 0:
            return True
        self._phase_left -= 1
        if self._phase_left <= 0:
            self._phase_comm = not self._phase_comm
            self._phase_left = (
                p.comm_accesses if self._phase_comm else p.compute_accesses
            )
        return self._phase_comm

    def _draw_gap(self, in_comm: bool) -> int:
        mean = self.profile.mean_gap
        if not in_comm:
            mean *= self.profile.compute_gap_boost
        if mean <= 0:
            return 0
        # Geometric(p) with p = 1/(1+mean) has exactly the target mean.
        p = 1.0 / (1.0 + mean)
        u = self.rng.random()
        if u <= 0.0:
            return 0
        gap = int(math.log(u) / math.log(1.0 - p))
        return min(gap, 10_000)

    def __iter__(self) -> Iterator[Tuple[int, int, bool]]:
        while True:
            yield self.next_access()
