"""In-order core model.

One instruction per cycle while computing; a memory operation accesses
the L1 (hits cost the issue cycle, as in the paper's 1-cycle L1) and a
miss blocks the core until the coherence transaction completes.  This
blocking behaviour is what closes the loop between NoC latency and
execution time: every cycle a packet waits on a gated-off router is a
cycle the requesting core makes no progress — the paper's Fig. 8
execution-time penalty emerges from exactly this coupling.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .l1 import L1Controller
from .memtrace import AccessStream


class Core:
    """One blocking in-order core."""

    def __init__(
        self,
        node: int,
        l1: L1Controller,
        stream: AccessStream,
        quota: int,
    ) -> None:
        self.node = node
        self.l1 = l1
        self.stream = stream
        #: Total instructions (compute + memory ops) to retire.
        self.quota = quota
        self.retired = 0
        self.stall_cycles = 0
        self.done_at: Optional[int] = None
        self._gap_remaining, self._next_block, self._next_write = stream.next_access()
        self._waiting_on: Optional[int] = None
        self._structural_retry: Optional[Tuple[int, bool]] = None
        l1.on_complete = self._on_miss_complete
        # statistics
        self.mem_ops = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the core has retired its instruction quota."""
        return self.done_at is not None

    @property
    def is_stalled(self) -> bool:
        """Whether the core is blocked on an outstanding miss."""
        return self._waiting_on is not None

    # ------------------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Advance one cycle: compute, issue a memory op, or stall."""
        if self.done:
            return
        if self._waiting_on is not None:
            self.stall_cycles += 1
            return
        if self._gap_remaining > 0:
            # Compute instructions retire one per cycle.
            self._gap_remaining -= 1
            self._retire(cycle)
            return
        self._issue_memory_op(cycle)

    def _issue_memory_op(self, cycle: int) -> None:
        if self._structural_retry is not None:
            block, is_write = self._structural_retry
        else:
            block, is_write = self._next_block, self._next_write
        if not self.l1.can_accept(block):
            # e.g. our own writeback of this block is still in flight.
            self._structural_retry = (block, is_write)
            self.stall_cycles += 1
            return
        self._structural_retry = None
        self.mem_ops += 1
        hit = self.l1.access(block, is_write, cycle)
        if hit:
            self._retire(cycle)
            self._load_next_access()
        else:
            self.misses += 1
            overlap = self.stream.profile.overlap_fraction
            if overlap > 0.0 and self.stream.rng.random() < overlap:
                # Miss overlapped with execution (store buffer /
                # prefetch-like): the core keeps retiring.
                self._retire(cycle)
                self._load_next_access()
            else:
                self._waiting_on = block

    def _on_miss_complete(self, block: int, cycle: int) -> None:
        if block != self._waiting_on:
            return
        self._waiting_on = None
        self._retire(cycle)
        self._load_next_access()

    def _load_next_access(self) -> None:
        self._gap_remaining, self._next_block, self._next_write = (
            self.stream.next_access()
        )

    def _retire(self, cycle: int) -> None:
        self.retired += 1
        if self.retired >= self.quota:
            self.done_at = cycle
