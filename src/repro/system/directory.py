"""Shared-L2 bank + directory controller (the *home* of a block).

One bank lives at every node (16 MB shared L2 across 64 nodes, paper
Sec. 5); the directory is full-map and co-located.  The directory is
blocking only where it must be (GetS forwarded to an owner, memory
fetches); ownership handoffs on GetM are non-blocking and rely on the
L1-side deferred-forward chain.

The L2 data array is a finite set-associative cache; directory state is
kept exactly for every block (a "perfect" directory — DESIGN.md notes
this substitution).  Dirty L2 victims are written back to the memory
controller that owns the block.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional, Set

from .cache import SetAssociativeCache
from .messages import CoherenceMessage, MessageType


@dataclass
class L2Line:
    """One L2 data line: version and dirty bit."""
    version: int
    dirty: bool = False


@dataclass
class DirEntry:
    """Directory state for one block: owner, sharers, blocking context."""
    owner: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)
    busy: bool = False
    #: Context of the in-flight blocking operation:
    #: ("gets_fwd", requester, owner) or ("mem_gets"/"mem_getm",
    #: requester, ack_count).
    pending: Optional[tuple] = None
    waiting: Deque[CoherenceMessage] = field(default_factory=deque)

    def idle(self) -> bool:
        """Whether this entry carries no state worth keeping."""
        return (
            self.owner is None
            and not self.sharers
            and not self.busy
            and not self.waiting
        )


class DirectoryController:
    """Home-node coherence engine for the blocks this node owns."""

    def __init__(
        self,
        node: int,
        mc_of: Callable[[int], int],
        send: Callable[[CoherenceMessage, int, int], None],
        l2_size_bytes: int = 256 * 1024,
        l2_ways: int = 16,
    ) -> None:
        self.node = node
        self.mc_of = mc_of
        self._send = send
        self.l2: SetAssociativeCache[L2Line] = SetAssociativeCache(
            l2_size_bytes, l2_ways
        )
        self.entries: Dict[int, DirEntry] = {}
        #: Memory-fetch contexts per block: (kind, requester, acks,
        #: blocking).  Kept outside DirEntry.pending so a chained
        #: non-blocking fetch can coexist with a blocking transaction.
        self._fetches: Dict[int, Deque[tuple]] = {}
        # statistics
        self.requests_served = 0
        self.memory_fetches = 0
        self.forwards_sent = 0
        self.invalidations_sent = 0

    # ------------------------------------------------------------------
    def entry(self, block: int) -> DirEntry:
        """The (possibly fresh) directory entry for a block."""
        e = self.entries.get(block)
        if e is None:
            e = DirEntry()
            self.entries[block] = e
        return e

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle(self, msg: CoherenceMessage, cycle: int) -> None:
        """Dispatch one incoming protocol message."""
        mtype = msg.mtype
        if mtype in (MessageType.GETS, MessageType.GETM):
            self._on_request(msg, cycle)
        elif mtype is MessageType.PUTM:
            self._on_putm(msg, cycle)
        elif mtype is MessageType.PUTS:
            self._on_puts(msg, cycle)
        elif mtype is MessageType.OWNER_DATA:
            self._on_owner_data(msg, cycle)
        elif mtype is MessageType.FWD_NACK:
            self._on_fwd_nack(msg, cycle)
        elif mtype is MessageType.MEM_DATA:
            self._on_mem_data(msg, cycle)
        else:  # pragma: no cover - protocol hole guard
            raise RuntimeError(f"directory {self.node} cannot handle {msg}")

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _on_request(self, msg: CoherenceMessage, cycle: int) -> None:
        entry = self.entry(msg.block)
        if entry.busy:
            entry.waiting.append(msg)
            return
        self.requests_served += 1
        if msg.mtype is MessageType.GETS:
            self._serve_gets(entry, msg, cycle)
        else:
            self._serve_getm(entry, msg, cycle)

    def _serve_gets(self, entry: DirEntry, msg: CoherenceMessage, cycle: int) -> None:
        block, req = msg.block, msg.requester
        if entry.owner is not None:
            # Owner may hold a newer (M) copy: forward and wait for the
            # owner's copy so the L2 is refreshed too.
            entry.busy = True
            entry.pending = ("gets_fwd", req, entry.owner)
            self.forwards_sent += 1
            fwd = CoherenceMessage(
                MessageType.FWD_GETS, block, sender=self.node, requester=req
            )
            self._send(fwd, entry.owner, cycle)
            return
        line = self.l2.lookup(block)
        if line is None:
            self._start_memory_fetch(entry, msg, cycle, kind="mem_gets", acks=0)
            return
        if entry.sharers:
            entry.sharers.add(req)
            self._send_data(MessageType.DATA, block, req, line.version, 0, cycle)
        else:
            entry.owner = req
            self._send_data(MessageType.DATA_E, block, req, line.version, 0, cycle)

    def _serve_getm(self, entry: DirEntry, msg: CoherenceMessage, cycle: int) -> None:
        block, req = msg.block, msg.requester
        if entry.owner is not None and entry.owner != req:
            # Non-blocking ownership handoff: the old owner sends data
            # straight to the requester (or NACKs if it raced an evict).
            self.forwards_sent += 1
            fwd = CoherenceMessage(
                MessageType.FWD_GETM, block, sender=self.node, requester=req
            )
            self._send(fwd, entry.owner, cycle)
            entry.owner = req
            return
        others = entry.sharers - {req}
        for sharer in others:
            self.invalidations_sent += 1
            inv = CoherenceMessage(
                MessageType.INV, block, sender=self.node, requester=req
            )
            self._send(inv, sharer, cycle)
        requester_had_copy = req in entry.sharers
        entry.sharers = set()
        entry.owner = req
        if requester_had_copy:
            # Upgrade: no data needed.
            ack = CoherenceMessage(
                MessageType.ACK_COUNT,
                block,
                sender=self.node,
                requester=req,
                ack_count=len(others),
            )
            self._send(ack, req, cycle)
            return
        line = self.l2.lookup(block)
        if line is None:
            self._start_memory_fetch(
                entry, msg, cycle, kind="mem_getm", acks=len(others)
            )
            return
        self._send_data(MessageType.DATA, block, req, line.version, len(others), cycle)

    # ------------------------------------------------------------------
    # Writebacks and owner copies
    # ------------------------------------------------------------------
    def _on_putm(self, msg: CoherenceMessage, cycle: int) -> None:
        entry = self.entry(msg.block)
        if entry.busy and entry.pending and entry.pending[0] == "gets_fwd":
            kind, req, owner = entry.pending
            if msg.sender == owner:
                # The owner's writeback raced our Fwd_GetS and carries
                # the data we were waiting for: complete the GetS here.
                self._install(msg.block, msg.version, dirty=True, cycle=cycle)
                entry.owner = None
                entry.sharers = {req}
                self._send_data(
                    MessageType.DATA, msg.block, req, msg.version, 0, cycle
                )
                self._ack_writeback(msg, cycle)
                self._finish(entry, cycle)
                return
        if msg.sender == entry.owner:
            self._install(msg.block, msg.version, dirty=True, cycle=cycle)
            entry.owner = None
        # A stale PutM (ownership already moved on) is only acked; its
        # data may be older than the current owner's copy.
        self._ack_writeback(msg, cycle)

    def _ack_writeback(self, msg: CoherenceMessage, cycle: int) -> None:
        ack = CoherenceMessage(
            MessageType.WB_ACK, msg.block, sender=self.node, requester=msg.sender
        )
        self._send(ack, msg.sender, cycle)

    def _on_puts(self, msg: CoherenceMessage, cycle: int) -> None:
        entry = self.entry(msg.block)
        entry.sharers.discard(msg.sender)
        if entry.owner == msg.sender:
            # Clean E copy dropped.
            entry.owner = None

    def _on_owner_data(self, msg: CoherenceMessage, cycle: int) -> None:
        entry = self.entry(msg.block)
        assert entry.busy and entry.pending[0] == "gets_fwd", msg
        _, req, owner = entry.pending
        self._install(msg.block, msg.version, dirty=True, cycle=cycle)
        entry.owner = None
        entry.sharers = {owner, req}
        self._finish(entry, cycle)

    def _on_fwd_nack(self, msg: CoherenceMessage, cycle: int) -> None:
        """The forwarded-to owner no longer had the block (clean drop).

        ``ack_count`` says which forward this answers: 0 = Fwd_GetS,
        1 = Fwd_GetM.  A GetS NACK that no longer matches the blocking
        transaction is stale (the owner's racing PutM already completed
        it) and must be ignored; a GetM NACK always means the new owner
        is still waiting for data.
        """
        entry = self.entry(msg.block)
        req = msg.requester
        line = self.l2.lookup(msg.block)
        if msg.ack_count == 0:
            matches = (
                entry.busy
                and entry.pending
                and entry.pending[0] == "gets_fwd"
                and entry.pending[1] == req
            )
            if not matches:
                return  # stale: the PutM race already served this GetS
            entry.owner = None
            if line is None:
                fake = CoherenceMessage(
                    MessageType.GETS, msg.block, sender=req, requester=req
                )
                entry.busy = False
                self._start_memory_fetch(entry, fake, cycle, "mem_gets", 0)
                return
            entry.sharers = {req}
            self._send_data(MessageType.DATA, msg.block, req, line.version, 0, cycle)
            self._finish(entry, cycle)
            return
        # GetM handoff NACK: the requester owns the block but has no
        # data.
        fake = CoherenceMessage(
            MessageType.GETM, msg.block, sender=req, requester=req
        )
        if entry.busy:
            if entry.pending[0] == "gets_fwd" and entry.pending[2] == req:
                # The blocking GetS is itself waiting for this very
                # requester's data — queueing would deadlock.  Serve the
                # data out-of-band; the requester will then answer the
                # pending Fwd_GetS it deferred.
                if line is None:
                    self._start_memory_fetch(
                        entry, fake, cycle, "chain_data", 0, blocking=False
                    )
                else:
                    self._send_data(
                        MessageType.DATA, msg.block, req, line.version, 0, cycle
                    )
                return
            entry.waiting.append(fake)
            return
        if line is None:
            self._start_memory_fetch(entry, fake, cycle, "mem_getm", 0)
            return
        self._send_data(MessageType.DATA, msg.block, req, line.version, 0, cycle)

    # ------------------------------------------------------------------
    # Memory path
    # ------------------------------------------------------------------
    def _start_memory_fetch(
        self,
        entry: DirEntry,
        msg: CoherenceMessage,
        cycle: int,
        kind: str,
        acks: int,
        blocking: bool = True,
    ) -> None:
        if blocking:
            entry.busy = True
            entry.pending = (kind, msg.requester, acks)
        self._fetches.setdefault(msg.block, deque()).append(
            (kind, msg.requester, acks, blocking)
        )
        self.memory_fetches += 1
        read = CoherenceMessage(
            MessageType.MEM_READ, msg.block, sender=self.node, requester=msg.requester
        )
        self._send(read, self.mc_of(msg.block), cycle)

    def _on_mem_data(self, msg: CoherenceMessage, cycle: int) -> None:
        entry = self.entry(msg.block)
        queue = self._fetches[msg.block]
        kind, req, acks, blocking = queue.popleft()
        if not queue:
            del self._fetches[msg.block]
        self._install(msg.block, msg.version, dirty=False, cycle=cycle)
        if kind == "mem_gets":
            if entry.sharers:
                entry.sharers.add(req)
                self._send_data(
                    MessageType.DATA, msg.block, req, msg.version, 0, cycle
                )
            else:
                entry.owner = req
                self._send_data(
                    MessageType.DATA_E, msg.block, req, msg.version, 0, cycle
                )
        elif kind == "mem_getm":
            entry.owner = req
            self._send_data(MessageType.DATA, msg.block, req, msg.version, acks, cycle)
        else:  # chain_data: owner already set; just deliver the bits.
            self._send_data(MessageType.DATA, msg.block, req, msg.version, acks, cycle)
        if blocking:
            self._finish(entry, cycle)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _send_data(
        self,
        mtype: MessageType,
        block: int,
        dest: int,
        version: int,
        acks: int,
        cycle: int,
    ) -> None:
        msg = CoherenceMessage(
            mtype,
            block,
            sender=self.node,
            requester=dest,
            ack_count=acks,
            version=version,
        )
        self._send(msg, dest, cycle)

    def _install(self, block: int, version: int, dirty: bool, cycle: int) -> None:
        line = self.l2.lookup(block)
        if line is not None:
            if version >= line.version:
                line.version = version
                line.dirty = line.dirty or dirty
            return
        victim = self.l2.victim_for(block, evictable=self._l2_evictable)
        if victim is not None:
            vblock, vline = victim
            self.l2.remove(vblock)
            if vline.dirty:
                wb = CoherenceMessage(
                    MessageType.MEM_WRITE,
                    vblock,
                    sender=self.node,
                    requester=self.node,
                    version=vline.version,
                )
                self._send(wb, self.mc_of(vblock), cycle)
        self.l2.insert(block, L2Line(version=version, dirty=dirty))

    def _l2_evictable(self, block: int) -> bool:
        entry = self.entries.get(block)
        return entry is None or not entry.busy

    def _finish(self, entry: DirEntry, cycle: int) -> None:
        entry.busy = False
        entry.pending = None
        # Drain queued requests until one blocks the entry again (GetM
        # handoffs are non-blocking, so several may complete at once).
        while entry.waiting and not entry.busy:
            nxt = entry.waiting.popleft()
            self.requests_served += 1
            if nxt.mtype is MessageType.GETS:
                self._serve_gets(entry, nxt, cycle)
            else:
                self._serve_getm(entry, nxt, cycle)
