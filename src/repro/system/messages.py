"""Coherence protocol messages.

The evaluated system runs a two-level MESI protocol over three virtual
networks (paper Sec. 5, Table 2).  Message-class-to-VN mapping follows
the standard deadlock-free assignment:

* ``REQUEST``  (VN0): GetS / GetM / PutS / PutM and memory requests;
* ``FORWARD``  (VN1): Fwd_GetS / Fwd_GetM / Inv sent by the directory;
* ``RESPONSE`` (VN2): Data / acks — always sinkable, terminating the
  dependence chain.

Messages carrying a 64-byte cache block are 5 flits on the 128-bit
links; everything else is a single control flit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..noc.packet import (
    CONTROL_PACKET_FLITS,
    DATA_PACKET_FLITS,
    Packet,
    VirtualNetwork,
)


class MessageType(enum.Enum):
    # Requests (VN0)
    """Protocol message kinds with their VN and size attributes."""
    GETS = "GetS"
    GETM = "GetM"
    PUTS = "PutS"
    PUTM = "PutM"
    MEM_READ = "MemRead"
    MEM_WRITE = "MemWrite"
    # Forwards (VN1)
    FWD_GETS = "Fwd_GetS"
    FWD_GETM = "Fwd_GetM"
    INV = "Inv"
    # Responses (VN2)
    DATA = "Data"
    DATA_E = "DataExclusive"
    #: Owner's copy of the block sent to the home on a Fwd_GetS, so the
    #: L2 regains an up-to-date copy.
    OWNER_DATA = "OwnerData"
    ACK_COUNT = "AckCount"
    INV_ACK = "InvAck"
    WB_ACK = "WbAck"
    FWD_NACK = "FwdNack"
    MEM_DATA = "MemData"

    @property
    def vnet(self) -> VirtualNetwork:
        """Virtual network this message class travels on."""
        return _VNET[self]

    @property
    def carries_data(self) -> bool:
        """Whether the message carries a cache block (5 flits)."""
        return self in _DATA_MESSAGES


_VNET = {
    MessageType.GETS: VirtualNetwork.REQUEST,
    MessageType.GETM: VirtualNetwork.REQUEST,
    MessageType.PUTS: VirtualNetwork.REQUEST,
    MessageType.PUTM: VirtualNetwork.REQUEST,
    MessageType.MEM_READ: VirtualNetwork.REQUEST,
    MessageType.MEM_WRITE: VirtualNetwork.REQUEST,
    MessageType.FWD_GETS: VirtualNetwork.FORWARD,
    MessageType.FWD_GETM: VirtualNetwork.FORWARD,
    MessageType.INV: VirtualNetwork.FORWARD,
    MessageType.DATA: VirtualNetwork.RESPONSE,
    MessageType.DATA_E: VirtualNetwork.RESPONSE,
    MessageType.OWNER_DATA: VirtualNetwork.RESPONSE,
    MessageType.ACK_COUNT: VirtualNetwork.RESPONSE,
    MessageType.INV_ACK: VirtualNetwork.RESPONSE,
    MessageType.WB_ACK: VirtualNetwork.RESPONSE,
    MessageType.FWD_NACK: VirtualNetwork.RESPONSE,
    MessageType.MEM_DATA: VirtualNetwork.RESPONSE,
}

_DATA_MESSAGES = {
    MessageType.PUTM,
    MessageType.MEM_WRITE,
    MessageType.DATA,
    MessageType.DATA_E,
    MessageType.OWNER_DATA,
    MessageType.MEM_DATA,
}


@dataclass
class CoherenceMessage:
    """One protocol message; travels as the payload of a NoC packet."""

    mtype: MessageType
    block: int
    sender: int
    #: The L1 that initiated the transaction this message belongs to
    #: (used to route forwarded data and acks).
    requester: Optional[int] = None
    #: For ACK_COUNT/DATA under GetM: invalidations the requester must
    #: collect before completing.
    ack_count: int = 0
    #: Block version, for coherence-correctness checking in tests.
    version: int = 0

    @property
    def size_flits(self) -> int:
        """Packet size in flits for this message."""
        return DATA_PACKET_FLITS if self.mtype.carries_data else CONTROL_PACKET_FLITS

    def to_packet(self, source: int, destination: int, cycle: int) -> Packet:
        """Wrap the message into a NoC packet."""
        return Packet(
            source=source,
            destination=destination,
            vnet=self.mtype.vnet,
            size_flits=self.size_flits,
            created_at=cycle,
            payload=self,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.mtype.value}(blk={self.block} from={self.sender} "
            f"req={self.requester} acks={self.ack_count} v={self.version})"
        )
