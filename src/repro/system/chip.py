"""Full-chip assembly: cores + L1s + L2/directory banks + MCs on the NoC.

This is the closed-loop substitute for the paper's gem5 full-system
setup: every L1 miss becomes a MESI transaction whose messages travel
through the simulated NoC under the configured power-gating scheme, and
the requesting core stalls until the transaction completes.  Execution
time (the paper's Fig. 8 metric) is the cycle at which every core has
retired its instruction quota.

Timing per Table 2: 1-cycle L1 (folded into the core's issue cycle),
6-cycle L2/directory access, 128-cycle memory, 3-cycle NI, four memory
controllers at the mesh corners, block addresses interleaved across the
64 L2 banks.

Slack-2 wiring: when a request arrives at a home node, the directory's
L2 access is about to produce a response message — the NI early notice
fires right there, giving Power Punch-PG its ~6 cycles of local-router
wakeup slack (valid bit 1 for L2/directory, 0 for L1-sourced requests,
exactly as in the paper's Sec. 4.2).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..noc.config import NoCConfig
from ..noc.network import Network
from ..noc.packet import Packet
from ..noc.policy import PowerPolicy
from .cpu import Core
from .directory import DirectoryController
from .l1 import L1Controller
from .memctrl import Memory, MemoryController
from .memtrace import AccessStream, StreamProfile
from .messages import CoherenceMessage, MessageType

#: Processing latencies (cycles) applied when a message reaches a node.
L2_ACCESS_LATENCY = 6
L1_PROCESS_LATENCY = 1
RESPONSE_PROCESS_LATENCY = 1
#: Latency of a message that never enters the NoC (same-node L1<->L2).
LOCAL_HOP_LATENCY = 2

_DIRECTORY_TYPES = frozenset(
    {
        MessageType.GETS,
        MessageType.GETM,
        MessageType.PUTS,
        MessageType.PUTM,
        MessageType.OWNER_DATA,
        MessageType.FWD_NACK,
        MessageType.MEM_DATA,
    }
)
_MC_TYPES = frozenset({MessageType.MEM_READ, MessageType.MEM_WRITE})
#: Request types whose arrival at the home implies a response will be
#: generated after the L2 access — the slack-2 notice point.
_NOTICE_TYPES = frozenset(
    {MessageType.GETS, MessageType.GETM, MessageType.PUTM}
)


@dataclass
class ChipResult:
    """Outcome of one full-system run."""

    benchmark: str
    scheme: str
    execution_time: int
    avg_packet_latency: float
    avg_total_latency: float
    avg_blocked_routers: float
    avg_wakeup_wait: float
    injection_rate: float
    l1_miss_rate: float
    packets: int
    cycles: int


class Chip:
    """A mesh CMP running a synthetic multi-threaded workload."""

    def __init__(
        self,
        config: NoCConfig,
        policy: PowerPolicy,
        profile: StreamProfile,
        instructions_per_core: int = 3000,
        seed: int = 1,
        memory_latency: int = 128,
        benchmark: str = "custom",
        warm_caches: bool = True,
    ) -> None:
        self.config = config
        self.network = Network(config, policy)
        self.benchmark = benchmark
        n = config.num_nodes
        w, h = config.width, config.height
        self.mc_nodes = [0, w - 1, (h - 1) * w, h * w - 1]
        self.memory = Memory()

        #: Pending (ready_cycle, seq, node, message) controller work.
        self._work: List[Tuple[int, int, int, CoherenceMessage]] = []
        self._seq = 0

        def home_of(block: int) -> int:
            return block % n

        def mc_of(block: int) -> int:
            return self.mc_nodes[block % len(self.mc_nodes)]

        self.home_of = home_of
        self.l1s: List[L1Controller] = []
        self.directories: List[DirectoryController] = []
        self.mcs: Dict[int, MemoryController] = {}
        self.cores: List[Core] = []

        for node in range(n):
            sender = self._make_sender(node)
            self.l1s.append(L1Controller(node, home_of, sender))
            self.directories.append(
                DirectoryController(node, mc_of, sender, l2_ways=16)
            )
            stream = AccessStream(node, profile, seed=seed)
            self.cores.append(
                Core(node, self.l1s[node], stream, quota=instructions_per_core)
            )
        for node in self.mc_nodes:
            ni = self.network.interfaces[node]
            self.mcs[node] = MemoryController(
                node,
                self.memory,
                self._make_sender(node),
                latency=memory_latency,
                early_notice=lambda cycle, ni=ni: ni.early_notice(cycle),
            )
        self.network.add_delivery_listener(self._on_packet_delivered)
        self._cores_remaining = n
        self.execution_time: Optional[int] = None
        if warm_caches:
            self._warm_caches(profile)

    def _warm_caches(self, profile: StreamProfile) -> None:
        """Pre-install each core's hot working set and the shared pool.

        Removes compulsory first-touch misses so the measured run
        reflects steady-state behaviour (the paper collects statistics
        from PARSEC regions of interest, not cold caches).
        """
        from .l1 import L1Line
        from .directory import L2Line
        from .memtrace import _PRIVATE_STRIDE, _SHARED_BASE

        for node, l1 in enumerate(self.l1s):
            base = node * _PRIVATE_STRIDE
            for i in range(profile.hot_blocks):
                block = base + i
                l1.cache.insert(block, L1Line("E", 0))
                home = self.directories[self.home_of(block)]
                home.entry(block).owner = node
                home.l2.insert(block, L2Line(version=0, dirty=False))
        for i in range(profile.shared_blocks):
            block = _SHARED_BASE + i
            self.directories[self.home_of(block)].l2.insert(
                block, L2Line(version=0, dirty=False)
            )

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------
    def _make_sender(self, node: int) -> Callable[[CoherenceMessage, int, int], None]:
        def send(msg: CoherenceMessage, dest: int, cycle: int) -> None:
            if dest == node:
                # Same-node hop (e.g. the home bank is local): bypass
                # the NoC with a short fixed latency.
                self._schedule(dest, msg, cycle + LOCAL_HOP_LATENCY, cycle)
            else:
                self.network.inject(msg.to_packet(node, dest, cycle))

        return send

    def _on_packet_delivered(self, packet: Packet, cycle: int) -> None:
        msg = packet.payload
        if not isinstance(msg, CoherenceMessage):
            return
        self._schedule(packet.destination, msg, cycle, cycle)

    def _schedule(
        self, node: int, msg: CoherenceMessage, arrival: int, cycle: int
    ) -> None:
        if msg.mtype in _MC_TYPES:
            ready = arrival  # the MC applies its own latency
        elif msg.mtype in _DIRECTORY_TYPES:
            if msg.mtype in (MessageType.GETS, MessageType.GETM, MessageType.PUTM,
                             MessageType.PUTS):
                ready = arrival + L2_ACCESS_LATENCY
                if msg.mtype in _NOTICE_TYPES:
                    # Slack 2: a response will leave this node's NI in
                    # ~L2_ACCESS_LATENCY cycles.
                    self.network.interfaces[node].early_notice(cycle)
            else:
                ready = arrival + RESPONSE_PROCESS_LATENCY
        else:
            ready = arrival + L1_PROCESS_LATENCY
        heapq.heappush(self._work, (ready, self._seq, node, msg))
        self._seq += 1

    def _process_work(self, cycle: int) -> None:
        work = self._work
        while work and work[0][0] <= cycle:
            _ready, _seq, node, msg = heapq.heappop(work)
            if msg.mtype in _MC_TYPES:
                self.mcs[node].handle(msg, cycle)
            elif msg.mtype in _DIRECTORY_TYPES:
                self.directories[node].handle(msg, cycle)
            else:
                self.l1s[node].handle(msg, cycle)

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the chip one cycle: controllers, MCs, cores, network."""
        cycle = self.network.cycle
        self._process_work(cycle)
        for mc in self.mcs.values():
            mc.step(cycle)
        for core in self.cores:
            core.step(cycle)
        self.network.step()

    def run(self, max_cycles: int = 2_000_000) -> ChipResult:
        """Run until every core retires its quota; return the results."""
        while self.execution_time is None:
            if self.network.cycle >= max_cycles:
                self._dump_stall_state()
                raise RuntimeError(
                    f"chip did not finish within {max_cycles} cycles"
                )
            self.step()
            if all(core.done for core in self.cores):
                self.execution_time = self.network.cycle
        return self.result()

    def result(self) -> ChipResult:
        """Summarize the run (execution time, NoC and cache statistics)."""
        stats = self.network.stats
        mem_ops = sum(c.mem_ops for c in self.cores)
        misses = sum(c.misses for c in self.cores)
        cycles = self.network.cycle
        return ChipResult(
            benchmark=self.benchmark,
            scheme=self.network.policy.name,
            execution_time=self.execution_time or cycles,
            avg_packet_latency=stats.avg_packet_latency,
            avg_total_latency=stats.avg_total_latency,
            avg_blocked_routers=stats.avg_blocked_routers,
            avg_wakeup_wait=stats.avg_wakeup_wait,
            injection_rate=(
                stats.injected_flits / (cycles * self.config.num_nodes)
                if cycles
                else 0.0
            ),
            l1_miss_rate=misses / mem_ops if mem_ops else 0.0,
            packets=stats.delivered,
            cycles=cycles,
        )

    # ------------------------------------------------------------------
    def _dump_stall_state(self) -> None:  # pragma: no cover - debug aid
        stuck = [
            (c.node, c._waiting_on, self.l1s[c.node].mshrs.get(c._waiting_on))
            for c in self.cores
            if c.is_stalled
        ]
        print(f"[chip] stuck cores: {stuck[:8]} (of {len(stuck)})")
        busy = [
            (d.node, b, e.pending, len(e.waiting))
            for d in self.directories
            for b, e in d.entries.items()
            if e.busy
        ]
        print(f"[chip] busy directory entries: {busy[:8]} (of {len(busy)})")
