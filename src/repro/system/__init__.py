"""Closed-loop CMP substrate: cores, caches, MESI coherence, PARSEC profiles."""

from .cache import SetAssociativeCache
from .chip import Chip, ChipResult
from .cpu import Core
from .directory import DirectoryController
from .l1 import L1Controller
from .memctrl import Memory, MemoryController
from .memtrace import AccessStream, StreamProfile
from .messages import CoherenceMessage, MessageType
from .parsec import PARSEC_BENCHMARKS, PARSEC_PROFILES, get_profile

__all__ = [
    "AccessStream",
    "Chip",
    "ChipResult",
    "CoherenceMessage",
    "Core",
    "DirectoryController",
    "L1Controller",
    "Memory",
    "MemoryController",
    "MessageType",
    "PARSEC_BENCHMARKS",
    "PARSEC_PROFILES",
    "SetAssociativeCache",
    "StreamProfile",
    "get_profile",
]
