"""Messages, packets and flits.

The evaluated system (paper Sec. 5) runs a two-level MESI protocol over
three virtual networks to avoid message-dependent deadlock.  Control
messages (requests, acks) fit in a single flit; data messages carrying a
64-byte cache block occupy five flits on a 128-bit link (64B payload =
4 flits, plus the head flit carrying the header).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Set


class VirtualNetwork(enum.IntEnum):
    """The three virtual networks of the two-level MESI protocol."""

    REQUEST = 0
    FORWARD = 1
    RESPONSE = 2


#: Number of virtual networks (paper: "three, the minimum number needed
#: for correctly running the MESI coherence protocol without deadlocks").
NUM_VNETS = 3

#: Data payload (cache block) size in flits on a 128-bit link.
DATA_PACKET_FLITS = 5
#: Control message size in flits.
CONTROL_PACKET_FLITS = 1

_packet_ids = itertools.count()


def reset_packet_ids() -> None:
    """Reset the global packet id counter (for reproducible tests)."""
    global _packet_ids
    _packet_ids = itertools.count()


@dataclass
class Packet:
    """A packet travelling through the network.

    Besides routing fields, a packet carries the measurement state the
    paper's Figures 9 and 10 are built from: the set of distinct
    powered-off routers it encountered and the number of cycles spent
    waiting for router wakeups.
    """

    source: int
    destination: int
    vnet: VirtualNetwork
    size_flits: int
    created_at: int
    #: Optional opaque payload used by the closed-loop system model to
    #: route coherence messages back to their protocol transaction.
    payload: Optional[object] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    # --- timing/measurement state, filled in by the simulator ---------
    injected_at: Optional[int] = None
    delivered_at: Optional[int] = None
    #: Distinct routers that were powered off (or still waking up) when
    #: this packet needed them (Fig. 9 metric).
    blocked_routers: Set[int] = field(default_factory=set)
    #: Total cycles this packet stalled waiting for router wakeup
    #: (Fig. 10 metric).
    wakeup_wait_cycles: int = 0
    #: Router-to-router links actually traversed (head-flit departures
    #: toward a neighbor).  Equals the minimal hop distance under XY;
    #: the surplus is the detour length under fault-tolerant rerouting.
    hops_taken: int = 0

    @property
    def network_latency(self) -> Optional[int]:
        """Cycles from injection into the network until delivery."""
        if self.delivered_at is None or self.injected_at is None:
            return None
        return self.delivered_at - self.injected_at

    @property
    def total_latency(self) -> Optional[int]:
        """Cycles from message creation (incl. NI queueing) to delivery."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.packet_id} {self.source}->{self.destination} "
            f"vn={int(self.vnet)} {self.size_flits}f)"
        )


@dataclass
class Flit:
    """One flow-control unit of a packet."""

    packet: Packet
    index: int
    #: Set by the fault injector's bit-flip fault; the invariant checker
    #: flags corrupted flits the moment they land (payload contents are
    #: otherwise preserved so faulted runs stay deterministic).
    corrupted: bool = False

    @property
    def is_head(self) -> bool:
        """Whether this is the packet's head flit."""
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        """Whether this is the packet's tail flit."""
        return self.index == self.packet.size_flits - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit({kind}{self.index}/pkt#{self.packet.packet_id})"


def make_flits(packet: Packet) -> List[Flit]:
    """Split a packet into its flits."""
    return [Flit(packet, i) for i in range(packet.size_flits)]


def control_packet(
    source: int, destination: int, vnet: VirtualNetwork, created_at: int, payload=None
) -> Packet:
    """Convenience constructor for a single-flit control packet."""
    return Packet(source, destination, vnet, CONTROL_PACKET_FLITS, created_at, payload)


def data_packet(
    source: int, destination: int, vnet: VirtualNetwork, created_at: int, payload=None
) -> Packet:
    """Convenience constructor for a five-flit data packet."""
    return Packet(source, destination, vnet, DATA_PACKET_FLITS, created_at, payload)
