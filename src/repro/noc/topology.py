"""Network topologies.

The paper evaluates Power Punch on planar 2D meshes (4x4, 8x8, 16x16)
with dimension-order (XY) routing, matching the topologies used by most
taped-out many-core chips (Sec. 2.1).  Nodes are numbered row-major, as
in the paper's Figure 4: node ``y * width + x`` sits at column ``x``
(growing in the X+ direction) and row ``y`` (growing in the Y+
direction).

The mesh is no longer hard-wired, though: :class:`Topology` abstracts
the port model, neighbor map, coordinates, and distance metric, and the
rest of the simulator (routers, kernels, power model, visualisation) is
written against that interface.  :class:`Mesh2D` is the extracted
default; :class:`Torus2D` adds wrap-around links in both dimensions and
:class:`Ring` is a single bidirectional cycle.  The new fabrics are
baseline comparison points — Power Punch's multi-hop punch encoding
stays mesh+XY specific (see :mod:`repro.noc.routing`).

Port model: every topology exposes ``ports``, a tuple of
:class:`Direction` members with *contiguous* integer codes starting at
``LOCAL == 0``.  Contiguity is a hard requirement of the vector
kernel's flat ``(router * P + port) * V + vc`` SoA indexing, where
``P == len(ports)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import ClassVar, Iterator, List, Optional, Tuple


class Direction(enum.IntEnum):
    """Router port directions.

    ``LOCAL`` connects the router to its network interface; the four
    cardinal directions connect to neighbors.  ``XPOS`` points toward
    larger x (e.g. R27 -> R28 in the paper's Figure 4) and ``YPOS``
    toward larger y (R27 -> R35).  On a :class:`Ring`, ``XPOS`` is the
    clockwise port and ``XNEG`` counter-clockwise; the Y ports are
    simply absent from ``Ring.ports``.
    """

    LOCAL = 0
    XPOS = 1
    XNEG = 2
    YPOS = 3
    YNEG = 4

    @property
    def opposite(self) -> "Direction":
        """The direction a neighbor uses for the same physical link."""
        return _OPPOSITE[self]

    @property
    def is_x(self) -> bool:
        """Whether this is an X-dimension direction."""
        return self in (Direction.XPOS, Direction.XNEG)

    @property
    def is_y(self) -> bool:
        """Whether this is a Y-dimension direction."""
        return self in (Direction.YPOS, Direction.YNEG)


_OPPOSITE = {
    Direction.LOCAL: Direction.LOCAL,
    Direction.XPOS: Direction.XNEG,
    Direction.XNEG: Direction.XPOS,
    Direction.YPOS: Direction.YNEG,
    Direction.YNEG: Direction.YPOS,
}

#: The four mesh directions (everything but LOCAL).
MESH_DIRECTIONS: Tuple[Direction, ...] = (
    Direction.XPOS,
    Direction.XNEG,
    Direction.YPOS,
    Direction.YNEG,
)

#: All five router ports of a 2D mesh/torus router.
ALL_DIRECTIONS: Tuple[Direction, ...] = (Direction.LOCAL,) + MESH_DIRECTIONS

#: The three ports of a ring router (local + both cycle directions).
RING_DIRECTIONS: Tuple[Direction, ...] = (
    Direction.LOCAL,
    Direction.XPOS,
    Direction.XNEG,
)


@dataclass(frozen=True)
class Coordinate:
    """Grid coordinate of a node."""

    x: int
    y: int


class Topology:
    """Abstract fabric: port model, neighbor map, coordinates, distance.

    Concrete topologies define ``name`` (the canonical config string),
    ``ports`` (contiguous Direction codes, LOCAL first), a ``neighbor``
    map, and a minimal ``hop_distance``.  Everything else — neighbor
    iteration, link enumeration, radius queries, serialization — is
    derived here.
    """

    #: Canonical name used by ``NoCConfig.topology`` and cache keys.
    name: ClassVar[str] = "abstract"
    #: Router ports, contiguous codes 0..P-1 with LOCAL first.
    ports: ClassVar[Tuple[Direction, ...]] = ALL_DIRECTIONS

    width: int
    height: int

    @property
    def num_ports(self) -> int:
        """Ports per router (``P`` in the vector kernel's SoA layout)."""
        return len(self.ports)

    @property
    def num_nodes(self) -> int:
        """Total node count (width x height)."""
        return self.width * self.height

    @property
    def shape(self) -> Tuple[int, int]:
        """Grid extent as ``(width, height)`` for rendering."""
        return (self.width, self.height)

    @property
    def spec(self) -> str:
        """Canonical serialization, e.g. ``"torus:4x4"``."""
        return f"{self.name}:{self.width}x{self.height}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.width}x{self.height})"

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coord(self, node: int) -> Coordinate:
        """Coordinate of ``node`` (row-major numbering)."""
        self._check_node(node)
        return Coordinate(node % self.width, node // self.width)

    #: Alias used by layers that render arbitrary topologies.
    def coordinates(self, node: int) -> Coordinate:
        """Coordinate of ``node`` — alias of :meth:`coord`."""
        return self.coord(node)

    def node_at(self, x: int, y: int) -> int:
        """Node id at coordinate ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinate ({x}, {y}) outside {self.name}")
        return y * self.width + x

    def contains(self, x: int, y: int) -> bool:
        """Whether coordinate (x, y) lies inside the grid."""
        return 0 <= x < self.width and 0 <= y < self.height

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(
                f"node {node} outside {self.name} of {self.num_nodes} nodes"
            )

    # ------------------------------------------------------------------
    # Neighbors and links
    # ------------------------------------------------------------------
    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        """Neighbor of ``node`` in ``direction``, or ``None`` at an edge."""
        raise NotImplementedError

    def neighbors(self, node: int) -> Iterator[Tuple[Direction, int]]:
        """All existing neighbors of ``node`` as (direction, id)."""
        for direction in self.ports[1:]:
            other = self.neighbor(node, direction)
            if other is not None:
                yield direction, other

    def direction_to_neighbor(self, node: int, neighbor: int) -> Direction:
        """Direction of an adjacent ``neighbor`` as seen from ``node``."""
        for direction, other in self.neighbors(node):
            if other == neighbor:
                return direction
        raise ValueError(f"nodes {node} and {neighbor} are not adjacent")

    def links(self) -> Iterator[Tuple[int, int]]:
        """All directed links as (src, dst) pairs."""
        for node in range(self.num_nodes):
            for _, other in self.neighbors(node):
                yield node, other

    # ------------------------------------------------------------------
    # Distance
    # ------------------------------------------------------------------
    def hop_distance(self, a: int, b: int) -> int:
        """Minimal hop distance between nodes."""
        raise NotImplementedError

    @property
    def diameter(self) -> int:
        """Largest minimal hop distance between any node pair."""
        raise NotImplementedError

    def nodes_within(self, node: int, hops: int) -> List[int]:
        """All nodes within ``hops`` of ``node``, excluding the node itself.

        Used to reproduce the paper's Sec. 3 motivation: in an 8x8 mesh
        24 routers lie within 3 hops of R27 (~38% of the chip).
        """
        return [
            other
            for other in range(self.num_nodes)
            if other != node and self.hop_distance(node, other) <= hops
        ]


class Mesh2D(Topology):
    """A ``width`` x ``height`` 2D mesh.

    Provides coordinate/node-id conversion, neighbor lookup, and hop
    distance.  All Power Punch path computations (targeted routers,
    punch relays) are built on top of this class together with
    :mod:`repro.noc.routing`.
    """

    name = "mesh"
    ports = ALL_DIRECTIONS

    def __init__(self, width: int, height: Optional[int] = None) -> None:
        if height is None:
            height = width
        if width < 2 or height < 2:
            raise ValueError("mesh dimensions must be at least 2x2")
        self.width = width
        self.height = height

    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        """Neighbor of ``node`` in ``direction``, or ``None`` at an edge."""
        if direction == Direction.LOCAL:
            return node
        c = self.coord(node)
        dx, dy = _DELTAS[direction]
        nx, ny = c.x + dx, c.y + dy
        if not self.contains(nx, ny):
            return None
        return self.node_at(nx, ny)

    def hop_distance(self, a: int, b: int) -> int:
        """Manhattan (minimal-mesh) hop distance between nodes."""
        ca, cb = self.coord(a), self.coord(b)
        return abs(ca.x - cb.x) + abs(ca.y - cb.y)

    @property
    def diameter(self) -> int:
        """Corner-to-corner Manhattan distance."""
        return (self.width - 1) + (self.height - 1)


#: Back-compat alias: the mesh predates the Topology abstraction and is
#: imported under this name throughout older code and tests.
MeshTopology = Mesh2D


class Torus2D(Mesh2D):
    """A ``width`` x ``height`` 2D torus (mesh plus wrap-around links).

    Both dimensions must be at least 3 wide: on a 2-wide ring the XPOS
    and XNEG neighbors coincide, making ``direction_to_neighbor`` (and
    the credit return path, which is keyed by port) ambiguous.
    """

    name = "torus"

    def __init__(self, width: int, height: Optional[int] = None) -> None:
        super().__init__(width, height)
        if self.width < 3 or self.height < 3:
            raise ValueError("torus dimensions must be at least 3x3")

    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        """Neighbor of ``node`` in ``direction``; wraps at the edges."""
        if direction == Direction.LOCAL:
            return node
        c = self.coord(node)
        dx, dy = _DELTAS[direction]
        nx = (c.x + dx) % self.width
        ny = (c.y + dy) % self.height
        return self.node_at(nx, ny)

    def hop_distance(self, a: int, b: int) -> int:
        """Minimal hop distance, taking the shorter way around each ring."""
        ca, cb = self.coord(a), self.coord(b)
        dx = abs(ca.x - cb.x)
        dy = abs(ca.y - cb.y)
        return min(dx, self.width - dx) + min(dy, self.height - dy)

    @property
    def diameter(self) -> int:
        """Half-way around both rings."""
        return self.width // 2 + self.height // 2


class Ring(Topology):
    """A single bidirectional ring of ``num_nodes`` routers.

    Rendered as an ``N x 1`` grid (node ``i`` at coordinate ``(i, 0)``);
    ``XPOS`` steps clockwise (increasing id, wrapping at the end) and
    ``XNEG`` counter-clockwise.  Ring routers have only three ports, so
    the vector kernel's flat layout shrinks to ``P == 3``.
    """

    name = "ring"
    ports = RING_DIRECTIONS

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 3:
            raise ValueError("ring needs at least 3 nodes")
        self.width = num_nodes
        self.height = 1

    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        """Neighbor of ``node`` in ``direction``; the cycle always wraps."""
        self._check_node(node)
        if direction == Direction.LOCAL:
            return node
        if direction == Direction.XPOS:
            return (node + 1) % self.num_nodes
        if direction == Direction.XNEG:
            return (node - 1) % self.num_nodes
        return None

    def hop_distance(self, a: int, b: int) -> int:
        """Minimal hop distance, the shorter way around the cycle."""
        self._check_node(a)
        self._check_node(b)
        d = abs(a - b)
        return min(d, self.num_nodes - d)

    @property
    def diameter(self) -> int:
        """Half-way around the cycle."""
        return self.num_nodes // 2


#: Topology registry keyed by canonical name.
TOPOLOGIES = {
    "mesh": Mesh2D,
    "torus": Torus2D,
    "ring": Ring,
}


def make_topology(name: str, width: int, height: Optional[int] = None) -> Topology:
    """Build a topology from its canonical name and grid dimensions.

    A ``ring`` interprets ``width * height`` as its node count so that
    configs stay comparable across topologies at equal node counts
    (an 8x8 config yields a 64-node ring).
    """
    if height is None:
        height = width
    if name not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {name!r}; expected one of {sorted(TOPOLOGIES)}"
        )
    if name == "ring":
        return Ring(width * height)
    return TOPOLOGIES[name](width, height)


_DELTAS = {
    Direction.XPOS: (1, 0),
    Direction.XNEG: (-1, 0),
    Direction.YPOS: (0, 1),
    Direction.YNEG: (0, -1),
}
