"""2D mesh topology.

The paper evaluates Power Punch on planar 2D meshes (4x4, 8x8, 16x16)
with dimension-order (XY) routing, matching the topologies used by most
taped-out many-core chips (Sec. 2.1).  Nodes are numbered row-major, as
in the paper's Figure 4: node ``y * width + x`` sits at column ``x``
(growing in the X+ direction) and row ``y`` (growing in the Y+
direction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple


class Direction(enum.IntEnum):
    """Router port directions.

    ``LOCAL`` connects the router to its network interface; the four
    cardinal directions connect to mesh neighbors.  ``XPOS`` points
    toward larger x (e.g. R27 -> R28 in the paper's Figure 4) and
    ``YPOS`` toward larger y (R27 -> R35).
    """

    LOCAL = 0
    XPOS = 1
    XNEG = 2
    YPOS = 3
    YNEG = 4

    @property
    def opposite(self) -> "Direction":
        """The direction a neighbor uses for the same physical link."""
        return _OPPOSITE[self]

    @property
    def is_x(self) -> bool:
        """Whether this is an X-dimension direction."""
        return self in (Direction.XPOS, Direction.XNEG)

    @property
    def is_y(self) -> bool:
        """Whether this is a Y-dimension direction."""
        return self in (Direction.YPOS, Direction.YNEG)


_OPPOSITE = {
    Direction.LOCAL: Direction.LOCAL,
    Direction.XPOS: Direction.XNEG,
    Direction.XNEG: Direction.XPOS,
    Direction.YPOS: Direction.YNEG,
    Direction.YNEG: Direction.YPOS,
}

#: The four mesh directions (everything but LOCAL).
MESH_DIRECTIONS: Tuple[Direction, ...] = (
    Direction.XPOS,
    Direction.XNEG,
    Direction.YPOS,
    Direction.YNEG,
)

#: All five router ports.
ALL_DIRECTIONS: Tuple[Direction, ...] = (Direction.LOCAL,) + MESH_DIRECTIONS


@dataclass(frozen=True)
class Coordinate:
    """Mesh coordinate of a node."""

    x: int
    y: int


class MeshTopology:
    """A ``width`` x ``height`` 2D mesh.

    Provides coordinate/node-id conversion, neighbor lookup, and hop
    distance.  All Power Punch path computations (targeted routers,
    punch relays) are built on top of this class together with
    :mod:`repro.noc.routing`.
    """

    def __init__(self, width: int, height: Optional[int] = None) -> None:
        if height is None:
            height = width
        if width < 2 or height < 2:
            raise ValueError("mesh dimensions must be at least 2x2")
        self.width = width
        self.height = height

    @property
    def num_nodes(self) -> int:
        """Total node count (width x height)."""
        return self.width * self.height

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MeshTopology({self.width}x{self.height})"

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coord(self, node: int) -> Coordinate:
        """Coordinate of ``node`` (row-major numbering)."""
        self._check_node(node)
        return Coordinate(node % self.width, node // self.width)

    def node_at(self, x: int, y: int) -> int:
        """Node id at coordinate ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinate ({x}, {y}) outside mesh")
        return y * self.width + x

    def contains(self, x: int, y: int) -> bool:
        """Whether coordinate (x, y) lies inside the mesh."""
        return 0 <= x < self.width and 0 <= y < self.height

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} outside mesh of {self.num_nodes} nodes")

    # ------------------------------------------------------------------
    # Neighbors and links
    # ------------------------------------------------------------------
    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        """Neighbor of ``node`` in ``direction``, or ``None`` at an edge."""
        if direction == Direction.LOCAL:
            return node
        c = self.coord(node)
        dx, dy = _DELTAS[direction]
        nx, ny = c.x + dx, c.y + dy
        if not self.contains(nx, ny):
            return None
        return self.node_at(nx, ny)

    def neighbors(self, node: int) -> Iterator[Tuple[Direction, int]]:
        """All existing mesh neighbors of ``node`` as (direction, id)."""
        for direction in MESH_DIRECTIONS:
            other = self.neighbor(node, direction)
            if other is not None:
                yield direction, other

    def direction_to_neighbor(self, node: int, neighbor: int) -> Direction:
        """Direction of an adjacent ``neighbor`` as seen from ``node``."""
        for direction, other in self.neighbors(node):
            if other == neighbor:
                return direction
        raise ValueError(f"nodes {node} and {neighbor} are not adjacent")

    def links(self) -> Iterator[Tuple[int, int]]:
        """All directed mesh links as (src, dst) pairs."""
        for node in range(self.num_nodes):
            for _, other in self.neighbors(node):
                yield node, other

    # ------------------------------------------------------------------
    # Distance
    # ------------------------------------------------------------------
    def hop_distance(self, a: int, b: int) -> int:
        """Manhattan (minimal-mesh) hop distance between nodes."""
        ca, cb = self.coord(a), self.coord(b)
        return abs(ca.x - cb.x) + abs(ca.y - cb.y)

    def nodes_within(self, node: int, hops: int) -> List[int]:
        """All nodes within ``hops`` of ``node``, excluding the node itself.

        Used to reproduce the paper's Sec. 3 motivation: in an 8x8 mesh
        24 routers lie within 3 hops of R27 (~38% of the chip).
        """
        return [
            other
            for other in range(self.num_nodes)
            if other != node and self.hop_distance(node, other) <= hops
        ]


_DELTAS = {
    Direction.XPOS: (1, 0),
    Direction.XNEG: (-1, 0),
    Direction.YPOS: (0, 1),
    Direction.YNEG: (0, -1),
}
