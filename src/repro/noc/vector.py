"""Structure-of-arrays cycle kernel (``NoCConfig.kernel == "vector"``).

The object kernels (``active``/``naive``) walk routers, VCs and
controllers pointer-by-pointer every cycle.  This module mirrors the
entire per-cycle hot state of the mesh into flat numpy arrays indexed
by ``(router, port, vc)`` and advances a whole cycle with masked
whole-mesh array operations:

* flit occupancy, ring-buffered slot contents and arrival cycles,
* credit counters and downstream-VC ownership,
* VC allocator state (``IDLE``/``WAIT_VA``/``ACTIVE`` codes, routes,
  eligibility cycles) and every round-robin arbitration pointer,
* punch-slack bookkeeping and the PG-controller FSMs (via
  :class:`repro.powergate.controller.ControllerArrayBank`).

The engine is **cycle-exact** against the object kernels: every
arbitration order, event-queue ordering and counter update replicates
the reference semantics (the equivalence arguments live next to each
phase below).  Network interfaces and the punch fabric stay
object-based — their per-cycle work is proportional to *activity*, not
mesh size, and both are shared verbatim with the object kernels, which
keeps the wakeup/forewarning timing identical by construction.

Flat indexing: with ``V = config.num_vcs`` VCs per port and ``P =
topology.num_ports`` ports per router (5 on mesh/torus, 3 on a ring),
input VC ``(router r, port p, vc v)`` lives at flat index ``f = (r * P
+ p) * V + v``; output VC ``(r, p, v)`` uses the same formula on the
output side (``credits_out`` / ``owner_out``).  Port codes are the
:class:`~repro.noc.topology.Direction` values (LOCAL=0), contiguous
``0..P-1`` by the topology port-model contract.

On the mesh, routing uses XY closed forms over node ids; other
topologies pre-compute dense ``(current, destination)`` direction and
dateline-VC-class tables from the routing object at engagement.
Power-gated schemes engage on the mesh only: their punch-target
decomposition is XY-specific (non-mesh + gated falls back to the
cycle-exact active kernel).

Engagement: :func:`try_engage` activates the engine on the *first*
network step only, and only for configurations it covers exactly —
no fault injector, no invariant checker, an empty dead-router set and
a whitelisted power policy.  Anything else (including faults installed
mid-run, which trigger :meth:`VectorEngine.materialize`) falls back to
the active kernel, which is cycle-exact by construction.

The engine keeps a registry of every packet it has carried (flat
"entity ids" backing the destination/size/hops arrays); for the
bounded benchmark and test workloads this is a few MB at most.
"""

from __future__ import annotations

from typing import Dict, List, Optional

try:  # numpy backs the vector kernel only
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from .buffers import VC_STATE_FROM_CODE
from .errors import BufferOverflowError, SimulationError
from .packet import Flit
from .routing import xy_direction_codes, xy_next_hops, xy_routers_ahead
from .topology import Direction

def _opposite_codes(num_ports: int):
    """Opposite-direction lookup by Direction code (``LOCAL`` maps to
    itself); valid for any contiguous ``0..P-1`` port model."""
    return [int(Direction(p).opposite) for p in range(num_ports)]


def _group_bounds(keys):
    """Start indices and run lengths of the equal-key runs in a sorted
    1-D array.

    This replaces ``np.unique(keys, return_index=True,
    return_counts=True)`` on the per-cycle hot path: the callers'
    keys are already sorted, so group boundaries are just neighbour
    inequalities, and the ``out=`` forms dodge the allocation-heavy
    ``np.r_``/``np.diff`` conveniences (~20 microseconds each, several
    calls per cycle).
    """
    mask = _np.empty(keys.size, dtype=_np.bool_)
    mask[0] = True
    _np.not_equal(keys[1:], keys[:-1], out=mask[1:])
    start = _np.flatnonzero(mask)
    cnt = _np.empty(start.size, dtype=start.dtype)
    _np.subtract(start[1:], start[:-1], out=cnt[:-1])
    cnt[-1] = keys.size - start[-1]
    return start, cnt


def try_engage(net) -> Optional["VectorEngine"]:
    """Build a :class:`VectorEngine` for ``net`` if it qualifies.

    Called by :meth:`Network.step` exactly once, on the first step of a
    ``kernel == "vector"`` network.  Returns ``None`` (permanent
    fallback to the active kernel) unless every covered-configuration
    condition holds; the checks are conservative so the engine never
    engages with state it cannot mirror exactly.
    """
    if _np is None:
        return None
    if net.cycle != 0:
        return None
    if net.faults is not None or net.invariants is not None:
        return None
    if net.dead_routers or getattr(net.routing, "dead", None):
        return None
    # Routers must be pristine (cycle-0 injections only touch NI queues
    # and controllers, both of which are imported, not rebuilt).
    for router in net.routers:
        if router._occupied or router.incoming_in_flight:
            return None
    if net._flit_events or net._credit_events or net._eject_events:
        return None
    from ..core import schemes
    from .policy import AlwaysOnPolicy, PowerPolicy

    ptype = type(net.policy)
    if ptype in (AlwaysOnPolicy, PowerPolicy, schemes.NoPG):
        gated = False
    elif ptype in (
        schemes.ConvOptPG,
        schemes.PowerPunchSignal,
        schemes.PowerPunchPG,
    ):
        gated = True
    else:
        # Unknown subclass: its hooks may read controller objects the
        # engine keeps stale mid-run.
        return None
    if gated and net.topology.name != "mesh":
        # Punch-target generation (`_pg_end`) and punch relaying use
        # the XY closed forms, which only mirror the mesh routing
        # relation; gated schemes on other fabrics stay on the
        # cycle-exact active kernel.
        return None
    return VectorEngine(net, gated)


class VectorEngine:
    """One engaged vector kernel instance for one network."""

    def __init__(self, net, gated: bool) -> None:
        from ..powergate.controller import ControllerArrayBank

        self.net = net
        cfg = net.config
        self.R = R = cfg.num_nodes
        self.V = V = cfg.num_vcs
        self.per = cfg.vcs_per_vnet
        self.width = cfg.width
        self.P = P = net.topology.num_ports
        self._pv = P * V
        S = R * P * V
        depths = cfg.depths_by_vc()
        self.D = D = max(depths.values())
        self._stage_gate = cfg.router_stages - 2
        self._sa_delta = 1 if cfg.router_stages == 4 else 0
        self.OPP = _np.array(_opposite_codes(P), dtype=_np.int64)

        # --- routing tables (non-mesh fabrics) ------------------------
        # The mesh keeps its XY closed forms; other topologies snapshot
        # the (memoryless, static) routing relation into dense
        # ``(current, destination)`` tables: the output direction, and
        # the dateline VC class (-1 = unrestricted, i.e. LOCAL routes).
        if net.topology.name == "mesh":
            self._dir_table = None
            self._cls_table = None
        else:
            routing = net.routing
            dirs = _np.empty((R, R), dtype=_np.int8)
            for cur in range(R):
                for dst in range(R):
                    dirs[cur, dst] = int(routing.output_direction(cur, dst))
            self._dir_table = dirs
            if routing.restricts_vcs:
                cls = _np.full((R, R), -1, dtype=_np.int8)
                probe = range(2)
                for cur in range(R):
                    for dst in range(R):
                        d = Direction(int(dirs[cur, dst]))
                        if d is Direction.LOCAL:
                            continue
                        allowed = routing.vc_choices(cur, d, dst, probe)
                        if len(allowed) == 1:
                            cls[cur, dst] = allowed[0]
                self._cls_table = cls
            else:
                self._cls_table = None

        # --- input VC state (flat, one entry per (router, port, vc)) ---
        self.occ = _np.zeros(S, dtype=_np.int64)
        self.state = _np.zeros(S, dtype=_np.int8)
        self.route = _np.full(S, -1, dtype=_np.int8)
        self.out_vc = _np.full(S, -1, dtype=_np.int64)
        self.owner_eid = _np.full(S, -1, dtype=_np.int64)
        self.va_el = _np.zeros(S, dtype=_np.int64)
        self.sa_el = _np.zeros(S, dtype=_np.int64)
        #: ``_occupied`` insertion order: assigned from a global counter
        #: on every 0 -> 1 occupancy transition, in event order.
        self.seq = _np.zeros(S, dtype=_np.int64)
        self.next_seq = 0
        self.depth_flat = _np.array(
            [depths[v] for v in range(V)] * (R * P), dtype=_np.int64
        )
        # Ring buffers: slot contents as (packet entity id, flit index,
        # arrival cycle), head pointer per VC.
        self.h = _np.zeros(S, dtype=_np.int64)
        self.buf_eid = _np.zeros((S, D), dtype=_np.int64)
        self.buf_idx = _np.zeros((S, D), dtype=_np.int64)
        self.buf_arr = _np.zeros((S, D), dtype=_np.int64)
        self.buffered_total = 0

        # --- output-side state --------------------------------------
        self.credits_out = _np.array(
            [depths[v] for v in range(V)] * (R * P), dtype=_np.int64
        )
        self.owner_out = _np.full(S, -1, dtype=_np.int64)
        self.out_vc_rr = _np.zeros(R * P, dtype=_np.int64)
        self.sa_rr_in = _np.zeros(R * P, dtype=_np.int64)
        self.sa_rr_out = _np.zeros(R * P, dtype=_np.int64)
        #: Flit counts per (router, out direction); folded into the
        #: network's ``link_counts`` dicts on read / materialize.
        self.lc_flat = _np.zeros(R * P, dtype=_np.int64)

        # --- per-router state ----------------------------------------
        self.incoming = _np.zeros(R, dtype=_np.int64)
        self.router_occ = _np.zeros(R, dtype=_np.int64)
        conn = _np.full(R * P, -1, dtype=_np.int64)
        for router in net.routers:
            base = router.router_id * P
            for d, nb in router.connected.items():
                if nb is not None:
                    conn[base + int(d)] = nb
        self.connected_flat = conn

        # --- packet registry -----------------------------------------
        self.packets: List = []
        self._pid_eid: Dict[int, int] = {}
        cap = 1024
        self.pkt_dest = _np.zeros(cap, dtype=_np.int64)
        self.pkt_nflits = _np.zeros(cap, dtype=_np.int64)
        self.pkt_hops = _np.zeros(cap, dtype=_np.int64)

        # --- event queues (cycle -> list of array chunks) ------------
        #: Flit events: ``(f, eid, idx)`` with arrays (a whole SA round,
        #: list order = emission order) or python ints (one NI send).
        self._flit_ev: Dict[int, list] = {}
        #: Credit events: encoded int arrays — ``>= 0`` is an output-VC
        #: flat index, ``< 0`` encodes an NI credit ``-(node*V+vc)-1``.
        self._credit_ev: Dict[int, list] = {}
        #: Eject events: ``(router, eid, idx)`` array triples.
        self._eject_ev: Dict[int, list] = {}

        # --- power-gating substrate ----------------------------------
        self.scheme = net.policy if gated else None
        if gated:
            sch = net.policy
            self.bank = ControllerArrayBank.from_controllers(sch._controllers)
            sch._vector_bank = self.bank
            sch._bank_dirty = False
            self._wants = _np.zeros(R, dtype=bool)
            #: Routers punched during one phase, flushed in a single
            #: ``request_batch`` (per-node requests commute).
            self._punch_sink = []
            # --- punch wavefront as encoded pair arrays --------------
            # A queued (router, target) pair is the key ``r * R + t``;
            # ``_pend_writes`` collects this cycle's relay/send arrays
            # and the next ``_deliver_punches`` merges them with one
            # ``np.unique`` — the array twin of the fabric's
            # dict-of-frozensets merge (which costs ~40% of a PG run in
            # hashing and route-cache misses).
            self._pend_writes = []
            #: Injection-pass sends captured by ``_send_local_hook``:
            #: parallel lists of router ids and their target sets.
            self._inj_r = []
            self._inj_t = []
            # Engagement happens before the first step, but be defensive
            # about punches already queued through the object path.
            for router, targets in sch.fabric._pending.items():
                self._pend_writes.append(
                    router * R
                    + _np.fromiter(targets, dtype=_np.int64, count=len(targets))
                )
            sch.fabric._pending.clear()
        else:
            self.bank = None

        # --- NI wiring -----------------------------------------------
        for ni in net.interfaces:
            ni._send_flit = self._ni_send
            ni._vc_probe = self._probe_local_vc

    # ==================================================================
    # NI-facing hooks (object NIs drive the SoA mirror directly)
    # ==================================================================
    def _register(self, packet) -> int:
        """Entity id for ``packet``, allocating arrays as needed."""
        pid = packet.packet_id
        eid = self._pid_eid.get(pid)
        if eid is not None:
            return eid
        eid = len(self.packets)
        self.packets.append(packet)
        if eid >= self.pkt_dest.size:
            grow = self.pkt_dest.size * 2
            self.pkt_dest = _np.resize(self.pkt_dest, grow)
            self.pkt_nflits = _np.resize(self.pkt_nflits, grow)
            self.pkt_hops = _np.resize(self.pkt_hops, grow)
        self.pkt_dest[eid] = packet.destination
        self.pkt_nflits[eid] = packet.size_flits
        self.pkt_hops[eid] = packet.hops_taken
        self._pid_eid[pid] = eid
        return eid

    def _ni_send(self, node: int, vc: int, flit, cycle: int) -> None:
        """Replaces ``Network._ni_send`` while engaged.

        The object path's ``on_router_disturbed`` park-conversion hook
        is intentionally absent: the bank steps every controller every
        cycle, so there is no parked state to convert.
        """
        eid = self._register(flit.packet)
        self.incoming[node] += 1
        self._flit_ev.setdefault(cycle + 1, []).append(
            (node * self._pv + vc, eid, flit.index)
        )

    def _probe_local_vc(self, ni, vnet):
        """Replaces ``NetworkInterface._free_local_vc``'s port scan."""
        base = ni.node * self._pv
        occ = self.occ
        state = self.state
        streams = ni.streams
        for vc in self.net.config.vcs_of_vnet(vnet):
            if vc in streams:
                continue
            f = base + vc
            if occ[f] == 0 and state[f] == 0:
                return vc
        return None

    # ==================================================================
    # Cycle step
    # ==================================================================
    def step(self) -> None:
        """Advance one cycle (same phase order as ``Network.step``)."""
        net = self.net
        cycle = net.cycle
        self._deliver(cycle)
        self._credits(cycle)
        if self.bank is not None:
            self._pg_begin(cycle)
        active_nis = net.active_nis
        if active_nis:
            interfaces = net.interfaces
            for node in sorted(active_nis):
                ni = interfaces[node]
                if ni.has_work():
                    ni.step(cycle)
                if not ni.has_work():
                    active_nis.discard(node)
        if self.buffered_total:
            self._va(cycle)
            self._sa(cycle)
        if self.bank is not None:
            self._pg_end(cycle)
        net.stats.cycles = cycle + 1
        net.cycle = cycle + 1

    # ------------------------------------------------------------------
    # Phase 1: link arrivals and ejections
    # ------------------------------------------------------------------
    def _deliver(self, cycle: int) -> None:
        ev = self._flit_ev.pop(cycle, None)
        if ev:
            # List order is the reference event order (the SA chunk was
            # appended at T-3, NI singles at T-1, matching the object
            # kernel's chronological appends) — occupancy sequence
            # numbers are assigned in exactly this order.  Consecutive
            # NI singles are batched into one chunk push: they always
            # hit distinct VCs (each NI sends at most one flit per
            # cycle, onto its own node's LOCAL port) and a chunk
            # assigns sequence numbers in array order, so batching
            # preserves the event order exactly.
            run_f = []
            run_e = []
            run_i = []
            for f, eid, idx in ev:
                if isinstance(f, _np.ndarray):
                    if run_f:
                        self._flush_singles(run_f, run_e, run_i, cycle)
                        run_f, run_e, run_i = [], [], []
                    self._push_chunk(f, eid, idx, cycle)
                else:
                    run_f.append(f)
                    run_e.append(eid)
                    run_i.append(idx)
            if run_f:
                self._flush_singles(run_f, run_e, run_i, cycle)
        ej = self._eject_ev.pop(cycle, None)
        if ej:
            interfaces = self.net.interfaces
            stats = self.net.stats
            hop_distance = self.net.topology.hop_distance
            packets = self.packets
            for nodes, eids, idxs in ej:
                # Non-tail ejections are no-ops in the object kernel
                # (``eject_flit`` only acts on tails, the invariant
                # checker is never installed while engaged).
                tails = idxs == (self.pkt_nflits[eids] - 1)
                if not tails.any():
                    continue
                for node, eid, idx in zip(
                    nodes[tails].tolist(),
                    eids[tails].tolist(),
                    idxs[tails].tolist(),
                ):
                    packet = packets[eid]
                    packet.hops_taken = int(self.pkt_hops[eid])
                    interfaces[node].eject_flit(Flit(packet, idx), cycle)
                    hops = hop_distance(packet.source, packet.destination)
                    stats.record_delivery(packet, hops)
                    detour = packet.hops_taken - hops
                    if detour > 0:  # pragma: no cover - XY is minimal
                        stats.rerouted_packets += 1
                        stats.detour_hops += detour

    def _push_chunk(self, fs, eids, idxs, cycle: int) -> None:
        """Buffer one SA round's arrivals (flat VC indices are unique:
        at most one flit lands per VC per cycle under credit flow
        control, and router-to-router arrivals never share a VC with
        the NI singles, which target LOCAL ports)."""
        occ = self.occ
        o = occ[fs]
        if _np.any(o >= self.depth_flat[fs]):
            self._overflow(fs, o, eids, cycle)
        slot = (self.h[fs] + o) % self.D
        self.buf_eid[fs, slot] = eids
        self.buf_idx[fs, slot] = idxs
        self.buf_arr[fs, slot] = cycle
        occ[fs] = o + 1
        self.buffered_total += fs.size
        r = fs // self._pv
        _np.add.at(self.router_occ, r, 1)
        _np.add.at(self.incoming, r, -1)
        was_empty = o == 0
        if was_empty.any():
            ne = fs[was_empty]
            k = ne.size
            self.seq[ne] = _np.arange(self.next_seq, self.next_seq + k)
            self.next_seq += k
            e_idx = idxs[was_empty]
            heads = e_idx == 0
            if heads.any():
                nh = ne[heads]
                he = eids[was_empty][heads]
                self.state[nh] = 1
                self.owner_eid[nh] = he
                self.out_vc[nh] = -1
                self.va_el[nh] = cycle + 1
                self.route[nh] = self._route_codes(
                    nh // self._pv, self.pkt_dest[he]
                )
            # Body flit landing in a drained-but-owned ACTIVE VC: the
            # object kernel only lowers an allocator wake deadline; the
            # engine runs every allocator round anyway.

    def _flush_singles(self, fs, eids, idxs, cycle: int) -> None:
        """Batch a run of NI-injected flits (distinct LOCAL-port VCs)
        into one chunk push (route codes are identical: engagement
        precludes dead routers, so ``output_direction`` is the static
        routing relation — the XY closed form or the snapshot table)."""
        self._push_chunk(
            _np.array(fs, dtype=_np.int64),
            _np.array(eids, dtype=_np.int64),
            _np.array(idxs, dtype=_np.int64),
            cycle,
        )

    def _route_codes(self, nodes, dests):
        """Direction codes for ``nodes -> dests`` head flits (the XY
        closed form on the mesh, the snapshot table elsewhere)."""
        if self._dir_table is None:
            return xy_direction_codes(nodes, dests, self.width)
        return self._dir_table[nodes, dests]

    def _overflow(self, fs, o, eids, cycle: int) -> None:
        """Raise the reference overflow error for the first offender."""
        bad = int(fs[_np.argmax(o >= self.depth_flat[fs])])
        raise BufferOverflowError(
            f"VC overflow: {int(self.occ[bad])}/{int(self.depth_flat[bad])} "
            "flits buffered, credit flow control violated",
            cycle=cycle,
            port=Direction((bad // self.V) % self.P),
            vc=bad % self.V,
            packet=self.packets[int(eids[0])].packet_id,
        )

    # ------------------------------------------------------------------
    # Phase 2: credits
    # ------------------------------------------------------------------
    def _credits(self, cycle: int) -> None:
        ev = self._credit_ev.pop(cycle, None)
        if not ev:
            return
        interfaces = self.net.interfaces
        V = self.V
        for enc in ev:
            pos = enc[enc >= 0]
            if pos.size:
                # One departure per input VC per cycle and a bijection
                # from input VCs to upstream output VCs: indices are
                # unique, a fancy-indexed add is exact.
                self.credits_out[pos] += 1
            neg = enc[enc < 0]
            if neg.size:
                for v in (-neg - 1).tolist():
                    interfaces[v // V].credit_from_router(v % V)

    # ------------------------------------------------------------------
    # Phase 3: power-gating begin (punch delivery + controller FSMs)
    # ------------------------------------------------------------------
    def _flush_sink(self, cycle: int) -> None:
        """Deliver the phase's collected punch wakeups in one
        ``request_batch`` (full sleep-cancel semantics, deduplicated —
        repeated same-node requests collapse to one, exactly like the
        scalar sequence where the second call sees the updated state)."""
        sink = self._punch_sink
        if sink:
            self.bank.request_batch(
                _np.unique(_np.asarray(sink, dtype=_np.int64)),
                cycle,
                self.scheme.expectation_window,
                True,
            )
            sink.clear()

    def _relay_pairs(self, key, cycle: int) -> None:
        """Process one pass's unique (router, target) pair keys: count
        local deliveries, count one link transmission per distinct
        (router, next-hop) relay group, and queue relays one hop out —
        the batched body shared by ``PunchFabric.deliver`` /
        ``send_local`` twins (counter-exact because pair keys within a
        pass are unique, mirroring the per-call frozensets)."""
        R = self.R
        fab = self.scheme.fabric
        r_arr = key // R
        t_arr = key - r_arr * R
        selfhit = t_arr == r_arr
        delivered = int(selfhit.sum())
        if delivered:
            fab.targets_delivered += delivered
            rel = ~selfhit
            r_arr = r_arr[rel]
            t_arr = t_arr[rel]
        if r_arr.size:
            nx = xy_next_hops(r_arr, t_arr, self.width)
            fab.link_transmissions += int(_np.unique(r_arr * R + nx).size)
            self._pend_writes.append(nx * R + t_arr)

    def _deliver_punches(self, cycle: int) -> None:
        """Batched twin of ``PunchFabric.deliver``: merge the queued
        relay arrays (one ``np.unique`` replaces the per-router
        dict-of-sets merge), process every pair, and flush one
        ``request_batch`` for the punched routers."""
        w = self._pend_writes
        if not w:
            return
        key = _np.unique(w[0] if len(w) == 1 else _np.concatenate(w))
        w.clear()
        self._relay_pairs(key, cycle)
        # ``key`` is sorted, so the punched routers (one ``on_punch``
        # per pending router in the dict fabric) are the group firsts.
        r_all = key // self.R
        start, _ = _group_bounds(r_all)
        self.bank.request_batch(
            r_all[start], cycle, self.scheme.expectation_window, True
        )

    def _send_local_hook(self, router: int, targets, cycle: int) -> None:
        """Swapped in for ``fabric.send_local`` around the scheme's
        injection-punch pass: capture the sends, process them in one
        batch afterwards (the pass never reads the bank in between)."""
        self._inj_r.append(router)
        self._inj_t.append(targets)

    def _pg_begin(self, cycle: int) -> None:
        """Batched twin of ``PowerGatedScheme.begin_cycle``.

        The object kernel interleaves per-node ``request_wakeup`` /
        ``step`` calls; batching is exact because controllers are
        independent and, within one phase, per-node request order is
        commutative (``wu_seen`` sticky, ``expect_until`` a max, the
        OFF->WAKING transition idempotent).  Begin-phase requests can
        never hit the same-cycle sleep-cancel edge: a sleep decided at
        step ``c`` sets ``last_sleep = c + 1`` and every begin-phase
        request arrives at ``c + 1`` or later.
        """
        bank = self.bank
        sch = self.scheme
        # Punch wavefront: batched matrix delivery, wakeups flushed in
        # one ``request_batch`` before anything below reads the bank.
        self._deliver_punches(cycle)
        hold = sch._slack2_hold
        if hold:
            expired = []
            for node, until in hold.items():
                if cycle > until:
                    expired.append(node)
                else:
                    bank.request_scalar(node, cycle, 0)
            for node in expired:
                del hold[node]
        wants = self._wants
        wants[:] = False
        nodes = []
        interfaces = self.net.interfaces
        for node in sorted(self.net.active_nis):
            if interfaces[node].wants_local_router(cycle):
                wants[node] = True
                nodes.append(node)
        if nodes:
            bank.request_batch(
                _np.asarray(nodes, dtype=_np.int64), cycle, 0, False
            )
        # ``datapath_empty`` twin: buffers empty, nothing in flight,
        # and no input VC holding a live allocation (a drained
        # mid-packet stream must keep its router powered — its stalled
        # body/tail flits assert no punch wires of their own).
        empty = (
            (self.router_occ == 0)
            & (self.incoming == 0)
            & (self.state.reshape(self.R, self._pv).max(axis=1) == 0)
        )
        bank.step_all(cycle, empty, wants)
        sch._stepped_through = cycle
        sch._bank_dirty = True

    # ------------------------------------------------------------------
    # Phase 4: VC allocation
    # ------------------------------------------------------------------
    def _va(self, cycle: int) -> None:
        """Whole-mesh VA round.

        The object kernel scans ``_occupied`` in insertion (``seq``)
        order; grants interact only through their output *port* (shared
        ``owner``/``vc_rr_pointer``), so ports with a single candidate
        are granted with array ops and only ports contended by several
        candidates fall back to a scalar loop in ``seq`` order.
        """
        cand = _np.where((self.state == 1) & (self.va_el <= cycle))[0]
        if cand.size == 0:
            return
        if cand.size == 1:
            f = int(cand[0])
            self._va_grant_one(
                f, (f // self._pv) * self.P + int(self.route[f]), cycle
            )
            return
        okey = (cand // self._pv) * self.P + self.route[cand]
        # One lexsort = the reference's seq-order scan stably regrouped
        # by output port (okey primary, seq secondary).
        osort = _np.lexsort((self.seq[cand], okey))
        cs = cand[osort]
        ks = okey[osort]
        # Group boundaries on the sorted keys (np.unique would re-sort).
        start, cnt = _group_bounds(ks)
        singles = cnt == 1
        if singles.any():
            first = start[singles]
            self._va_grant_vec(cs[first], ks[first], cycle)
        if not singles.all():
            for kidx in _np.flatnonzero(~singles).tolist():
                s = int(start[kidx])
                k = int(ks[s])
                for f in cs[s : s + int(cnt[kidx])].tolist():
                    self._va_grant_one(f, k, cycle)

    def _va_grant_vec(self, fs, ks, cycle: int) -> None:
        """Probe/grant for unique-output-port candidates (vectorized
        twin of ``OutputPort.free_vc_in`` + the grant effects)."""
        per = self.per
        V = self.V
        vstart = ((fs % V) // per) * per
        rr = self.out_vc_rr[ks]
        if self._cls_table is None:
            cstart, clen = vstart, per
        else:
            # Dateline VC classes: probe only the class subrange, the
            # array twin of ``free_vc_in`` over the restricted
            # ``vc_choices`` range (class 0 = first half of the vnet's
            # VCs, class 1 = second half, -1 = unrestricted LOCAL).
            dest = self.pkt_dest[self.owner_eid[fs]]
            cls = self._cls_table[fs // self._pv, dest]
            h0 = per // 2
            cstart = vstart + _np.where(cls == 1, h0, 0)
            clen = _np.where(
                cls < 0, per, _np.where(cls == 0, h0, per - h0)
            )
        chosen = _np.full(fs.size, -1, dtype=_np.int64)
        for i in range(per):
            vci = cstart + (rr + i) % clen
            pick = (
                (chosen < 0)
                & (i < clen)
                & (self.owner_out[ks * V + vci] < 0)
            )
            if pick.any():
                chosen[pick] = vci[pick]
        g = chosen >= 0
        if not g.any():
            return
        fg = fs[g]
        kg = ks[g]
        vg = chosen[g]
        self.owner_out[kg * V + vg] = fg
        self.out_vc_rr[kg] = (vg + 1) % V
        self.out_vc[fg] = vg
        self.state[fg] = 2
        self.sa_el[fg] = cycle + self._sa_delta

    def _va_grant_one(self, f: int, k: int, cycle: int) -> None:
        per = self.per
        V = self.V
        vstart = ((f % V) // per) * per
        rr = int(self.out_vc_rr[k])
        cstart, clen = vstart, per
        if self._cls_table is not None:
            dest = int(self.pkt_dest[self.owner_eid[f]])
            cls = int(self._cls_table[f // self._pv, dest])
            if cls >= 0:
                h0 = per // 2
                if cls == 0:
                    clen = h0
                else:
                    cstart, clen = vstart + h0, per - h0
        for i in range(clen):
            vci = cstart + (rr + i) % clen
            if self.owner_out[k * V + vci] < 0:
                self.owner_out[k * V + vci] = f
                self.out_vc_rr[k] = (vci + 1) % V
                self.out_vc[f] = vci
                self.state[f] = 2
                self.sa_el[f] = cycle + self._sa_delta
                return

    # ------------------------------------------------------------------
    # Phase 5: switch allocation + traversal
    # ------------------------------------------------------------------
    def _sa(self, cycle: int) -> None:
        """Whole-mesh SA round: readiness masks, the two round-robin
        arbitration stages as grouped array ops, then a batched commit.
        """
        occ = self.occ
        act = _np.where((self.state == 2) & (occ > 0))[0]
        if act.size == 0:
            return
        gate = _np.maximum(
            self.buf_arr[act, self.h[act]] + self._stage_gate, self.sa_el[act]
        )
        act = act[gate <= cycle]
        if act.size == 0:
            return
        rt = self.route[act]
        okey = (act // self._pv) * self.P + rt
        local = rt == 0
        ready = local.copy()
        nonloc = ~local
        if nonloc.any():
            an = act[nonloc]
            kn = okey[nonloc]
            nb = self.connected_flat[kn]
            if self.bank is not None:
                ok_av = self.bank.available_by(cycle + 3)[nb]
                if not ok_av.all():
                    self._note_blocked(an[~ok_av], nb[~ok_av])
            else:
                ok_av = _np.ones(an.size, dtype=bool)
            has_credit = self.credits_out[kn * self.V + self.out_vc[an]] > 0
            ready[nonloc] = ok_av & has_credit
        rdy = act[ready]
        n = rdy.size
        if n == 0:
            return
        if n == 1:
            # Single ready VC: it nominates and wins unopposed; its
            # port and output pointers advance exactly as the general
            # path would move them.
            f = int(rdy[0])
            self.sa_rr_in[f // self.V] += 1
            g = (f // self._pv) * self.P + int(self.route[f])
            self.sa_rr_out[g] += 1
            self._commit(rdy, _np.array([g], dtype=_np.int64), cycle)
            return
        # Stage 1 — each input port nominates one ready VC.  One
        # lexsort = the reference seq-order scan stably regrouped by
        # input port; group boundaries come from the sorted keys
        # directly (np.unique would re-sort).  The port's RR pointer
        # picks the nomination and every nominating port advances.
        seq = self.seq
        pkey = rdy // self.V
        order = _np.lexsort((seq[rdy], pkey))
        rs = rdy[order]
        pk = pkey[order]
        pstart, pcnt = _group_bounds(pk)
        up = pk[pstart]
        nom = rs[pstart + self.sa_rr_in[up] % pcnt]
        self.sa_rr_in[up] += 1
        # Reference nomination-group order: ports are visited in order
        # of their first ready VC's seq, and each output's contender
        # list inherits that order.
        pf = seq[rs[pstart]]
        if up.size == 1:
            # One nominating port → one output group, granted outright.
            g = (int(nom[0]) // self._pv) * self.P + int(self.route[nom[0]])
            self.sa_rr_out[g] += 1
            self._commit(nom, _np.array([g], dtype=_np.int64), cycle)
            return
        gkey = (nom // self._pv) * self.P + self.route[nom]
        gsort = _np.lexsort((pf, gkey))
        nm = nom[gsort]
        pfs = pf[gsort]
        gs = gkey[gsort]
        gstart, gcnt = _group_bounds(gs)
        ug = gs[gstart]
        # Stage 2 — each output port grants one contender by its RR
        # pointer; only granting outputs advance.
        winners = nm[gstart + self.sa_rr_out[ug] % gcnt]
        self.sa_rr_out[ug] += 1
        # Departure emission order: the object kernel visits routers in
        # ascending id and, within one router, output groups in
        # first-contender order.
        emit = _np.lexsort((pfs[gstart], ug // self.P))
        self._commit(winners[emit], ug[emit], cycle)

    def _note_blocked(self, fs, nbs) -> None:
        """Per-cycle blocked accounting for VCs stalled by a gated
        neighbor (``PowerGatedScheme.note_blocked`` itself is a no-op
        while engaged: the blocking fallback only arms with faults)."""
        packets = self.packets
        eids = self.buf_eid[fs, self.h[fs]]
        for eid, nb in zip(eids.tolist(), nbs.tolist()):
            packet = packets[eid]
            packet.blocked_routers.add(nb)
            packet.wakeup_wait_cycles += 1

    def _commit(self, W, gk, cycle: int) -> None:
        """Apply every grant's departure effects (batched
        ``Router._commit_departure`` + ``Network._sa_depart``)."""
        V = self.V
        hh = self.h[W]
        eids = self.buf_eid[W, hh]
        idxs = self.buf_idx[W, hh]
        self.h[W] = (hh + 1) % self.D
        self.occ[W] -= 1
        self.buffered_total -= W.size
        rw = W // self._pv
        _np.add.at(self.router_occ, rw, -1)
        odir = gk % self.P
        ovc = self.out_vc[W]
        o = gk * V + ovc
        stats = self.net.stats
        stats.router_traversals += int(W.size)
        self.lc_flat[gk] += 1
        # Credit return toward the sender (upstream router output port,
        # or the local NI for LOCAL-port departures).
        in_dir = (W // V) % self.P
        in_vc = W % V
        upstream = self.connected_flat[rw * self.P + in_dir]
        enc = _np.where(
            in_dir == 0,
            -(rw * V + in_vc) - 1,
            (upstream * self.P + self.OPP[in_dir]) * V + in_vc,
        )
        self._credit_ev.setdefault(cycle + 2, []).append(enc)
        nonloc = odir != 0
        if nonloc.any():
            self.credits_out[o[nonloc]] -= 1
            stats.link_traversals += int(nonloc.sum())
            hn = eids[nonloc & (idxs == 0)]
            if hn.size:
                self.pkt_hops[hn] += 1
            nb = self.connected_flat[gk[nonloc]]
            _np.add.at(self.incoming, nb, 1)
            fo = (nb * self.P + self.OPP[odir[nonloc]]) * V + ovc[nonloc]
            self._flit_ev.setdefault(cycle + 3, []).append(
                (fo, eids[nonloc], idxs[nonloc])
            )
        if not nonloc.all():
            loc = ~nonloc
            self._eject_ev.setdefault(cycle + 1, []).append(
                (rw[loc], eids[loc], idxs[loc])
            )
        tails = idxs == (self.pkt_nflits[eids] - 1)
        if tails.any():
            tw = W[tails]
            self.owner_out[o[tails]] = -1
            self.state[tw] = 0
            self.route[tw] = -1
            self.out_vc[tw] = -1
            self.owner_eid[tw] = -1
            # Follow-on packet already buffered behind the departed
            # tail: its head restarts from VA (rare; scalar loop).
            for f in tw[self.occ[tw] > 0].tolist():
                self._activate_follow_on(f, cycle)

    def _activate_follow_on(self, f: int, cycle: int) -> None:
        hh = int(self.h[f])
        eid = int(self.buf_eid[f, hh])
        if int(self.buf_idx[f, hh]) != 0:
            raise SimulationError(
                "VC activation without a head flit at the buffer front",
                cycle=cycle,
                router=f // self._pv,
                port=Direction((f // self.V) % self.P),
                vc=f % self.V,
            )
        self.state[f] = 1
        self.owner_eid[f] = eid
        self.out_vc[f] = -1
        # The front flit arrived at or before this cycle, so the
        # reference ``max(cycle + 1, front_arrival + 1)`` is cycle + 1.
        self.va_el[f] = cycle + 1
        self.route[f] = int(
            self.net.routing.output_direction(
                f // self._pv, int(self.pkt_dest[eid])
            )
        )

    # ------------------------------------------------------------------
    # Phase 6: power-gating end (punch generation)
    # ------------------------------------------------------------------
    def _pg_end(self, cycle: int) -> None:
        """Twin of ``PowerGatedScheme.end_cycle``: mesh punches from
        every buffered front head flit (vectorized targeted-router
        computation, per-router delivery in ascending id order exactly
        like the sorted active-set scan), then the scheme's own
        injection-punch generator (it only touches NIs and the fabric,
        both object-based and shared)."""
        sch = self.scheme
        occ_f = _np.where(self.occ > 0)[0]
        if occ_f.size:
            heads = occ_f[
                (self.buf_idx[occ_f, self.h[occ_f]] == 0)
                & (self.route[occ_f] > 0)
            ]
            if heads.size:
                r = heads // self._pv
                dests = self.pkt_dest[self.buf_eid[heads, self.h[heads]]]
                targets = xy_routers_ahead(r, dests, sch.punch_hops, self.width)
                # One batched pass over every (router, target) punch
                # pair.  Routers are disjoint across the per-router
                # sends this replaces, so the global pair dedup equals
                # the per-call frozenset dedup (two heads at one router
                # can punch the same target), and the punched-router
                # set is the unique ``r`` values.
                key = _np.unique(r * self.R + targets)
                self._relay_pairs(key, cycle)
                r_all = key // self.R
                start, _ = _group_bounds(r_all)
                self._punch_sink.extend(r_all[start].tolist())
        # The injection pass only builds target sets and sends them (no
        # bank reads), so its sends batch the same way and its wakeups
        # join the same phase flush.
        fab = sch.fabric
        fab.send_local = self._send_local_hook
        try:
            sch._generate_injection_punches(cycle)
        finally:
            del fab.send_local
        inj_r = self._inj_r
        if inj_r:
            inj_t = self._inj_t
            counts = [len(t) for t in inj_t]
            rs = _np.repeat(_np.asarray(inj_r, dtype=_np.int64), counts)
            ts = _np.fromiter(
                (t for s in inj_t for t in s),
                dtype=_np.int64,
                count=rs.size,
            )
            self._relay_pairs(rs * self.R + ts, cycle)
            self._punch_sink.extend(inj_r)
            inj_r.clear()
            inj_t.clear()
        self._flush_sink(cycle)

    # ==================================================================
    # Drain / census queries (engine twins of the Network methods)
    # ==================================================================
    def is_drained(self) -> bool:
        net = self.net
        for node in sorted(net.active_nis):
            if net.interfaces[node].pending_packets():
                return False
        net.active_nis.clear()
        if self.buffered_total:
            return False
        if self._flit_ev or self._eject_ev or self._credit_ev:
            return False
        return net.policy.pending_work() == 0

    def in_flight_packets(self) -> int:
        pending = sum(ni.pending_packets() for ni in self.net.interfaces)
        flying = sum(
            (e[0].size if isinstance(e[0], _np.ndarray) else 1)
            for chunk in self._flit_ev.values()
            for e in chunk
        )
        ejecting = sum(
            e[0].size for chunk in self._eject_ev.values() for e in chunk
        )
        return pending + int(self.buffered_total) + flying + ejecting

    def fold_link_counts(self) -> None:
        """Fold the engine's link counters into the network's dicts."""
        lc = self.lc_flat
        if not lc.any():
            return
        counts = self.net._link_counts
        P = self.P
        for k in _np.nonzero(lc)[0].tolist():
            counts[k // P][Direction(k % P)] += int(lc[k])
        lc[:] = 0

    # ==================================================================
    # Disengagement
    # ==================================================================
    def materialize(self) -> None:
        """Write every mirrored field back onto the object model and
        unhook the engine, so the active kernel can continue mid-run
        (e.g. when a fault injector or invariant checker is installed).
        """
        from ..powergate.controller import PGState

        net = self.net
        cycle = net.cycle
        routers = net.routers
        packets = self.packets
        V = self.V
        P = self.P
        pv = self._pv
        # Buffered flits, in global seq order so each router's
        # ``_occupied`` dict regains the reference insertion order.
        occ_f = _np.where(self.occ > 0)[0]
        occ_f = occ_f[_np.argsort(self.seq[occ_f], kind="stable")]
        for f in occ_f.tolist():
            router = routers[f // pv]
            vc = router.input_ports[Direction((f // V) % P)].vcs[f % V]
            hh = int(self.h[f])
            for j in range(int(self.occ[f])):
                slot = (hh + j) % self.D
                vc.flits.append(
                    Flit(packets[int(self.buf_eid[f, slot])], int(self.buf_idx[f, slot]))
                )
                vc.arrivals.append(int(self.buf_arr[f, slot]))
            router._occupied[vc] = None
        # Allocation state — includes drained-but-owned ACTIVE VCs,
        # which hold no flits and live outside ``_occupied``.
        for f in _np.where(self.state != 0)[0].tolist():
            router = routers[f // pv]
            vc = router.input_ports[Direction((f // V) % P)].vcs[f % V]
            vc.state = VC_STATE_FROM_CODE[int(self.state[f])]
            rt = int(self.route[f])
            vc.route = Direction(rt) if rt >= 0 else None
            ov = int(self.out_vc[f])
            vc.out_vc = ov if ov >= 0 else None
            oe = int(self.owner_eid[f])
            vc.owner_packet = packets[oe].packet_id if oe >= 0 else None
            vc.va_eligible_at = int(self.va_el[f])
            vc.sa_eligible_at = int(self.sa_el[f])
        for r in range(self.R):
            router = routers[r]
            base = r * P
            for p in range(P):
                d = Direction(p)
                k = base + p
                out_port = router.output_ports[d]
                for v in range(V):
                    out_port.credits[v] = int(self.credits_out[k * V + v])
                    ow = int(self.owner_out[k * V + v])
                    out_port.owner[v] = (
                        None if ow < 0 else (Direction((ow // V) % P), ow % V)
                    )
                out_port.vc_rr_pointer = int(self.out_vc_rr[k])
                router.input_ports[d].sa_rr_pointer = int(self.sa_rr_in[k])
                router._sa_out_rr[d] = int(self.sa_rr_out[k])
            router.incoming_in_flight = int(self.incoming[r])
            router._live_vcs = int(
                _np.count_nonzero(self.state[r * pv : (r + 1) * pv])
            )
            # Conservative allocator wake deadlines (harmless no-op
            # rounds at worst) and a head-version bump so scheme punch
            # caches never serve pre-engagement entries.
            router._va_wake_at = 0
            router._sa_wake_at = 0
            router.head_version += 1
        for eid, packet in enumerate(packets):
            packet.hops_taken = int(self.pkt_hops[eid])
        # In-flight events back into the object queues (list order is
        # the delivery order the object kernel will honor).
        for c, entries in self._flit_ev.items():
            out = net._flit_events[c]
            for f, eid, idx in entries:
                if isinstance(f, _np.ndarray):
                    for ff, ee, ii in zip(f.tolist(), eid.tolist(), idx.tolist()):
                        out.append(
                            (
                                ff // pv,
                                Direction((ff // V) % P),
                                ff % V,
                                Flit(packets[ee], ii),
                            )
                        )
                else:
                    out.append(
                        (
                            f // pv,
                            Direction((f // V) % P),
                            f % V,
                            Flit(packets[eid], idx),
                        )
                    )
        for c, arrays in self._credit_ev.items():
            out = net._credit_events[c]
            for enc in arrays:
                for e in enc.tolist():
                    if e >= 0:
                        out.append(
                            (e // pv, Direction((e // V) % P), e % V)
                        )
                    else:
                        v2 = -e - 1
                        out.append((-(v2 // V) - 1, Direction.LOCAL, v2 % V))
        for c, entries in self._eject_ev.items():
            out = net._eject_events[c]
            for nodes, eids, idxs in entries:
                for nn, ee, ii in zip(
                    nodes.tolist(), eids.tolist(), idxs.tolist()
                ):
                    out.append((nn, Flit(packets[ee], ii)))
        self._flit_ev.clear()
        self._credit_ev.clear()
        self._eject_ev.clear()
        net.active_routers.update(
            int(x) for x in _np.nonzero(self.router_occ)[0]
        )
        self.fold_link_counts()
        for ni in net.interfaces:
            ni._send_flit = net._ni_send
            ni._vc_probe = None
        if self.bank is not None:
            sch = self.scheme
            controllers = sch._controllers
            self.bank.flush_into(controllers)
            sch._vector_bank = None
            sch._bank_dirty = False
            # Active-kernel bookkeeping: every non-OFF controller is
            # armed, no controller is parked (flush cleared the parked
            # fields), and the lazy-accounting clock reads the last
            # cycle whose begin phase completed.
            sch._armed = {
                c.router_id for c in controllers if c.state is not PGState.OFF
            }
            sch._sleep_deadlines = {}
            sch._punch_cache = {}
            sch._stepped_through = cycle - 1
            # In-flight punch wavefronts return to the object fabric's
            # pending dict (values as mutable sets, the shape its
            # non-memoized path mutates in place).
            w = self._pend_writes
            if w:
                fab = sch.fabric
                key = _np.unique(w[0] if len(w) == 1 else _np.concatenate(w))
                w.clear()
                r_all = key // self.R
                t_all = key - r_all * self.R
                start, cnt = _group_bounds(r_all)
                for i in range(start.size):
                    lo = int(start[i])
                    fab._pending[int(r_all[lo])] = set(
                        t_all[lo : lo + int(cnt[i])].tolist()
                    )
        net._engine = None
