"""Typed simulation error hierarchy.

Every fatal condition inside the simulator raises a
:class:`SimulationError` subclass carrying structured context — the
cycle, router id, port direction and VC index where the failure was
detected — so a crash deep inside a million-cycle run pinpoints its
own location instead of surfacing as a bare ``assert`` or a
context-free ``RuntimeError``.

The hierarchy deliberately subclasses :class:`RuntimeError` so legacy
callers (and tests) written against ``except RuntimeError`` keep
working.

* :class:`SimulationError` — base, structured context.
* :class:`TopologyError` — a router/link lookup hit a hole in the mesh
  (an internal wiring bug, never a workload property).
* :class:`BufferOverflowError` — a flit was pushed into a full VC,
  i.e. credit flow control was violated.
* :class:`NIQueueOverflowError` — a bounded NI injection queue
  overflowed.
* :class:`DrainTimeoutError` — ``run_until_drained`` gave up; carries
  the in-flight census at the deadline.
* :class:`InvariantViolation` — an opt-in runtime invariant failed
  (see :mod:`repro.noc.invariants`).
* :class:`DeadlockError` — the deadlock/livelock watchdog tripped;
  carries a structured :class:`~repro.noc.invariants.PostMortem`.
* :class:`BoundViolationError` — a delivered packet exceeded its
  certified worst-case latency bound (see :mod:`repro.guarantees`).
* :class:`DegradedNetworkError` — the graceful-degradation policy
  declared a router permanently dead and failed fast; carries the
  blast radius (dead routers + affected packets).
* :class:`FaultSpecError` — a fault-schedule specification could not
  be parsed (a :class:`ValueError`, since it is a config problem).

Every class in the hierarchy pickles faithfully: campaign cells run on
process-pool workers, and an exception whose ``__init__`` signature
does not match its ``args`` (e.g. ``InvariantViolation``) would
otherwise fail to unpickle on the way back to the parent — which
``concurrent.futures`` surfaces as a ``BrokenProcessPool``, taking the
whole campaign down with it.  ``__reduce__`` below rebuilds instances
from their full ``__dict__`` instead, so structured context (including
post-mortems) survives the trip.
"""

from __future__ import annotations

from typing import Optional


def _rebuild_error(cls, args, state):
    """Unpickle helper: restore an error without re-running __init__."""
    error = cls.__new__(cls)
    Exception.__init__(error, *args)
    error.__dict__.update(state)
    return error


class SimulationError(RuntimeError):
    """Fatal simulator condition with structured location context."""

    def __reduce__(self):
        return (_rebuild_error, (type(self), self.args, self.__dict__.copy()))

    def __init__(
        self,
        message: str,
        *,
        cycle: Optional[int] = None,
        router: Optional[int] = None,
        port: Optional[object] = None,
        vc: Optional[int] = None,
        packet: Optional[int] = None,
    ) -> None:
        self.cycle = cycle
        self.router = router
        self.port = port
        self.vc = vc
        self.packet = packet
        super().__init__(self._decorate(message))

    def _decorate(self, message: str) -> str:
        parts = []
        if self.cycle is not None:
            parts.append(f"cycle={self.cycle}")
        if self.router is not None:
            parts.append(f"router={self.router}")
        if self.port is not None:
            name = getattr(self.port, "name", None)
            parts.append(f"port={name if name is not None else self.port}")
        if self.vc is not None:
            parts.append(f"vc={self.vc}")
        if self.packet is not None:
            parts.append(f"packet={self.packet}")
        if not parts:
            return message
        return f"{message} [{' '.join(parts)}]"


class TopologyError(SimulationError):
    """A link or neighbor lookup fell off the mesh (internal bug)."""


class BufferOverflowError(SimulationError):
    """A flit arrived at a full VC buffer (credit protocol violated)."""


class NIQueueOverflowError(SimulationError):
    """A bounded NI injection queue overflowed."""


class DrainTimeoutError(SimulationError):
    """The network failed to drain within its cycle budget."""


class InvariantViolation(SimulationError):
    """A runtime invariant check failed.

    ``invariant`` names which check tripped (e.g. ``flit-conservation``).
    """

    def __init__(self, invariant: str, message: str, **context) -> None:
        self.invariant = invariant
        super().__init__(f"invariant {invariant!r} violated: {message}", **context)


class DeadlockError(InvariantViolation):
    """The deadlock/livelock watchdog flagged a stuck packet.

    ``post_mortem`` is a :class:`repro.noc.invariants.PostMortem` with
    the blocked packets, per-router state and recent event history.
    """

    def __init__(self, message: str, post_mortem=None, **context) -> None:
        self.post_mortem = post_mortem
        super().__init__("deadlock-watchdog", message, **context)

    def __str__(self) -> str:
        base = super().__str__()
        if self.post_mortem is None:
            return base
        return f"{base}\n{self.post_mortem.render()}"


class BoundViolationError(InvariantViolation):
    """A delivered packet exceeded its certified worst-case latency
    bound (see :mod:`repro.guarantees`).

    Carries the violation's full context: ``observed`` and ``bound``
    latencies in cycles, the bound's term-by-term decomposition
    (``terms``), the packet's ``route`` (router walk, endpoints
    inclusive), and — when an invariant checker is installed alongside
    the bound checker — a :class:`~repro.noc.invariants.PostMortem`
    with the flight recorder's recent events.
    """

    def __init__(
        self,
        message: str,
        *,
        observed: Optional[int] = None,
        bound: Optional[int] = None,
        terms: Optional[dict] = None,
        route=(),
        post_mortem=None,
        **context,
    ) -> None:
        self.observed = observed
        self.bound = bound
        self.terms = dict(terms) if terms else {}
        self.route = list(route)
        self.post_mortem = post_mortem
        super().__init__("latency-bound", message, **context)

    def __str__(self) -> str:
        base = super().__str__()
        if self.post_mortem is None:
            return base
        return f"{base}\n{self.post_mortem.render()}"


class DegradedNetworkError(SimulationError):
    """A router was declared permanently dead under ``fail_fast``.

    Carries the blast radius: ``dead_routers`` (every router currently
    declared dead) and ``affected_packets`` (ids of live packets whose
    remaining route crosses a dead router at declaration time).
    """

    def __init__(
        self,
        message: str,
        *,
        dead_routers=(),
        affected_packets=(),
        **context,
    ) -> None:
        self.dead_routers = tuple(dead_routers)
        self.affected_packets = tuple(affected_packets)
        radius = (
            f" [dead_routers={list(self.dead_routers)} "
            f"affected_packets={len(self.affected_packets)}]"
        )
        super().__init__(message + radius, **context)


class FaultSpecError(ValueError):
    """A fault-schedule specification string could not be parsed."""


class UnsupportedTopologyError(ValueError):
    """A feature was combined with a topology that cannot support it.

    Raised at configuration/attach time (a :class:`ValueError`: it is a
    config problem, not a runtime fault) — e.g. ``degradation="reroute"``
    on a ring, or a punch-based power-gating scheme on anything but the
    mesh (the paper's punch encoding is derived from XY turn
    restrictions and has no analogue on wrapped fabrics).
    """

    def __init__(
        self,
        feature: str,
        topology: str,
        supported: tuple = ("mesh",),
        reason: str = "",
    ) -> None:
        self.feature = feature
        self.topology = topology
        self.supported = tuple(supported)
        options = ", ".join(repr(s) for s in self.supported)
        message = (
            f"{feature} is not supported on topology {topology!r} "
            f"(supported: {options})"
        )
        if reason:
            message += f": {reason}"
        super().__init__(message)


class ConfigError(ValueError):
    """An enumerated :class:`~repro.noc.config.NoCConfig` field held an
    unknown value (a :class:`ValueError`, since it is a config problem).

    Carries the offending ``field``, the rejected ``value`` and the
    tuple of ``valid`` values so callers (and the rendered message) can
    point at the typo instead of failing deep inside network setup.
    """

    def __init__(self, field: str, value: object, valid: tuple) -> None:
        self.field = field
        self.value = value
        self.valid = tuple(valid)
        options = ", ".join(repr(v) for v in self.valid)
        super().__init__(f"{field} must be one of {options}, got {value!r}")
