"""Per-packet event tracing.

Attaches to a network and records the lifecycle of selected packets:
creation, injection, per-router switch traversals, blocking stalls and
delivery.  Useful for debugging power-gating interactions and for the
``punch_anatomy`` style of guided tour; kept out of the hot path unless
explicitly enabled.

:class:`EventRing` is the bounded flight-recorder variant: a fixed-size
ring of the last N events, cheap enough to leave on for entire runs so
the invariant checker's post-mortem dumps (see
:mod:`repro.noc.invariants`) can show what happened just before a
deadlock or invariant violation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Set

from .network import Network
from .packet import Packet


@dataclass(frozen=True)
class TraceEvent:
    """One recorded packet-lifecycle event."""
    cycle: int
    packet_id: int
    kind: str
    where: int
    detail: str = ""

    def __str__(self) -> str:
        spot = f"R{self.where}" if self.where >= 0 else "-"
        who = f"pkt#{self.packet_id}" if self.packet_id >= 0 else "-"
        text = f"[{self.cycle:6d}] {who} {self.kind:10s} {spot}"
        return f"{text} {self.detail}".rstrip()


class EventRing:
    """Bounded ring buffer of recent simulation events.

    Unlike :class:`PacketTracer` this never grows: the newest
    ``capacity`` events displace the oldest.  Events are free-form
    ``(cycle, kind, where, detail)`` tuples rendered like
    :class:`TraceEvent` lines; producers include the invariant checker
    (injections, deliveries, blocks) and the fault injector (every
    fired fault).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("EventRing capacity must be positive")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.recorded = 0

    def record(
        self, cycle: int, kind: str, where: int, detail: str = "", packet_id: int = -1
    ) -> None:
        """Append one event, displacing the oldest when full."""
        self.recorded += 1
        self._events.append(TraceEvent(cycle, packet_id, kind, where, detail))

    def snapshot(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def render(self) -> str:
        """Human-readable rendering of the retained events."""
        dropped = self.recorded - len(self._events)
        lines = [str(e) for e in self._events]
        if dropped > 0:
            lines.insert(0, f"... {dropped} earlier events displaced ...")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._events)


class PacketTracer:
    """Records TraceEvents for packets matching a filter."""

    def __init__(
        self,
        network: Network,
        match: Optional[Callable[[Packet], bool]] = None,
        max_events: int = 100_000,
    ) -> None:
        self.network = network
        self.match = match or (lambda packet: True)
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self._install()

    # ------------------------------------------------------------------
    def _record(self, cycle: int, packet: Packet, kind: str, where: int, detail=""):
        if len(self.events) >= self.max_events:
            return
        if not self.match(packet):
            return
        self.events.append(TraceEvent(cycle, packet.packet_id, kind, where, detail))

    def _install(self) -> None:
        network = self.network

        # Wrap injection (message creation).
        original_inject = network.inject

        def inject(packet: Packet) -> None:
            original_inject(packet)
            self._record(network.cycle, packet, "created", packet.source)

        network.inject = inject  # type: ignore[method-assign]

        # Wrap every router's switch allocation via the kernel hook.
        original_run_sa = network._run_switch_allocation

        def run_sa(router, cycle, available_by, arrival_cycle):
            def depart_hook(flit, in_dir, in_vc, out_dir, out_vc):
                if flit.is_head:
                    self._record(
                        cycle,
                        flit.packet,
                        "sw-grant",
                        router.router_id,
                        f"{in_dir.name}->{out_dir.name} vc{in_vc}->vc{out_vc}",
                    )

            # Temporarily chain our hook by wrapping depart inside the
            # original call: easiest via note on the router; instead we
            # intercept with a shim around do_switch_allocation.
            original_do_sa = router.do_switch_allocation

            def shim(c, avail, arrival, depart, note_blocked):
                def depart_traced(flit, in_dir, in_vc, out_dir, out_vc):
                    depart_hook(flit, in_dir, in_vc, out_dir, out_vc)
                    depart(flit, in_dir, in_vc, out_dir, out_vc)

                def blocked_traced(neighbor, flit):
                    self._record(
                        c, flit.packet, "blocked", router.router_id, f"next R{neighbor} off"
                    )
                    note_blocked(neighbor, flit)

                return original_do_sa(c, avail, arrival, depart_traced, blocked_traced)

            router.do_switch_allocation = shim
            try:
                original_run_sa(router, cycle, available_by, arrival_cycle)
            finally:
                router.do_switch_allocation = original_do_sa

        network._run_switch_allocation = run_sa  # type: ignore[method-assign]

        # Delivery events via the standard listener.
        network.add_delivery_listener(
            lambda packet, cycle: self._record(
                cycle, packet, "delivered", packet.destination,
                f"lat={packet.network_latency}",
            )
        )

    # ------------------------------------------------------------------
    def for_packet(self, packet_id: int) -> List[TraceEvent]:
        """All recorded events for one packet id."""
        return [e for e in self.events if e.packet_id == packet_id]

    def render(self, packet_id: Optional[int] = None) -> str:
        """Human-readable multi-line rendering of recorded events."""
        events = self.events if packet_id is None else self.for_packet(packet_id)
        return "\n".join(str(e) for e in events)

    def blocked_routers_seen(self) -> Set[int]:
        """Distinct routers that blocked any traced packet."""
        return {
            int(e.detail.split("R")[1].split(" ")[0])
            for e in self.events
            if e.kind == "blocked"
        }
