"""NoC configuration.

Default values follow the paper's Table 2 and Section 5: 8x8 mesh,
XY routing, wormhole switching with credit-based VC flow control,
3 virtual networks with 2 VCs each (3-flit data VCs on the response
network, 1-flit control VCs elsewhere), 128-bit links, 3-stage
(speculative) or 4-stage router pipelines, and a compact 3-cycle
network interface.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple

from .errors import ConfigError, UnsupportedTopologyError
from .packet import NUM_VNETS, VirtualNetwork
from .topology import TOPOLOGIES, Topology, make_topology

#: Valid values of the enumerated config fields, validated at
#: construction time so a typo (``kernel="vecotr"``) fails loudly with
#: the option list instead of silently running some other kernel.
VALID_KERNELS = ("active", "naive", "vector")
VALID_DEGRADATIONS = ("none", "drop", "reroute", "fail_fast")
VALID_TOPOLOGIES = tuple(sorted(TOPOLOGIES))


@dataclass
class NoCConfig:
    """Structural and timing parameters of the simulated NoC."""

    width: int = 8
    height: int = 8
    #: Router pipeline depth: 4 (BW/VA/SA/ST, Fig. 3a) or 3 (speculative
    #: SA merged with VA, Fig. 3b).
    router_stages: int = 3
    #: Link traversal latency in cycles.
    link_latency: int = 1
    #: Virtual channels per virtual network.
    vcs_per_vnet: int = 2
    #: Buffer depth (flits) for data VCs (response network).
    data_vc_depth: int = 3
    #: Buffer depth (flits) for control VCs (request/forward networks).
    control_vc_depth: int = 1
    #: Network-interface processing latency in cycles ("all the NI
    #: operations are packed compactly in three cycles", Sec. 5).
    ni_latency: int = 3
    #: Maximum packets buffered per VN queue in each NI (0 = unbounded).
    ni_queue_capacity: int = 0
    #: Per-cycle kernel: ``"active"`` visits only components with work
    #: (routers with occupied VCs, NIs with queued/streaming packets,
    #: armed PG-controller FSMs); ``"naive"`` scans every component
    #: every cycle; ``"vector"`` runs the per-cycle hot path as masked
    #: numpy array operations over a structure-of-arrays mirror of the
    #: mesh (see ``repro.noc.vector``), falling back to the active
    #: kernel for configurations the engine does not cover (faults,
    #: invariant checkers, non-whitelisted schemes).  All three are
    #: cycle-exact — the naive kernel is kept as the reference for
    #: equivalence tests and benchmarks.
    kernel: str = "active"
    #: Graceful degradation under permanent router faults (see
    #: ``docs/fault_model.md``): ``"none"`` leaves a permanently
    #: stalled router to the deadlock watchdog; ``"drop"`` purges the
    #: packets blocked behind a dead router (accounted as
    #: ``DroppedPacket`` stats) and keeps the rest of the mesh live;
    #: ``"reroute"`` switches to deadlock-free fault-tolerant routing
    #: (``repro.noc.routing.FaultTolerantRouting``) that detours live
    #: traffic around dead routers, refusing only genuinely
    #: unreachable destinations; ``"fail_fast"`` raises
    #: ``DegradedNetworkError`` with the blast radius the moment a
    #: router is declared dead.
    degradation: str = "none"
    #: Cycles a ``router_stall`` fault window must stay continuously
    #: open before the router is declared permanently dead (only
    #: consulted when ``degradation`` is not ``"none"``).
    dead_router_threshold: int = 1000
    #: Fabric shape: ``"mesh"`` (the paper's evaluation platform),
    #: ``"torus"`` (wrap-around links, dateline VC classes) or
    #: ``"ring"`` (a single ``width * height``-node cycle).  Non-mesh
    #: fabrics are baseline comparison points: punch-based schemes and
    #: ``degradation="reroute"`` stay mesh-only (validated here and at
    #: scheme attach).
    topology: str = "mesh"

    def __post_init__(self) -> None:
        if self.router_stages not in (3, 4):
            raise ValueError("router_stages must be 3 or 4")
        if self.kernel not in VALID_KERNELS:
            raise ConfigError("kernel", self.kernel, VALID_KERNELS)
        if self.degradation not in VALID_DEGRADATIONS:
            raise ConfigError("degradation", self.degradation, VALID_DEGRADATIONS)
        if self.topology not in VALID_TOPOLOGIES:
            raise ConfigError("topology", self.topology, VALID_TOPOLOGIES)
        if self.dead_router_threshold < 1:
            raise ValueError("dead_router_threshold must be positive")
        if self.vcs_per_vnet < 1:
            raise ValueError("need at least one VC per virtual network")
        if self.link_latency != 1:
            raise ValueError("only single-cycle links are supported")
        if self.topology != "mesh":
            if self.degradation == "reroute":
                # FaultTolerantRouting's up*/down* detour is certified
                # against XY on the mesh; wrapped fabrics would need a
                # dateline-aware variant that does not exist yet.
                raise UnsupportedTopologyError(
                    'degradation="reroute"', self.topology
                )
            if self.vcs_per_vnet < 2:
                raise UnsupportedTopologyError(
                    f"vcs_per_vnet={self.vcs_per_vnet}",
                    self.topology,
                    reason="wrap-around links need two dateline VC "
                    "classes per virtual network",
                )
        # Dimension minimums differ per fabric (2x2 mesh, 3x3 torus,
        # 3-node ring); building the topology validates them eagerly so
        # a bad shape fails at config time, not deep in network setup.
        self.make_topology()

    # ------------------------------------------------------------------
    def make_topology(self) -> Topology:
        """Instantiate the configured :class:`Topology`."""
        return make_topology(self.topology, self.width, self.height)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total node count (width x height)."""
        return self.width * self.height

    @property
    def num_vcs(self) -> int:
        """Total VCs per input port across all virtual networks."""
        return NUM_VNETS * self.vcs_per_vnet

    def vc_depth(self, vnet: VirtualNetwork) -> int:
        """Buffer depth of VCs belonging to ``vnet``."""
        if vnet == VirtualNetwork.RESPONSE:
            return self.data_vc_depth
        return self.control_vc_depth

    def vnet_of_vc(self, vc: int) -> VirtualNetwork:
        """Virtual network a flat VC index belongs to."""
        return VirtualNetwork(vc // self.vcs_per_vnet)

    def vcs_of_vnet(self, vnet: VirtualNetwork) -> range:
        """Flat VC indices belonging to ``vnet``."""
        start = int(vnet) * self.vcs_per_vnet
        return range(start, start + self.vcs_per_vnet)

    @property
    def hop_latency(self) -> int:
        """Per-hop latency of a packet: Trouter + Tlink (Sec. 3)."""
        return self.router_stages + self.link_latency

    def depths_by_vc(self) -> Dict[int, int]:
        """Buffer depth for each flat VC index."""
        return {vc: self.vc_depth(self.vnet_of_vc(vc)) for vc in range(self.num_vcs)}

    # ------------------------------------------------------------------
    # Stable serialization (campaign cell specs / cache keys)
    # ------------------------------------------------------------------
    def to_items(self) -> Tuple[Tuple[str, object], ...]:
        """Sorted ``(field, value)`` pairs for every non-default field.

        This is the canonical wire form used by campaign cell specs: it
        is hashable, JSON-friendly, independent of field declaration
        order, and two configs compare equal iff their items do.
        """
        items = [
            (field.name, getattr(self, field.name))
            for field in fields(self)
            if getattr(self, field.name) != field.default
        ]
        return tuple(sorted(items))

    @classmethod
    def from_items(cls, items: Tuple[Tuple[str, object], ...]) -> "NoCConfig":
        """Rebuild a config from :meth:`to_items` output."""
        return cls(**dict(items))
