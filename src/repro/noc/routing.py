"""Dimension-order (XY) routing.

The paper implements Power Punch on top of deterministic XY routing
(Sec. 4, "Without loss of generality, we implement Power Punch assuming
a 2D mesh network with XY routing").  XY routing fully determines the
path of every packet, which is what lets punch signals know exactly
which routers lie on a packet's imminent path, and its turn
restrictions (no Y-to-X turns) are what shrink the number of wakeup
signal sources per link from nine to three (Sec. 4.1 step 3).
"""

from __future__ import annotations

from typing import List, Optional

from .topology import Direction, MeshTopology


class XYRouting:
    """Deterministic XY dimension-order routing on a mesh.

    Packets first travel in the X dimension until the destination
    column is reached, then in the Y dimension.  Y-to-X turns are
    therefore illegal, which avoids deadlock.
    """

    def __init__(self, topology: MeshTopology) -> None:
        self.topology = topology
        # Route lookups sit on the simulator's hottest paths (switch
        # allocation and punch relaying); memoize them.  A mesh has at
        # most N^2 (current, destination) pairs.
        self._direction_cache: dict = {}
        self._next_hop_cache: dict = {}

    # ------------------------------------------------------------------
    # Next-hop computation
    # ------------------------------------------------------------------
    def output_direction(self, current: int, destination: int) -> Direction:
        """Output port a packet at ``current`` takes toward ``destination``."""
        key = (current, destination)
        cached = self._direction_cache.get(key)
        if cached is not None:
            return cached
        cur = self.topology.coord(current)
        dst = self.topology.coord(destination)
        if cur.x < dst.x:
            direction = Direction.XPOS
        elif cur.x > dst.x:
            direction = Direction.XNEG
        elif cur.y < dst.y:
            direction = Direction.YPOS
        elif cur.y > dst.y:
            direction = Direction.YNEG
        else:
            direction = Direction.LOCAL
        self._direction_cache[key] = direction
        return direction

    def next_hop(self, current: int, destination: int) -> Optional[int]:
        """Next router on the path, or ``None`` when already there."""
        key = (current, destination)
        try:
            return self._next_hop_cache[key]
        except KeyError:
            pass
        direction = self.output_direction(current, destination)
        nxt = (
            None
            if direction == Direction.LOCAL
            else self.topology.neighbor(current, direction)
        )
        self._next_hop_cache[key] = nxt
        return nxt

    # ------------------------------------------------------------------
    # Whole-path computation
    # ------------------------------------------------------------------
    def path(self, source: int, destination: int) -> List[int]:
        """Full router path, inclusive of both endpoints."""
        nodes = [source]
        current = source
        while current != destination:
            nxt = self.next_hop(current, destination)
            assert nxt is not None
            nodes.append(nxt)
            current = nxt
        return nodes

    def hops(self, source: int, destination: int) -> int:
        """Number of router-to-router hops on the XY path."""
        return self.topology.hop_distance(source, destination)

    def router_ahead(self, current: int, destination: int, hops: int) -> int:
        """Router ``hops`` hops downstream on the XY path toward ``destination``.

        If the destination is closer than ``hops``, the destination
        itself is returned.  This is the paper's *targeted router*
        (Sec. 4.1 step 1): e.g. for a packet at R3 destined to R7 in an
        8x8 mesh, the 3-hop targeted router is R6.
        """
        if hops < 0:
            raise ValueError("hops must be non-negative")
        node = current
        for _ in range(hops):
            nxt = self.next_hop(node, destination)
            if nxt is None:
                break
            node = nxt
        return node

    # ------------------------------------------------------------------
    # Turn legality
    # ------------------------------------------------------------------
    @staticmethod
    def is_turn_legal(incoming: Direction, outgoing: Direction) -> bool:
        """Whether a packet may enter on ``incoming`` and leave on ``outgoing``.

        ``incoming`` is the port the packet arrived on (e.g. a packet
        moving in X+ arrives on the XNEG port of the next router).  XY
        routing forbids Y-to-X turns; traffic from the local port may
        go anywhere, and any traffic may eject.
        """
        if incoming == Direction.LOCAL or outgoing == Direction.LOCAL:
            return True
        # Arrival port XNEG means the packet travels in the X+ direction, etc.
        travelling_y = incoming.is_y
        turning_to_x = outgoing.is_x
        if travelling_y and turning_to_x:
            return False
        # A packet never reverses direction (e.g. in on XNEG, out on XNEG
        # would send it back where it came from).
        if incoming == outgoing:
            return False
        return True

    def uses_link(self, source: int, target: int, link_src: int, link_dst: int) -> bool:
        """Whether the XY path from ``source`` to ``target`` crosses a link."""
        nodes = self.path(source, target)
        for a, b in zip(nodes, nodes[1:]):
            if a == link_src and b == link_dst:
                return True
        return False
