"""Routing functions: deterministic XY and a fault-tolerant detour mode.

The paper implements Power Punch on top of deterministic XY routing
(Sec. 4, "Without loss of generality, we implement Power Punch assuming
a 2D mesh network with XY routing").  XY routing fully determines the
path of every packet, which is what lets punch signals know exactly
which routers lie on a packet's imminent path, and its turn
restrictions (no Y-to-X turns) are what shrink the number of wakeup
signal sources per link from nine to three (Sec. 4.1 step 3).

The XY/mesh pair is no longer the only fabric, though.
:class:`RoutingAlgorithm` abstracts route computation (cached
direction/next-hop lookups, path walks, ``router_ahead``) and the
deadlock-freedom machinery (``vc_choices`` — per-link virtual-channel
restriction — plus an explicit channel-dependency-graph check), and
three concrete algorithms implement it:

* :class:`XYRouting` — the extracted default on :class:`Mesh2D`.
* :class:`TorusRouting` — minimal dimension-order routing on
  :class:`Torus2D` with dateline VC classes on the wrap links.
* :class:`RingRouting` — minimal direction choice on :class:`Ring`
  with the same dateline argument on the single cycle.

Power Punch's multi-hop punch-target decomposition stays XY-specific
(the encoding in Sec. 4.1 is derived from XY's turn restrictions), so
punch-based schemes refuse to attach to non-mesh fabrics; the new
routings serve the baseline (No-PG / conventional power-gating)
comparisons.

:class:`FaultTolerantRouting` extends XY with a deadlock-free detour
mode for the graceful-degradation policy (``NoCConfig.degradation ==
"reroute"``): while no router is dead it is bit-identical to XY; once
the network declares routers dead it switches to an up*/down*
turn-model restriction (the same family as west-first/odd-even: a
static total order on channels with one prohibited turn class) that
routes around the dead set.  Punch targets and punch relays always
stay on the static XY relation (:attr:`XYRouting.static_view`), so the
punch fabric's memoized decompositions remain valid across deaths.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .errors import InvariantViolation, SimulationError
from .topology import Direction, MeshTopology, Ring, Topology, Torus2D

try:  # numpy backs the vector kernel only; everything else runs without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

#: Sentinel distance for "no pure-down path exists".
_INF = 1 << 30


class RoutingAlgorithm:
    """Deterministic routing on a :class:`~repro.noc.topology.Topology`.

    Concrete algorithms implement :meth:`_compute_direction` (pure
    output-port choice) and may override :meth:`vc_choices` to restrict
    virtual channels per link (setting :attr:`restricts_vcs`), which is
    how wrap-around topologies break their ring dependencies (dateline
    VC classes).  Everything else — memoized lookups, path walks,
    ``router_ahead`` — is shared.

    Route lookups sit on the simulator's hottest paths (switch
    allocation and punch relaying), so both lookups are memoized.  The
    caches are injectable (pass pre-warmed dicts) and clearable
    (:meth:`clear_caches`) so a routing mode whose answers change —
    e.g. fault-driven reroutes — can never serve stale next hops.
    """

    #: Whether :meth:`vc_choices` restricts anything.  Routers skip the
    #: hook entirely when this is False, keeping the mesh VA hot path
    #: byte-identical to the pre-abstraction code.
    restricts_vcs: bool = False

    def __init__(
        self,
        topology: Topology,
        *,
        direction_cache: Optional[dict] = None,
        next_hop_cache: Optional[dict] = None,
    ) -> None:
        self.topology = topology
        # A fabric has at most N^2 (current, destination) pairs.
        self._direction_cache: dict = (
            {} if direction_cache is None else direction_cache
        )
        self._next_hop_cache: dict = {} if next_hop_cache is None else next_hop_cache

    # ------------------------------------------------------------------
    # Cache control
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop every memoized route (both lookup caches)."""
        self._direction_cache.clear()
        self._next_hop_cache.clear()

    @property
    def static_view(self) -> "RoutingAlgorithm":
        """The static routing relation behind this routing function.

        Punch targets and punch-fabric relays are computed against this
        view: the paper's punch encoding is derived from the static
        turn restrictions, and the scheme layer memoizes decompositions
        under the assumption that they never change.
        """
        return self

    # ------------------------------------------------------------------
    # Next-hop computation
    # ------------------------------------------------------------------
    def output_direction(self, current: int, destination: int) -> Direction:
        """Output port a packet at ``current`` takes toward ``destination``."""
        key = (current, destination)
        cached = self._direction_cache.get(key)
        if cached is not None:
            return cached
        direction = self._compute_direction(current, destination)
        self._direction_cache[key] = direction
        return direction

    def _compute_direction(self, current: int, destination: int) -> Direction:
        """Pure (uncached) output-port computation."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Virtual-channel restriction (deadlock freedom on wrapped fabrics)
    # ------------------------------------------------------------------
    def vc_choices(
        self,
        current: int,
        direction: Direction,
        destination: int,
        vc_range: Sequence[int],
    ) -> Sequence[int]:
        """Virtual channels a packet may claim on its next link.

        ``vc_range`` is the full VC range of the packet's vnet on the
        output port chosen at ``current``.  The default (no
        restriction) returns it unchanged; dateline routings return the
        class subrange.  Only consulted when :attr:`restricts_vcs`.
        """
        return vc_range

    def verify_deadlock_free(self) -> int:
        """Prove the realized channel-dependency graph acyclic.

        Returns the number of dependency edges checked.  The base
        implementation enumerates every (source, destination) path and
        the VC class used on each hop — a channel is ``(router,
        out_direction, vc_class)`` — and runs a cycle check.  XY on a
        mesh is acyclic by the classic dimension-order argument, but
        the explicit check is cheap and keeps one code path for every
        fabric.  Raises :class:`InvariantViolation` with a witness
        cycle on failure.
        """
        deps: Dict[Tuple[int, int, int], List[Tuple[int, int, int]]] = {}
        probe = range(2)  # representative 2-VC vnet: class 0 / class 1
        num_nodes = self.topology.num_nodes

        def channel(node: int, destination: int) -> Tuple[int, int, int]:
            direction = self.output_direction(node, destination)
            cls = 0
            if self.restricts_vcs:
                cls = 0 if 0 in self.vc_choices(
                    node, direction, destination, probe
                ) else 1
            return (node, int(direction), cls)

        # The routing function is memoryless, so the path from any
        # intermediate node is a suffix: every realized consecutive
        # channel pair is covered by one (node, destination) probe.
        for destination in range(num_nodes):
            for u in range(num_nodes):
                if u == destination:
                    continue
                v = self.next_hop(u, destination)
                if v is None or v == destination:
                    continue
                first, second = channel(u, destination), channel(v, destination)
                bucket = deps.setdefault(first, [])
                if second not in bucket:
                    bucket.append(second)
        _raise_on_cdg_cycle(deps, f"{type(self).__name__} on {self.topology.spec}")
        return sum(len(v) for v in deps.values())

    def next_hop(self, current: int, destination: int) -> Optional[int]:
        """Next router on the path, or ``None`` when already there."""
        key = (current, destination)
        try:
            return self._next_hop_cache[key]
        except KeyError:
            pass
        direction = self.output_direction(current, destination)
        nxt = (
            None
            if direction == Direction.LOCAL
            else self.topology.neighbor(current, direction)
        )
        self._next_hop_cache[key] = nxt
        return nxt

    # ------------------------------------------------------------------
    # Whole-path computation
    # ------------------------------------------------------------------
    def path(self, source: int, destination: int) -> List[int]:
        """Full router path, inclusive of both endpoints."""
        nodes = [source]
        current = source
        # Any deterministic routing function on a finite network either
        # reaches the destination or revisits a node; the bound turns
        # an inconsistent routing table into a loud error instead of an
        # infinite loop.
        limit = 2 * self.topology.num_nodes
        while current != destination:
            nxt = self.next_hop(current, destination)
            if nxt is None or len(nodes) > limit:
                raise SimulationError(
                    f"routing path {source}->{destination} failed to "
                    f"converge (walked {nodes[:8]}...)",
                    router=current,
                )
            nodes.append(nxt)
            current = nxt
        return nodes

    def hops(self, source: int, destination: int) -> int:
        """Number of router-to-router hops on the XY path."""
        return self.topology.hop_distance(source, destination)

    def path_hops(self, source: int, destination: int) -> int:
        """Hop count of the *realized* route, by walking :meth:`path`.

        Equal to :meth:`hops` for minimal routing functions, but stays
        honest for algorithms whose routes can exceed the topology's
        hop metric (e.g. up*/down* detours around dead routers) — the
        guarantees layer prices routes from this walk, never from the
        metric.
        """
        return len(self.path(source, destination)) - 1

    def reachable(self, source: int, destination: int) -> bool:
        """Whether this routing function can deliver source→destination."""
        return True

    def router_ahead(self, current: int, destination: int, hops: int) -> int:
        """Router ``hops`` hops downstream on the XY path toward ``destination``.

        If the destination is closer than ``hops``, the destination
        itself is returned.  This is the paper's *targeted router*
        (Sec. 4.1 step 1): e.g. for a packet at R3 destined to R7 in an
        8x8 mesh, the 3-hop targeted router is R6.
        """
        if hops < 0:
            raise ValueError("hops must be non-negative")
        node = current
        for _ in range(hops):
            nxt = self.next_hop(node, destination)
            if nxt is None:
                break
            node = nxt
        return node

    def uses_link(self, source: int, target: int, link_src: int, link_dst: int) -> bool:
        """Whether the path from ``source`` to ``target`` crosses a link."""
        nodes = self.path(source, target)
        for a, b in zip(nodes, nodes[1:]):
            if a == link_src and b == link_dst:
                return True
        return False


class XYRouting(RoutingAlgorithm):
    """Deterministic XY dimension-order routing on a mesh.

    Packets first travel in the X dimension until the destination
    column is reached, then in the Y dimension.  Y-to-X turns are
    therefore illegal, which avoids deadlock without any VC
    restriction (``restricts_vcs`` stays False, so the router's VA hot
    path never consults :meth:`vc_choices`).
    """

    def _compute_direction(self, current: int, destination: int) -> Direction:
        return self._xy_direction(current, destination)

    def _xy_direction(self, current: int, destination: int) -> Direction:
        """Pure (uncached) XY output-port computation."""
        cur = self.topology.coord(current)
        dst = self.topology.coord(destination)
        if cur.x < dst.x:
            return Direction.XPOS
        if cur.x > dst.x:
            return Direction.XNEG
        if cur.y < dst.y:
            return Direction.YPOS
        if cur.y > dst.y:
            return Direction.YNEG
        return Direction.LOCAL

    # ------------------------------------------------------------------
    # Turn legality
    # ------------------------------------------------------------------
    @staticmethod
    def is_turn_legal(incoming: Direction, outgoing: Direction) -> bool:
        """Whether a packet may enter on ``incoming`` and leave on ``outgoing``.

        ``incoming`` is the port the packet arrived on (e.g. a packet
        moving in X+ arrives on the XNEG port of the next router).  XY
        routing forbids Y-to-X turns; traffic from the local port may
        go anywhere, and any traffic may eject.
        """
        if incoming == Direction.LOCAL or outgoing == Direction.LOCAL:
            return True
        # Arrival port XNEG means the packet travels in the X+ direction, etc.
        travelling_y = incoming.is_y
        turning_to_x = outgoing.is_x
        if travelling_y and turning_to_x:
            return False
        # A packet never reverses direction (e.g. in on XNEG, out on XNEG
        # would send it back where it came from).
        if incoming == outgoing:
            return False
        return True


class _DatelineRouting(RoutingAlgorithm):
    """Shared machinery of the wrap-around (torus/ring) routings.

    Minimal routing on a wrapped dimension travels the shorter way
    around its ring, which reintroduces the cyclic channel dependency
    dimension-order routing normally breaks.  The classic fix is a
    *dateline*: pick one link per ring (here the wrap link, e.g.
    ``x = width-1 -> x = 0``) and split each vnet's VCs into two
    classes.  A packet whose remaining travel in the current dimension
    still has the dateline ahead allocates class 0; once past it (or if
    it never crosses), class 1.  The wrap link is therefore only ever
    used by class 0, the class-1 ring is broken at the dateline, class
    transitions only go 0 -> 1, and dimension order keeps X before Y —
    so the channel-dependency graph is acyclic
    (:meth:`verify_deadlock_free` checks it explicitly).

    The class function depends only on (current router, output
    direction, destination), never on the source, so it is computable
    at VC-allocation time from the head flit alone.
    """

    restricts_vcs = True

    def _vc_class(
        self, current: int, direction: Direction, destination: int
    ) -> Optional[int]:
        """Dateline class for the link ``current -> direction``.

        ``None`` means unrestricted (ejection through LOCAL is a sink
        and takes part in no ring dependency).
        """
        raise NotImplementedError

    def vc_choices(
        self,
        current: int,
        direction: Direction,
        destination: int,
        vc_range: Sequence[int],
    ) -> Sequence[int]:
        cls = self._vc_class(current, direction, destination)
        if cls is None:
            return vc_range
        half0 = len(vc_range) // 2
        return vc_range[:half0] if cls == 0 else vc_range[half0:]


class TorusRouting(_DatelineRouting):
    """Minimal dimension-order routing on a 2D torus.

    Each dimension travels the shorter way around its ring (ties break
    toward the positive direction), X strictly before Y; wrap links
    carry dateline VC class 0 only (see :class:`_DatelineRouting`).
    """

    def __init__(self, topology: Torus2D, **caches) -> None:
        super().__init__(topology, **caches)

    def _compute_direction(self, current: int, destination: int) -> Direction:
        cur = self.topology.coord(current)
        dst = self.topology.coord(destination)
        if cur.x != dst.x:
            forward = (dst.x - cur.x) % self.topology.width
            backward = self.topology.width - forward
            return Direction.XPOS if forward <= backward else Direction.XNEG
        if cur.y != dst.y:
            forward = (dst.y - cur.y) % self.topology.height
            backward = self.topology.height - forward
            return Direction.YPOS if forward <= backward else Direction.YNEG
        return Direction.LOCAL

    def _vc_class(
        self, current: int, direction: Direction, destination: int
    ) -> Optional[int]:
        if direction == Direction.LOCAL:
            return None
        cur = self.topology.coord(current)
        dst = self.topology.coord(destination)
        # Travelling positive, the wrap link (max -> 0) lies ahead
        # exactly while the destination coordinate is still behind us;
        # travelling negative, the wrap (0 -> max) while it is ahead.
        if direction == Direction.XPOS:
            wrap_ahead = dst.x < cur.x
        elif direction == Direction.XNEG:
            wrap_ahead = dst.x > cur.x
        elif direction == Direction.YPOS:
            wrap_ahead = dst.y < cur.y
        else:
            wrap_ahead = dst.y > cur.y
        return 0 if wrap_ahead else 1


class RingRouting(_DatelineRouting):
    """Minimal routing on a bidirectional ring.

    Packets travel the shorter way around (ties break clockwise); the
    two wrap links (``N-1 -> 0`` clockwise and ``0 -> N-1``
    counter-clockwise) are the datelines of their respective
    directions.
    """

    def __init__(self, topology: Ring, **caches) -> None:
        super().__init__(topology, **caches)

    def _compute_direction(self, current: int, destination: int) -> Direction:
        if current == destination:
            return Direction.LOCAL
        n = self.topology.num_nodes
        forward = (destination - current) % n
        return Direction.XPOS if forward <= n - forward else Direction.XNEG

    def _vc_class(
        self, current: int, direction: Direction, destination: int
    ) -> Optional[int]:
        if direction == Direction.LOCAL:
            return None
        if direction == Direction.XPOS:
            wrap_ahead = destination < current
        else:
            wrap_ahead = destination > current
        return 0 if wrap_ahead else 1


#: Default routing algorithm per topology name.
_DEFAULT_ROUTINGS = {
    "mesh": XYRouting,
    "torus": TorusRouting,
    "ring": RingRouting,
}


def default_routing(topology: Topology) -> RoutingAlgorithm:
    """The canonical deadlock-free routing algorithm for ``topology``."""
    try:
        cls = _DEFAULT_ROUTINGS[topology.name]
    except KeyError:
        raise ValueError(f"no default routing for topology {topology.name!r}")
    return cls(topology)


def _raise_on_cdg_cycle(deps: Dict, context: str) -> None:
    """Iterative 3-color DFS over a channel-dependency graph."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict = {}
    for start in deps:
        if color.get(start, WHITE) is not WHITE:
            continue
        stack = [(start, 0)]
        color[start] = GREY
        trail = [start]
        while stack:
            channel, index = stack[-1]
            followers = deps.get(channel, ())
            if index < len(followers):
                stack[-1] = (channel, index + 1)
                nxt = followers[index]
                state = color.get(nxt, WHITE)
                if state == GREY:
                    cycle = trail[trail.index(nxt):] + [nxt]
                    raise InvariantViolation(
                        "cdg-acyclic",
                        f"channel-dependency cycle ({context}): {cycle}",
                    )
                if state == WHITE:
                    color[nxt] = GREY
                    stack.append((nxt, 0))
                    trail.append(nxt)
            else:
                color[channel] = BLACK
                stack.pop()
                trail.pop()


# ----------------------------------------------------------------------
# Vectorized XY (closed forms over node-id arrays)
# ----------------------------------------------------------------------
# The vector kernel's RC stage routes whole batches of head flits at
# once.  XY on a row-major mesh has closed forms for all three lookups
# the object layer walks pointer-by-pointer, so no N^2 tables are
# needed: each helper is a handful of whole-array ops.  All of them are
# exact mirrors of the scalar code above (x resolved first, then y).

def xy_direction_codes(current, destination, width: int):
    """Vector :meth:`XYRouting.output_direction`: int8 Direction values."""
    cx = current % width
    cy = current // width
    dx = destination % width
    dy = destination // width
    out = _np.where(
        cx < dx,
        int(Direction.XPOS),
        _np.where(
            cx > dx,
            int(Direction.XNEG),
            _np.where(
                cy < dy,
                int(Direction.YPOS),
                _np.where(cy > dy, int(Direction.YNEG), int(Direction.LOCAL)),
            ),
        ),
    )
    return out.astype(_np.int8)


def xy_next_hops(current, destination, width: int):
    """Vector :meth:`XYRouting.next_hop` (callers guarantee cur != dest)."""
    cx = current % width
    cy = current // width
    dx = destination % width
    dy = destination // width
    step = _np.where(
        cx < dx, 1, _np.where(cx > dx, -1, _np.where(cy < dy, width, -width))
    )
    return current + step


def xy_routers_ahead(current, destination, hops: int, width: int):
    """Vector :meth:`XYRouting.router_ahead`.

    The scalar walk moves min(\\|dx\\|, hops) steps in x, then whatever
    budget remains in y, stopping at the destination — the closed form
    below is exactly that.
    """
    cx = current % width
    cy = current // width
    dx = destination % width
    dy = destination // width
    steps_x = _np.minimum(_np.abs(dx - cx), hops)
    nx = cx + _np.sign(dx - cx) * steps_x
    steps_y = _np.minimum(_np.abs(dy - cy), hops - steps_x)
    ny = cy + _np.sign(dy - cy) * steps_y
    return ny * width + nx


class FaultTolerantRouting(XYRouting):
    """XY routing with a deadlock-free up*/down* detour mode.

    With an empty dead set every query delegates to plain XY, so the
    default behavior (and every golden number derived from it) is
    bit-identical to :class:`XYRouting`.  Once :meth:`set_dead`
    installs a non-empty dead set, routes are recomputed from an
    up*/down* orientation of the live subgraph:

    * The live component containing the lowest-numbered live router is
      BFS-leveled from that root; every node gets the total order key
      ``ord(n) = (level, n)``.  A directed link ``a -> b`` is *down*
      when ``ord(b) > ord(a)`` and *up* otherwise.
    * The routing function is memoryless per (node, destination): a
      node with a pure-down path to the destination always takes the
      down link that shortens it (committing the packet to down links
      forever); otherwise it takes the up link minimizing the best
      remaining up*-then-down* cost.  Up moves strictly decrease
      ``ord`` and down moves strictly increase it, so the only
      prohibited turn class is *down-to-up* — the same shape of static
      turn restriction as west-first or odd-even — and no realized
      path can take it.  :meth:`verify_deadlock_free` checks the
      resulting channel-dependency graph for cycles explicitly.

    The BFS tree gives the root a pure-down path to every node and
    every node an up chain to the root, so any (source, destination)
    pair inside the live component is routable for *any* dead set that
    leaves the component connected — in particular for every
    single-region fault.  Nodes outside the root component are
    reported unreachable (:meth:`reachable`) so the network can refuse
    them explicitly instead of hanging.

    Punch targets (:meth:`router_ahead`) and the :attr:`static_view`
    handed to the punch fabric always stay on the static XY relation.
    """

    def __init__(self, topology: MeshTopology, **caches) -> None:
        super().__init__(topology, **caches)
        #: Routers currently declared permanently dead.
        self.dead: FrozenSet[int] = frozenset()
        #: Live component containing the root (== all nodes while the
        #: dead set is empty).
        self._component: FrozenSet[int] = frozenset(range(topology.num_nodes))
        self._ord: Dict[int, Tuple[int, int]] = {}
        self._up: Dict[int, List[int]] = {}
        self._down: Dict[int, List[int]] = {}
        #: Per-destination (down_dist, best_cost) tables, built lazily.
        self._tables: Dict[int, Tuple[Dict[int, int], Dict[int, int]]] = {}
        #: Dedicated static-XY twin for punch-target/relay computation
        #: (separate caches: this object's own caches hold detour
        #: entries under the same (current, destination) keys).
        self._xy = XYRouting(topology)

    # ------------------------------------------------------------------
    @property
    def static_view(self) -> XYRouting:
        """Static XY relation for punch targets/relays (never detours)."""
        return self._xy

    def set_dead(self, dead: Iterable[int]) -> bool:
        """Install a new dead-router set; returns whether it changed.

        Clears both route caches (stale XY or previous-detour answers
        must never survive a death event) and rebuilds the up*/down*
        orientation of the live subgraph.
        """
        dead = frozenset(dead)
        if dead == self.dead:
            return False
        self.dead = dead
        self.clear_caches()
        self._tables.clear()
        self._build_orientation()
        return True

    def _build_orientation(self) -> None:
        topo = self.topology
        if not self.dead:
            self._component = frozenset(range(topo.num_nodes))
            self._ord = {}
            self._up = {}
            self._down = {}
            return
        live = [v for v in range(topo.num_nodes) if v not in self.dead]
        if not live:
            self._component = frozenset()
            self._ord = {}
            self._up = {}
            self._down = {}
            return
        # Root the spanning orientation in the LARGEST live component:
        # a fault can strand a low-numbered node in a tiny fragment
        # (dead {1, 4} isolates corner 0 of a 4x4 mesh), and rooting
        # there would declare the healthy majority unreachable.  Ties
        # break toward the component holding the smallest id, keeping
        # the choice deterministic.
        unseen = set(live)
        largest: List[int] = []
        for seed in live:
            if seed not in unseen:
                continue
            members = [seed]
            unseen.discard(seed)
            cursor = 0
            while cursor < len(members):
                for _direction, v in topo.neighbors(members[cursor]):
                    if v in unseen:
                        unseen.discard(v)
                        members.append(v)
                cursor += 1
            if len(members) > len(largest):
                largest = members
        root = min(largest)
        level = {root: 0}
        frontier = [root]
        while frontier:
            nxt_frontier: List[int] = []
            for u in frontier:
                for _direction, v in topo.neighbors(u):
                    if v in self.dead or v in level:
                        continue
                    level[v] = level[u] + 1
                    nxt_frontier.append(v)
            frontier = nxt_frontier
        component = frozenset(level)
        self._component = component
        order = {v: (level[v], v) for v in component}
        self._ord = order
        up: Dict[int, List[int]] = {v: [] for v in component}
        down: Dict[int, List[int]] = {v: [] for v in component}
        for u in component:
            key = order[u]
            for _direction, v in topo.neighbors(u):
                if v in component:
                    (down[u] if order[v] > key else up[u]).append(v)
        self._up = up
        self._down = down

    # ------------------------------------------------------------------
    def reachable(self, source: int, destination: int) -> bool:
        """Both endpoints live and inside the root component."""
        if not self.dead:
            return True
        component = self._component
        return source in component and destination in component

    def _table_for(self, destination: int) -> Tuple[Dict[int, int], Dict[int, int]]:
        """(pure-down distance, best legal-path cost) maps for one dest."""
        table = self._tables.get(destination)
        if table is not None:
            return table
        component = self._component
        down_dist = {v: _INF for v in component}
        if destination in component:
            down_dist[destination] = 0
            frontier = [destination]
            while frontier:
                nxt_frontier: List[int] = []
                for v in frontier:
                    dist = down_dist[v] + 1
                    # u -> v is a down edge exactly when u is an
                    # up-neighbor of v (smaller ord).
                    for u in self._up[v]:
                        if dist < down_dist[u]:
                            down_dist[u] = dist
                            nxt_frontier.append(u)
                frontier = nxt_frontier
        best = dict(down_dist)
        # Up-neighbors have strictly smaller ord, so ascending-ord order
        # finalizes every up-neighbor's cost before it is consumed.
        for v in sorted(component, key=self._ord.__getitem__):
            cost = best[v]
            for u in self._up[v]:
                via = best[u] + 1
                if via < cost:
                    cost = via
            best[v] = cost
        table = (down_dist, best)
        self._tables[destination] = table
        return table

    def _detour_next(self, current: int, destination: int) -> int:
        """Next live router on the up*/down* path (memoryless)."""
        component = self._component
        if current not in component or destination not in component:
            raise SimulationError(
                f"no live route {current}->{destination} "
                f"(dead routers: {sorted(self.dead)})",
                router=current,
            )
        down_dist, best = self._table_for(destination)
        here = down_dist[current]
        if here < _INF:
            # Pure-down phase: committing here is what keeps the
            # routing function suffix-consistent (a down hop's
            # successor also sees a finite down distance and never
            # turns back up).
            target = here - 1
            choice = None
            for v in self._down[current]:
                if down_dist[v] == target and (choice is None or v < choice):
                    choice = v
            if choice is None:  # pragma: no cover - table construction bug
                raise SimulationError(
                    f"down-distance table inconsistent at {current}->{destination}",
                    router=current,
                )
            return choice
        target = best[current] - 1
        choice = None
        for u in self._up[current]:
            if best[u] == target and (choice is None or u < choice):
                choice = u
        if choice is None:  # pragma: no cover - table construction bug
            raise SimulationError(
                f"up-phase cost table inconsistent at {current}->{destination}",
                router=current,
            )
        return choice

    # ------------------------------------------------------------------
    def output_direction(self, current: int, destination: int) -> Direction:
        key = (current, destination)
        cached = self._direction_cache.get(key)
        if cached is not None:
            return cached
        if not self.dead:
            direction = self._xy_direction(current, destination)
        elif current == destination:
            direction = Direction.LOCAL
        else:
            direction = self.topology.direction_to_neighbor(
                current, self._detour_next(current, destination)
            )
        self._direction_cache[key] = direction
        return direction

    def router_ahead(self, current: int, destination: int, hops: int) -> int:
        """Punch targets stay on the static XY walk (see class docstring)."""
        return self._xy.router_ahead(current, destination, hops)

    # ------------------------------------------------------------------
    # Deadlock-freedom certification
    # ------------------------------------------------------------------
    def channel_dependencies(self) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
        """The realized channel-dependency graph of the current tables.

        Nodes are directed live links ``(a, b)``; an edge
        ``(u, v) -> (v, w)`` exists when some destination's routing
        enters ``v`` over the first link and leaves over the second.
        Only dependencies the memoryless routing function can actually
        realize are included.
        """
        deps: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        if not self.dead:
            return deps
        component = self._component
        for destination in component:
            for u in component:
                if u == destination:
                    continue
                v = self._detour_next(u, destination)
                if v == destination:
                    continue
                w = self._detour_next(v, destination)
                first, second = (u, v), (v, w)
                bucket = deps.setdefault(first, [])
                if second not in bucket:
                    bucket.append(second)
        return deps

    def verify_deadlock_free(self) -> int:
        """Prove the channel-dependency graph acyclic; return its size.

        Raises :class:`InvariantViolation` carrying a witness cycle if
        one exists.  Called by the network's strict-invariant path on
        every death event, and directly by tests over exhaustive fault
        placements.
        """
        deps = self.channel_dependencies()
        _raise_on_cdg_cycle(deps, f"under dead set {sorted(self.dead)}")
        return sum(len(v) for v in deps.values())
