"""Network statistics.

Collects the per-packet measurements the paper's evaluation is built
from: average packet latency (Figs. 7, 12, 13), the number of distinct
powered-off routers encountered per packet (Fig. 9) and the cycles per
packet spent waiting for router wakeup (Fig. 10), plus activity counts
feeding the energy model (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..stats_util import ReservoirQuantiles
from .errors import SimulationError
from .packet import Packet


@dataclass(frozen=True)
class DroppedPacket:
    """One packet purged by the graceful-degradation policy."""

    packet_id: int
    source: int
    destination: int
    cycle: int
    flits: int
    #: Routers declared dead when the drop happened (the blast radius
    #: this packet was part of).
    dead_routers: tuple = ()


@dataclass
class NetworkStats:
    """Aggregate counters for one simulation run."""

    #: First cycle of the measurement window (packets created earlier
    #: are warmup traffic and excluded from latency averages).
    measure_from: int = 0
    delivered: int = 0
    total_network_latency: int = 0
    total_latency: int = 0
    total_hops: int = 0
    total_blocked_routers: int = 0
    total_wakeup_wait_cycles: int = 0
    delivered_flits: int = 0
    injected_flits: int = 0
    injected_packets: int = 0
    #: Activity counts for dynamic energy: every switch traversal and
    #: every link traversal in the whole run (warmup included — energy
    #: is a whole-run quantity).
    router_traversals: int = 0
    link_traversals: int = 0
    cycles: int = 0
    #: Packets/flits purged by graceful degradation.  Unlike latency
    #: averages these are counted unconditionally (drops are
    #: exceptional events, warmup or not).  ``dropped_packets`` mixes
    #: two populations: packets purged *in flight* (which were counted
    #: by :meth:`record_injection`) and packets *refused at injection*
    #: (which never were).  The refused subset is broken out below, so
    #: in-flight losses are ``dropped - refused`` and
    #: ``injected - (dropped - refused)`` compares against deliveries.
    dropped_packets: int = 0
    dropped_flits: int = 0
    #: Subset of the drop counters: packets refused at the NI door
    #: because their route crossed a dead router (never injected).
    refused_packets: int = 0
    refused_flits: int = 0
    #: Fault-tolerance counters.  ``wakeup_retries`` counts wakeup
    #: requests re-issued by the PG controllers' retry/backoff protocol
    #: after a ``wakeup_fail`` fault swallowed the original.
    #: ``rerouted_packets``/``detour_hops`` count packets delivered
    #: over a non-minimal path (and their extra hops) under
    #: ``degradation="reroute"``.  Like the drop counters these are
    #: exceptional events and counted unconditionally (warmup or not);
    #: under plain XY every path is minimal, so all three stay 0 for
    #: every non-reroute, non-faulted configuration.
    wakeup_retries: int = 0
    rerouted_packets: int = 0
    detour_hops: int = 0
    drops: List[DroppedPacket] = field(default_factory=list)
    latencies: List[int] = field(default_factory=list)
    #: Record individual latencies (disabled for long runs to bound memory).
    keep_samples: bool = False
    #: Streaming tail-latency estimator: a fixed-size reservoir fed
    #: every measured network latency, so p50/p95/p99 are available in
    #: bounded memory regardless of run length (unlike ``latencies``,
    #: which grows per packet and stays opt-in).  Deliberately *not*
    #: part of :meth:`as_dict` — that contract is "every integer
    #: counter" and is golden-compared cycle-exactly across kernels;
    #: the reservoir serializes via its own
    #: ``quantiles.to_dict()``/``ReservoirQuantiles.from_dict``.
    quantiles: ReservoirQuantiles = field(default_factory=ReservoirQuantiles)

    def record_delivery(self, packet: Packet, hops: int) -> None:
        """Account a delivered packet (ignored if created during warmup)."""
        if packet.created_at < self.measure_from:
            return
        if packet.network_latency is None:
            raise SimulationError(
                "delivery recorded for a packet without a complete "
                f"injection/delivery timestamp pair (injected_at="
                f"{packet.injected_at}, delivered_at={packet.delivered_at}, "
                f"{packet.source}->{packet.destination})",
                packet=packet.packet_id,
            )
        self.delivered += 1
        self.delivered_flits += packet.size_flits
        self.total_network_latency += packet.network_latency
        self.total_latency += packet.total_latency
        self.total_hops += hops
        self.total_blocked_routers += len(packet.blocked_routers)
        self.total_wakeup_wait_cycles += packet.wakeup_wait_cycles
        if self.keep_samples:
            self.latencies.append(packet.network_latency)
        self.quantiles.add(packet.network_latency)

    def record_injection(self, packet: Packet) -> None:
        """Account a newly created packet (ignored during warmup)."""
        if packet.created_at < self.measure_from:
            return
        self.injected_packets += 1
        self.injected_flits += packet.size_flits

    def record_refusal(self, packet: Packet, cycle: int, dead_routers=()) -> None:
        """Account a packet refused at injection (never entered the
        mesh).  Refusals count into the drop totals *and* into the
        ``refused_*`` subset, so consumers can separate never-injected
        losses from in-flight purges."""
        self.refused_packets += 1
        self.refused_flits += packet.size_flits
        self.record_drop(packet, cycle, dead_routers)

    def record_drop(self, packet: Packet, cycle: int, dead_routers=()) -> None:
        """Account a packet purged by graceful degradation."""
        self.dropped_packets += 1
        self.dropped_flits += packet.size_flits
        self.drops.append(
            DroppedPacket(
                packet_id=packet.packet_id,
                source=packet.source,
                destination=packet.destination,
                cycle=cycle,
                flits=packet.size_flits,
                dead_routers=tuple(sorted(dead_routers)),
            )
        )

    def as_dict(self) -> Dict[str, int]:
        """Every integer counter, for cycle-exact golden comparisons."""
        return {
            "measure_from": self.measure_from,
            "delivered": self.delivered,
            "total_network_latency": self.total_network_latency,
            "total_latency": self.total_latency,
            "total_hops": self.total_hops,
            "total_blocked_routers": self.total_blocked_routers,
            "total_wakeup_wait_cycles": self.total_wakeup_wait_cycles,
            "delivered_flits": self.delivered_flits,
            "injected_flits": self.injected_flits,
            "injected_packets": self.injected_packets,
            "router_traversals": self.router_traversals,
            "link_traversals": self.link_traversals,
            "cycles": self.cycles,
            "dropped_packets": self.dropped_packets,
            "dropped_flits": self.dropped_flits,
            "refused_packets": self.refused_packets,
            "refused_flits": self.refused_flits,
            "wakeup_retries": self.wakeup_retries,
            "rerouted_packets": self.rerouted_packets,
            "detour_hops": self.detour_hops,
        }

    @classmethod
    def from_dict(cls, dump: Dict[str, int]) -> "NetworkStats":
        """Rebuild a stats object from an :meth:`as_dict` dump.

        The round-trip ``NetworkStats.from_dict(s.as_dict()).as_dict()
        == s.as_dict()`` is load-bearing: campaign result files and
        bench fingerprints persist ``as_dict`` dumps, and this is the
        typed way back.  Unknown keys fail loudly (a dump from a newer
        schema should not silently lose counters), and since every
        ``as_dict`` key is a constructor field, a counter added to one
        but not the other breaks the round-trip test immediately.
        """
        return cls(**dump)

    # ------------------------------------------------------------------
    @property
    def avg_packet_latency(self) -> float:
        """Average network latency in cycles (injection to delivery)."""
        return self.total_network_latency / self.delivered if self.delivered else 0.0

    @property
    def avg_total_latency(self) -> float:
        """Average latency including NI queueing (creation to delivery)."""
        return self.total_latency / self.delivered if self.delivered else 0.0

    @property
    def avg_hops(self) -> float:
        """Average minimal hop count of delivered packets."""
        return self.total_hops / self.delivered if self.delivered else 0.0

    @property
    def avg_blocked_routers(self) -> float:
        """Fig. 9 metric: powered-off routers encountered per packet."""
        return self.total_blocked_routers / self.delivered if self.delivered else 0.0

    @property
    def p50_latency(self) -> Optional[float]:
        """Median measured network latency (reservoir estimate)."""
        return self.quantiles.p50

    @property
    def p95_latency(self) -> Optional[float]:
        """95th-percentile network latency (reservoir estimate)."""
        return self.quantiles.p95

    @property
    def p99_latency(self) -> Optional[float]:
        """99th-percentile network latency (reservoir estimate)."""
        return self.quantiles.p99

    @property
    def avg_wakeup_wait(self) -> float:
        """Fig. 10 metric: cycles per packet waiting for router wakeup."""
        return self.total_wakeup_wait_cycles / self.delivered if self.delivered else 0.0

    def throughput(self, num_nodes: int) -> float:
        """Accepted traffic in flits/node/cycle over the measured window."""
        window = self.cycles - self.measure_from
        if window <= 0:
            return 0.0
        return self.delivered_flits / (window * num_nodes)
