"""Power-policy interface seen by the NoC substrate.

The NoC simulator is power-scheme agnostic: routers consult a
:class:`PowerPolicy` for neighbor availability and notify it of the
events power-gating schemes care about (head-flit activation for
early wakeups, switch-allocation stalls caused by gated-off routers,
message creation and injection checks at network interfaces).  The
concrete schemes live in :mod:`repro.powergate` and
:mod:`repro.core.schemes`; :class:`AlwaysOnPolicy` is the No-PG
baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network
    from .packet import Packet


class PowerPolicy:
    """Base policy: every router is always powered on (No-PG)."""

    name = "No-PG"

    def attach(self, network: "Network") -> None:
        """Called once when the network is built."""
        self.network = network

    def on_faults_installed(self, injector) -> None:
        """A :class:`repro.noc.faults.FaultInjector` was installed on the
        attached network.  Power-gated schemes override this to wire the
        injector into their punch fabric and PG controllers and to arm
        the blocking-wakeup fallback; the always-on baseline has no
        wakeup machinery to fault."""

    # ------------------------------------------------------------------
    # Queries from routers / NIs
    # ------------------------------------------------------------------
    def is_router_available(self, router_id: int) -> bool:
        """Whether packets may be forwarded to ``router_id`` this cycle.

        A gated-off or waking router asserts its PG signal and is
        unavailable (paper Sec. 2.2).
        """
        return True

    def is_router_available_by(self, router_id: int, by_cycle: int) -> bool:
        """Whether ``router_id`` will accept a flit landing at ``by_cycle``.

        Switch allocation happens ``Tst + Tlink`` cycles before the flit
        is actually buffered downstream, so a waking router whose wakeup
        completes before the flit lands may already be used — this is
        what makes a punch signal sent ``H`` hops ahead hide exactly
        ``H * Trouter`` cycles of wakeup latency (paper Sec. 3).
        """
        return True

    # ------------------------------------------------------------------
    # Event notifications
    # ------------------------------------------------------------------
    def begin_cycle(self, cycle: int) -> None:
        """Called at the start of every simulated cycle."""

    def end_cycle(self, cycle: int) -> None:
        """Called at the end of every simulated cycle."""

    def note_head_activated(
        self, router_id: int, next_router: int, cycle: int
    ) -> None:
        """A head flit at ``router_id`` just learned it will go to
        ``next_router`` (look-ahead routing).  ConvOpt-PG uses this to
        assert its one-hop-early wakeup signal."""

    def note_blocked(
        self, router_id: int, next_router: int, packet: "Packet", cycle: int
    ) -> None:
        """A flit at ``router_id`` is stalled because ``next_router`` is
        gated off (or still waking).  Conventional schemes assert the
        WU handshake signal here."""

    def on_message_created(self, node: int, packet: "Packet", cycle: int) -> None:
        """A message entered the NI (start of NI delay).  Power Punch
        exploits this as *slack 1* (Sec. 4.2)."""

    def on_injection_check(self, node: int, packet: "Packet", cycle: int) -> None:
        """The NI is checking local-router availability for ``packet``
        (end of NI delay).  Conventional PG and PowerPunch-Signal issue
        their injection-side wakeups here."""

    def early_local_notice(self, node: int, cycle: int) -> None:
        """The node knows a packet *will* be generated (e.g. an L2 or
        directory access just began) but not yet its destination.
        Power Punch exploits this as *slack 2* (Sec. 4.2) to wake the
        local router early."""

    def on_router_disturbed(self, router_id: int) -> None:
        """A flit was just sent toward ``router_id`` (active-set kernel
        only).  Schemes that suspend per-cycle stepping of quiescent PG
        controllers resume stepping this router's controller here: its
        datapath-empty input is about to change without any wakeup
        signal necessarily being asserted."""

    def on_router_emptied(self, router_id: int) -> None:
        """The last flit left ``router_id``'s datapath (active-set
        kernel only).  Schemes that suspend per-cycle stepping of
        busy controllers resume stepping here: the sleep precondition
        just became true."""

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def pending_work(self) -> int:
        """Packets held by policy-owned transport (e.g. a bypass ring).

        Counted by :meth:`Network.is_drained` so drain loops wait for
        auxiliary networks too.
        """
        return 0

    def router_is_off(self, router_id: int) -> bool:
        """Whether the router is currently gated off (for power stats)."""
        return False

    def router_is_waking(self, router_id: int) -> bool:
        """Whether the router is mid-wakeup (for power stats)."""
        return False


class AlwaysOnPolicy(PowerPolicy):
    """Explicit alias for the No-PG baseline."""
