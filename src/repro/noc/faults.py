"""Deterministic fault injection for the NoC simulator.

Power Punch's correctness story rests on punch signals arriving *just
in time*; this module stresses that story.  A :class:`FaultInjector`
is driven by a declarative :class:`FaultSchedule` and hooked into the
simulator through a handful of narrow injection points (the network
kernel's credit/flit delivery, the punch fabric's per-hop relay, the
PG controller's wakeup input and the kernel's allocation loop).  All
randomness comes from one seeded ``random.Random``, so a given
(schedule, workload) pair replays the exact same fault sequence.

Fault taxonomy (see ``docs/fault_model.md``):

== ================= ==================================================
#  kind              effect
== ================= ==================================================
1  ``punch_drop``    a punch signal reaching a router is lost there
                     (neither wakes it nor relays onward)
2  ``punch_dup``     the punch is processed again one cycle later
3  ``punch_delay``   the punch is processed ``delay`` cycles late
4  ``wakeup_fail``   a ``request_wakeup`` is ignored by the controller
5  ``wakeup_delay``  the wakeup is acknowledged ``delay`` cycles late
6  ``router_stall``  a router performs no VA/SA while the fault window
                     is open (transient allocator freeze)
7  ``credit_drop``   a returning credit is lost in flight
8  ``flit_corrupt``  a flit payload is bit-flipped in flight (marked
                     ``corrupted``; contents are otherwise preserved so
                     the run stays deterministic)
== ================= ==================================================

Faults 1–6 are *liveness* faults — with the blocking-wakeup fallback
enabled the network still delivers every packet, only slower.  Faults
7–8 are *safety* faults that exist to be caught: the invariant checker
(:mod:`repro.noc.invariants`) detects the credit leak / corruption.

Schedules are built programmatically or parsed from a compact spec
string (the CLI's ``--faults`` argument)::

    punch_drop,rate=0.5,start=100;router_stall,router=5,start=200,end=400;seed=7

Clauses are ``;``-separated; each is a fault kind followed by
``key=value`` fields; a bare ``seed=N`` clause seeds the injector.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from .errors import FaultSpecError

#: All recognized fault kinds.
FAULT_KINDS = (
    "punch_drop",
    "punch_dup",
    "punch_delay",
    "wakeup_fail",
    "wakeup_delay",
    "router_stall",
    "credit_drop",
    "flit_corrupt",
)

#: Keys accepted in a fault-spec clause.
_SPEC_KEYS = ("rate", "router", "start", "end", "delay", "count")


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault rule.

    ``rate`` is the per-opportunity firing probability (``router_stall``
    ignores it: a stall is a deterministic window).  ``router`` narrows
    the rule to one router (``None`` = any).  The rule is armed for
    cycles ``start <= cycle <= end`` and fires at most ``count`` times.
    """

    kind: str
    rate: float = 1.0
    router: Optional[int] = None
    start: int = 0
    end: Optional[int] = None
    delay: int = 1
    count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultSpecError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.delay < 1:
            raise FaultSpecError("fault delay must be at least 1 cycle")
        if self.end is not None and self.end < self.start:
            raise FaultSpecError(
                f"fault window ends ({self.end}) before it starts ({self.start})"
            )

    def active_at(self, cycle: int) -> bool:
        """Whether the rule's cycle window covers ``cycle``."""
        return cycle >= self.start and (self.end is None or cycle <= self.end)

    def matches(self, router: int) -> bool:
        """Whether the rule applies to ``router``."""
        return self.router is None or self.router == router


@dataclass
class FaultSchedule:
    """A seeded collection of :class:`FaultSpec` rules."""

    specs: List[FaultSpec] = field(default_factory=list)
    seed: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultSchedule":
        """Parse the compact ``--faults`` spec grammar (module docstring)."""
        specs: List[FaultSpec] = []
        seed = 0
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            fields = [f.strip() for f in clause.split(",") if f.strip()]
            head = fields[0]
            if head.startswith("seed="):
                try:
                    seed = int(head.split("=", 1)[1])
                except ValueError as exc:
                    raise FaultSpecError(f"bad seed clause {head!r}") from exc
                if len(fields) > 1:
                    raise FaultSpecError("seed clause takes no extra fields")
                continue
            kwargs: Dict[str, object] = {}
            for item in fields[1:]:
                if "=" not in item:
                    raise FaultSpecError(
                        f"expected key=value in fault clause, got {item!r}"
                    )
                key, value = item.split("=", 1)
                key = key.strip()
                if key not in _SPEC_KEYS:
                    raise FaultSpecError(
                        f"unknown fault field {key!r}; expected one of {_SPEC_KEYS}"
                    )
                try:
                    kwargs[key] = float(value) if key == "rate" else int(value)
                except ValueError as exc:
                    raise FaultSpecError(f"bad value for {key!r}: {value!r}") from exc
            specs.append(FaultSpec(kind=head, **kwargs))  # type: ignore[arg-type]
        return cls(specs=specs, seed=seed)

    def with_seed(self, seed: int) -> "FaultSchedule":
        """A copy of this schedule under a different seed."""
        return replace(self, seed=seed)

    def to_spec(self) -> str:
        """Render back to the compact ``--faults`` grammar.

        Round-trips through :meth:`parse`; used by quarantine
        post-mortems so a reroute/deadlock failure is reproducible from
        the report alone.
        """
        clauses = []
        for spec in self.specs:
            fields_ = [spec.kind]
            if spec.rate != 1.0:
                fields_.append(f"rate={spec.rate}")
            if spec.router is not None:
                fields_.append(f"router={spec.router}")
            if spec.start != 0:
                fields_.append(f"start={spec.start}")
            if spec.end is not None:
                fields_.append(f"end={spec.end}")
            if spec.delay != 1:
                fields_.append(f"delay={spec.delay}")
            if spec.count is not None:
                fields_.append(f"count={spec.count}")
            clauses.append(",".join(fields_))
        if self.seed:
            clauses.append(f"seed={self.seed}")
        return ";".join(clauses)

    def kinds(self) -> List[str]:
        """Distinct fault kinds present in the schedule."""
        seen: Dict[str, None] = {}
        for spec in self.specs:
            seen[spec.kind] = None
        return list(seen)


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired."""

    cycle: int
    kind: str
    router: int
    detail: str = ""

    def __str__(self) -> str:
        text = f"[{self.cycle:6d}] fault {self.kind:12s} R{self.router}"
        return f"{text} {self.detail}".rstrip()


class FaultInjector:
    """Executes a :class:`FaultSchedule` against one network.

    The injector is passive: simulator components ask it whether a
    fault fires at each injection point.  Install it with
    :meth:`repro.noc.network.Network.install_faults`, which also wires
    the punch fabric and PG controllers of power-gated schemes.
    """

    #: Cap on the retained fault-event log (the full log of a heavily
    #: faulted million-cycle run would dominate memory).
    MAX_EVENTS = 10_000

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.rng = random.Random(schedule.seed)
        #: Firing count per spec index (enforces ``count`` budgets).
        self._fired: List[int] = [0] * len(schedule.specs)
        self.events: List[FaultEvent] = []
        self.dropped_events = 0
        #: Optional shared ring buffer (see :class:`repro.noc.tracing.EventRing`);
        #: wired up when an invariant checker is installed alongside.
        self.ring = None
        #: Totals per fault kind, for reports and tests.
        self.counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    # ------------------------------------------------------------------
    # Injection points
    # ------------------------------------------------------------------
    def punch_disposition(self, router: int, cycle: int) -> Tuple[str, int]:
        """Fate of a punch being processed at ``router``: ``(action, delay)``.

        ``action`` is ``"ok"``, ``"drop"``, ``"delay"`` or ``"dup"``.
        """
        for kind in ("punch_drop", "punch_delay", "punch_dup"):
            spec = self._roll(kind, router, cycle)
            if spec is not None:
                action = kind.split("_", 1)[1]
                self._record(cycle, kind, router)
                return action, spec.delay
        return "ok", 0

    def wakeup_disposition(self, router: int, cycle: int) -> Tuple[str, int]:
        """Fate of a ``request_wakeup`` at ``router``: ``(action, delay)``."""
        for kind in ("wakeup_fail", "wakeup_delay"):
            spec = self._roll(kind, router, cycle)
            if spec is not None:
                action = kind.split("_", 1)[1]
                self._record(cycle, kind, router)
                return action, spec.delay
        return "ok", 0

    def is_stalled(self, router: int, cycle: int) -> bool:
        """Whether an open ``router_stall`` window freezes ``router``.

        Deterministic (no RNG draw): a stall is a window, not a coin
        flip, so it can model both transient glitches and the hard
        failure the deadlock watchdog must catch.
        """
        for index, spec in enumerate(self.schedule.specs):
            if spec.kind != "router_stall":
                continue
            if not (spec.matches(router) and spec.active_at(cycle)):
                continue
            if spec.count is not None and self._fired[index] >= spec.count:
                continue
            if cycle == spec.start:
                # Count each window once, on entry.
                self._record(cycle, "router_stall", router)
            return True
        return False

    def dead_routers(self, cycle: int, threshold: int) -> List[int]:
        """Routers whose stall window has been open ``>= threshold`` cycles.

        This is the permanent-fault detector behind the graceful-
        degradation policy (``NoCConfig.degradation``): a
        ``router_stall`` that has frozen one specific router
        continuously for ``threshold`` cycles is no longer a transient
        glitch, it is a dead router.  Wildcard stalls (``router=None``
        freezes the whole mesh) are never promoted to deaths — there is
        no network left to degrade gracefully to.
        """
        dead: Dict[int, None] = {}
        for spec in self.schedule.specs:
            if spec.kind != "router_stall" or spec.router is None:
                continue
            if spec.active_at(cycle) and cycle - spec.start >= threshold:
                dead[spec.router] = None
        return sorted(dead)

    def drop_credit(self, router: int, direction, vc: int, cycle: int) -> bool:
        """Whether the credit arriving at ``router`` is lost."""
        spec = self._roll("credit_drop", router, cycle)
        if spec is None:
            return False
        self._record(cycle, "credit_drop", router, f"{direction.name} vc{vc}")
        return True

    def maybe_corrupt(self, router: int, flit, cycle: int) -> bool:
        """Whether the flit landing at ``router`` gets bit-flipped."""
        spec = self._roll("flit_corrupt", router, cycle)
        if spec is None:
            return False
        flit.corrupted = True
        self._record(
            cycle, "flit_corrupt", router, f"pkt#{flit.packet.packet_id}/{flit.index}"
        )
        return True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_fired(self) -> int:
        """Total faults fired so far, across all kinds."""
        return sum(self.counts.values())

    def summary(self) -> str:
        """One-line per-kind firing summary."""
        fired = {k: v for k, v in self.counts.items() if v}
        if not fired:
            return "no faults fired"
        return ", ".join(f"{k}={v}" for k, v in fired.items())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _roll(self, kind: str, router: int, cycle: int) -> Optional[FaultSpec]:
        """First armed spec of ``kind`` that fires at this opportunity."""
        for index, spec in enumerate(self.schedule.specs):
            if spec.kind != kind:
                continue
            if not (spec.matches(router) and spec.active_at(cycle)):
                continue
            if spec.count is not None and self._fired[index] >= spec.count:
                continue
            if spec.rate < 1.0 and self.rng.random() >= spec.rate:
                continue
            self._fired[index] += 1
            return spec
        return None

    def _record(self, cycle: int, kind: str, router: int, detail: str = "") -> None:
        self.counts[kind] += 1
        if len(self.events) < self.MAX_EVENTS:
            self.events.append(FaultEvent(cycle, kind, router, detail))
        else:
            self.dropped_events += 1
        if self.ring is not None:
            self.ring.record(cycle, f"fault:{kind}", router, detail)


# ----------------------------------------------------------------------
# Monte-Carlo fault-spec sampling (reliability campaigns)
# ----------------------------------------------------------------------
#: Fault kinds a reliability trial may sample (liveness faults plus the
#: permanent-death trigger; the safety faults exist to be *caught* by
#: the invariant checker and would dominate every estimate with
#: guaranteed failures).
SAMPLABLE_FAULT_KINDS = (
    "punch_drop",
    "punch_dup",
    "punch_delay",
    "wakeup_fail",
    "wakeup_delay",
    "router_stall",
)


def sample_fault_schedule(
    seed: int,
    num_nodes: int,
    *,
    kinds: Tuple[str, ...] = SAMPLABLE_FAULT_KINDS,
    max_faults: int = 2,
    horizon: int = 200,
    rate_lo: float = 0.05,
    rate_hi: float = 0.5,
    max_delay: int = 8,
) -> FaultSchedule:
    """Draw one fault schedule from a seeded distribution.

    This is the Monte-Carlo sampling step of the reliability
    campaigns: every trial seed maps deterministically to one concrete
    :class:`FaultSchedule` (clause count, kinds, routers, rates,
    windows and the injector's own RNG seed all derive from ``seed``),
    so estimates are exactly reproducible and individual failures can
    be replayed from the rendered :meth:`FaultSchedule.to_spec` string
    alone.

    ``router_stall`` clauses are always router-specific and permanent
    (open-ended window starting inside ``horizon``) — the shape the
    dead-router detector promotes to a death.  Rate-based kinds get a
    rate uniform in ``[rate_lo, rate_hi]`` (rounded so the spec string
    round-trips) and delay-based kinds a delay in ``[1, max_delay]``.
    """
    if max_faults < 1:
        raise FaultSpecError("max_faults must be at least 1")
    rng = random.Random(seed)
    specs = []
    for _ in range(rng.randint(1, max_faults)):
        kind = rng.choice(list(kinds))
        if kind == "router_stall":
            specs.append(
                FaultSpec(
                    kind=kind,
                    router=rng.randrange(num_nodes),
                    start=rng.randrange(horizon),
                )
            )
            continue
        kwargs = {
            "rate": round(rng.uniform(rate_lo, rate_hi), 4),
            "start": rng.randrange(horizon),
        }
        if rng.random() < 0.5:
            kwargs["router"] = rng.randrange(num_nodes)
        if kind.endswith("_delay"):
            kwargs["delay"] = rng.randint(1, max_delay)
        specs.append(FaultSpec(kind=kind, **kwargs))
    return FaultSchedule(specs=specs, seed=rng.randrange(1 << 30))


# ----------------------------------------------------------------------
# Ambient (process-wide) robustness configuration
# ----------------------------------------------------------------------
#: The CLI's global ``--faults`` / ``--strict-invariants`` /
#: ``--degradation`` flags must reach networks constructed arbitrarily
#: deep inside experiment harnesses without threading parameters
#: through every call site, so they are staged here and consulted by
#: ``Network.__init__``.
_ambient_fault_spec: Optional[str] = None
_ambient_strict_invariants: bool = False
_ambient_watchdog: Optional[int] = None
_ambient_degradation: Optional[str] = None
_ambient_dead_threshold: Optional[int] = None
_ambient_bounds: bool = False


def set_ambient(
    fault_spec: Optional[str] = None,
    strict_invariants: bool = False,
    watchdog: Optional[int] = None,
    degradation: Optional[str] = None,
    dead_router_threshold: Optional[int] = None,
    bounds: bool = False,
) -> None:
    """Configure robustness features for every subsequently built network.

    ``fault_spec`` is validated eagerly so a bad ``--faults`` string
    fails fast instead of mid-experiment.  ``degradation`` /
    ``dead_router_threshold``, when not ``None``, override the
    corresponding ``NoCConfig`` fields of every subsequently built
    network (the CLI's ``--degradation`` / ``--reroute`` /
    ``--dead-router-threshold`` knobs).  ``bounds`` installs a strict
    :class:`repro.guarantees.BoundChecker` on every network (the
    ``--bounds`` flag); it is rejected together with ``fault_spec``
    because latency bounds are certified for fault-free runs only.
    """
    global _ambient_fault_spec, _ambient_strict_invariants, _ambient_watchdog
    global _ambient_degradation, _ambient_dead_threshold, _ambient_bounds
    if bounds and fault_spec is not None:
        raise FaultSpecError(
            "--bounds certifies fault-free latency bounds and cannot "
            "be combined with --faults"
        )
    if fault_spec is not None:
        FaultSchedule.parse(fault_spec)
    if degradation is not None and degradation not in (
        "none",
        "drop",
        "reroute",
        "fail_fast",
    ):
        raise FaultSpecError(
            f"unknown degradation mode {degradation!r}; expected "
            "'none', 'drop', 'reroute' or 'fail_fast'"
        )
    if dead_router_threshold is not None and dead_router_threshold < 1:
        raise FaultSpecError("dead_router_threshold must be positive")
    _ambient_fault_spec = fault_spec
    _ambient_strict_invariants = strict_invariants
    _ambient_watchdog = watchdog
    _ambient_degradation = degradation
    _ambient_dead_threshold = dead_router_threshold
    _ambient_bounds = bounds


def clear_ambient() -> None:
    """Reset the ambient robustness configuration."""
    set_ambient(None, False, None, None, None, False)


def ambient_config() -> Tuple[
    Optional[str], bool, Optional[int], Optional[str], Optional[int], bool
]:
    """The staged ``(fault_spec, strict_invariants, watchdog,
    degradation, dead_router_threshold, bounds)`` tuple."""
    return (
        _ambient_fault_spec,
        _ambient_strict_invariants,
        _ambient_watchdog,
        _ambient_degradation,
        _ambient_dead_threshold,
        _ambient_bounds,
    )
