"""Cycle-driven network simulation kernel.

Assembles routers, links and network interfaces over a mesh topology
and advances them cycle by cycle.  The kernel owns all cross-component
event queues (flits on links, credits in flight) so routers and NIs
stay simple and synchronous.

Per-cycle ordering:

1. deliver flits that finished their link traversal (BW this cycle);
2. deliver returning credits;
3. power policy ``begin_cycle`` (punch-fabric propagation, PG
   controller FSM updates, sleep/wake decisions);
4. NIs attempt injection (availability checks fire WU/punch hooks);
5. all routers run VC allocation, then all run switch allocation
   (VA-then-SA ordering inside one cycle is what permits the 3-stage
   router's speculative SA);
6. power policy ``end_cycle`` (punch-signal generation from the
   wakeup requirements visible this cycle, energy accounting).

Active-set kernel: with ``NoCConfig.kernel == "active"`` (the default)
the kernel maintains explicit work-sets so the per-cycle cost scales
with activity instead of mesh size:

* ``active_routers`` — router ids with occupied input VCs.  A router
  enters when a flit is buffered into it (``_deliver_flits``, the only
  path by which a VC becomes occupied) and leaves after a switch-
  allocation round drains its last flit.
* ``active_nis`` — NI node ids with queued or streaming packets.  An
  NI enters when a packet is (re)queued (the NI fires the kernel's
  ``on_work`` callback) and leaves once its queues and streams empty.

Both sets are iterated in sorted id order, which matches the naive
kernel's index-order scans exactly — components outside the sets would
be no-ops — so the two kernels are cycle-exact replicas of each other.
``kernel == "naive"`` keeps the full per-cycle scans as the reference
implementation for equivalence tests and benchmarks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Callable, DefaultDict, Dict, List, Optional, Set, Tuple

from .buffers import VCState
from .config import NoCConfig
from .errors import (
    DegradedNetworkError,
    DrainTimeoutError,
    TopologyError,
    UnsupportedTopologyError,
)
from .faults import FaultInjector, FaultSchedule, ambient_config
from .network_interface import NetworkInterface
from .packet import Flit, Packet
from .policy import AlwaysOnPolicy, PowerPolicy
from .router import Router
from .routing import FaultTolerantRouting, RoutingAlgorithm, default_routing
from .stats import NetworkStats
from .topology import Direction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .invariants import InvariantChecker

#: Cycles from a switch-allocation grant until the flit is buffered
#: downstream: ST (1) + link (1) + BW in the arrival cycle.
_SA_TO_ARRIVAL = 3
#: Cycles from a switch-allocation grant until the freed slot's credit
#: is visible upstream.
_SA_TO_CREDIT = 2
#: Cycles from NI flit send until it is buffered in the local port.
_NI_TO_ARRIVAL = 1


class Network:
    """A complete mesh NoC instance."""

    def __init__(
        self,
        config: NoCConfig,
        policy: Optional[PowerPolicy] = None,
    ) -> None:
        self.config = config
        self.topology = config.make_topology()
        # The ambient --degradation/--dead-router-threshold overrides
        # must be known before routers are built: reroute mode swaps in
        # the fault-tolerant routing function, and every router holds a
        # reference to the routing object.
        (
            _spec,
            _strict,
            _watchdog,
            ambient_degradation,
            ambient_threshold,
            _bounds,
        ) = ambient_config()
        self._degradation = (
            ambient_degradation
            if ambient_degradation is not None
            else config.degradation
        )
        self._dead_threshold = (
            ambient_threshold
            if ambient_threshold is not None
            else config.dead_router_threshold
        )
        if self._degradation == "reroute":
            # Config validation keeps reroute mesh-only, but the
            # ambient override path can request it too — same rule.
            if self.topology.name != "mesh":
                raise UnsupportedTopologyError(
                    'degradation="reroute"', self.topology.name
                )
            self.routing: RoutingAlgorithm = FaultTolerantRouting(self.topology)
        else:
            self.routing = default_routing(self.topology)
        self.policy = policy if policy is not None else AlwaysOnPolicy()
        self.cycle = 0
        self.stats = NetworkStats()

        self.routers: List[Router] = [
            Router(node, config, self.routing) for node in range(config.num_nodes)
        ]
        for router in self.routers:
            for direction, neighbor in self.topology.neighbors(router.router_id):
                router.connected[direction] = neighbor

        #: Active-set kernel work-sets (see module docstring).  They are
        #: maintained under both kernels — entry is event-driven and
        #: cheap — but only the active kernel iterates them in ``step``.
        #: ``kernel="vector"`` also runs active-set scans whenever the
        #: vector engine is not engaged (unsupported configuration, or
        #: materialized back mid-run).
        self._active_kernel = config.kernel in ("active", "vector")
        #: Engaged vector engine (see ``repro.noc.vector``), or None.
        #: Engagement is attempted once, on the first ``step`` of a
        #: ``kernel="vector"`` network.
        self._engine = None
        self._try_vector = config.kernel == "vector"
        self.active_routers: Set[int] = set()
        self.active_nis: Set[int] = set()

        self.interfaces: List[NetworkInterface] = [
            NetworkInterface(
                node,
                config,
                self.routers[node],
                self.policy,
                self._ni_send,
                on_work=self.active_nis.add,
            )
            for node in range(config.num_nodes)
        ]

        #: Flit counts per (router, outgoing direction), LOCAL = ejection.
        #: Read through the ``link_counts`` property, which folds in the
        #: vector engine's array counters when one is engaged.
        self._link_counts: List[Dict[Direction, int]] = [
            {d: 0 for d in self.topology.ports} for _ in range(config.num_nodes)
        ]

        # Event queues keyed by delivery cycle.
        self._flit_events: DefaultDict[int, List[Tuple[int, Direction, int, Flit]]] = (
            defaultdict(list)
        )
        self._credit_events: DefaultDict[int, List[Tuple[int, Direction, int]]] = (
            defaultdict(list)
        )
        self._eject_events: DefaultDict[int, List[Tuple[int, Flit]]] = defaultdict(list)
        #: Optional robustness layer (see install_faults / install_invariants).
        self.faults: Optional[FaultInjector] = None
        self.invariants: Optional["InvariantChecker"] = None
        #: Optional latency-bound checker (see install_bounds).
        self.bounds = None
        #: Graceful-degradation state (see _check_degradation): routers
        #: declared permanently dead, and a memo of which (start, dest)
        #: XY walks cross one (cleared whenever the dead set grows).
        #: ``_degradation``/``_dead_threshold`` were resolved above
        #: (config fields plus ambient CLI overrides).
        self.dead_routers: Set[int] = set()
        self._route_crosses_dead: Dict[Tuple[int, int], bool] = {}
        # Context for the bound-method SA sinks (see _run_switch_allocation).
        self._sa_router: Optional[Router] = None
        self._sa_cycle = 0
        self.policy.attach(self)
        self._apply_ambient_robustness()

    # ------------------------------------------------------------------
    # Robustness layer
    # ------------------------------------------------------------------
    def _apply_ambient_robustness(self) -> None:
        """Honor the process-wide ``--faults`` / ``--strict-invariants``
        / ``--bounds`` configuration staged via
        :func:`repro.noc.faults.set_ambient`."""
        (
            fault_spec,
            strict_invariants,
            watchdog,
            _degradation,
            _threshold,
            bounds,
        ) = ambient_config()
        if fault_spec is not None:
            self.install_faults(FaultInjector(FaultSchedule.parse(fault_spec)))
        if strict_invariants:
            from .invariants import InvariantChecker

            kwargs = {}
            if watchdog is not None:
                kwargs["max_network_age"] = watchdog
            self.install_invariants(InvariantChecker(strict=True, **kwargs))
        if bounds:
            # Deferred import: the guarantees layer sits above noc.
            from ..guarantees import BoundChecker

            self.install_bounds(BoundChecker(strict=True))

    def install_faults(self, injector: FaultInjector) -> None:
        """Attach a fault injector; the policy wires its own fault points
        (punch fabric, PG controllers) and enables the blocking-wakeup
        fallback so lost punches degrade latency instead of liveness."""
        if self.bounds is not None:
            from ..guarantees.bounds import UnboundableConfigError

            raise UnboundableConfigError(
                "latency bounds are certified for the fault-free "
                "pipeline model; remove the bound checker before "
                "installing a fault injector"
            )
        self._disengage_vector()
        self.faults = injector
        self.policy.on_faults_installed(injector)
        if self.invariants is not None:
            injector.ring = self.invariants.ring

    def install_invariants(self, checker: "InvariantChecker") -> None:
        """Attach a runtime invariant checker (see repro.noc.invariants)."""
        self._disengage_vector()
        self.invariants = checker
        checker.attach(self)
        if self.faults is not None:
            self.faults.ring = checker.ring
        if self.routing.restricts_vcs:
            # Wrapped fabrics certify their dateline VC-class scheme up
            # front: an acyclic channel-dependency graph, or a loud
            # InvariantViolation before the first cycle runs.
            self.routing.verify_deadlock_free()

    def install_bounds(self, checker) -> None:
        """Attach a :class:`repro.guarantees.BoundChecker`.

        Unlike faults/invariants this is a pure delivery listener — it
        reads completed packets and never perturbs simulation state —
        so it does **not** disengage the vector kernel: the SoA engine
        fires ejection listeners exactly like the object kernels.
        """
        self.bounds = checker
        checker.attach(self)

    # ------------------------------------------------------------------
    # Producer-facing API
    # ------------------------------------------------------------------
    def inject(self, packet: Packet) -> None:
        """Hand a freshly created message to its source NI this cycle."""
        if self.dead_routers and (
            (
                self._degradation == "drop"
                and self._crosses_dead(packet.source, packet.destination)
            )
            or (
                self._degradation == "reroute"
                and not self.routing.reachable(packet.source, packet.destination)
            )
        ):
            # Under "drop" the packet would wedge behind a dead router;
            # under "reroute" only genuinely unreachable endpoints are
            # refused (dead source/destination, or a node the fault cut
            # off from the live component) — everything else detours.
            # Either way: refuse at the door with full accounting
            # instead of letting it (and everything behind it) pile up
            # until the watchdog fires.  Refused packets are never
            # record_injection()'d, so they land in the refused_*
            # subset of the drop counters.
            packet.created_at = self.cycle
            self.stats.record_refusal(packet, self.cycle, self.dead_routers)
            if self.invariants is not None:
                self.invariants.on_packet_dropped(packet, self.cycle)
            return
        self.interfaces[packet.source].enqueue(packet, self.cycle)
        self.stats.record_injection(packet)
        if self.invariants is not None:
            self.invariants.on_packet_created(packet, self.cycle)

    def add_delivery_listener(self, listener: Callable[[Packet, int], None]) -> None:
        """Register a callback fired for every delivered packet."""
        for ni in self.interfaces:
            ni.add_eject_listener(listener)

    def deliver_out_of_band(self, packet: Packet, cycle: int) -> None:
        """Complete a packet that bypassed the mesh datapath.

        Used by schemes with auxiliary transport (e.g. the NoRD-like
        bypass ring): records the delivery statistics and fires the
        destination NI's delivery listeners exactly as a normal
        ejection would.
        """
        packet.delivered_at = cycle
        self.stats.record_delivery(
            packet, self.topology.hop_distance(packet.source, packet.destination)
        )
        self.interfaces[packet.destination].notify_delivery(packet, cycle)

    def in_flight_packets(self) -> int:
        """Flits/packets created but not yet delivered, counted over the
        same universe :meth:`is_drained` checks: NI queues and streams,
        router buffers, flits on links, and flits mid-ejection."""
        if self._engine is not None:
            return self._engine.in_flight_packets()
        pending = sum(ni.pending_packets() for ni in self.interfaces)
        buffered = sum(r.buffered_flits() for r in self.routers)
        flying = sum(len(v) for v in self._flit_events.values())
        ejecting = sum(len(v) for v in self._eject_events.values())
        return pending + buffered + flying + ejecting

    def is_drained(self) -> bool:
        """Whether no packet, flit, credit or policy work is outstanding.

        Scans only the active sets: components outside them cannot hold
        work (NIs fire ``on_work`` whenever a packet is queued; routers
        are added when a flit is buffered, and in-flight flits show up
        in ``_flit_events``).  Stale entries — possible under the naive
        kernel, which never prunes — are re-checked and dropped here.
        """
        if self._engine is not None:
            return self._engine.is_drained()
        for node in sorted(self.active_nis):
            if self.interfaces[node].pending_packets():
                return False
        self.active_nis.clear()
        for router_id in sorted(self.active_routers):
            if not self.routers[router_id].datapath_empty():
                return False
        self.active_routers.clear()
        if any(self._flit_events.values()):
            return False
        if any(self._eject_events.values()):
            return False
        if any(self._credit_events.values()):
            return False
        return self.policy.pending_work() == 0

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def run(self, cycles: int) -> None:
        """Advance the network a fixed number of cycles."""
        for _ in range(cycles):
            self.step()

    def run_until_drained(self, max_cycles: int = 1_000_000) -> None:
        """Advance until every injected packet is delivered."""
        deadline = self.cycle + max_cycles
        while not self.is_drained():
            if self.cycle >= deadline:
                post_mortem = None
                if self.invariants is not None:
                    post_mortem = self.invariants.build_post_mortem(
                        self.cycle, "drain timeout"
                    )
                error = DrainTimeoutError(
                    f"network failed to drain within {max_cycles} cycles; "
                    f"{self.in_flight_packets()} packet(s) still in flight",
                    cycle=self.cycle,
                )
                error.post_mortem = post_mortem
                self.attach_fault_context(error)
                if post_mortem is not None:
                    error.args = (f"{error.args[0]}\n{post_mortem.render()}",)
                raise error
            self.step()

    @property
    def link_counts(self) -> List[Dict[Direction, int]]:
        """Flit counts per (router, outgoing direction), LOCAL = ejection."""
        if self._engine is not None:
            self._engine.fold_link_counts()
        return self._link_counts

    def _disengage_vector(self) -> None:
        """Materialize and drop the vector engine (and never re-engage):
        called before attaching mid-run machinery — fault injectors,
        invariant checkers — the engine does not model."""
        self._try_vector = False
        if self._engine is not None:
            self._engine.materialize()

    def step(self) -> None:
        """Advance one cycle (see module docstring for phase order)."""
        if self._engine is not None:
            self._engine.step()
            return
        if self._try_vector:
            self._try_vector = False
            from .vector import try_engage

            engine = try_engage(self)
            if engine is not None:
                self._engine = engine
                engine.step()
                return
        cycle = self.cycle
        if self._degradation != "none" and self.faults is not None:
            self._check_degradation(cycle)
        self._deliver_flits(cycle)
        self._deliver_credits(cycle)
        self.policy.begin_cycle(cycle)
        if self._active_kernel:
            # Sorted iteration reproduces the naive kernel's index-order
            # scan (NIs it skips have no work and would be no-ops).
            for node in sorted(self.active_nis):
                ni = self.interfaces[node]
                if ni.has_work():
                    ni.step(cycle)
                if not ni.has_work():
                    self.active_nis.discard(node)
        else:
            for ni in self.interfaces:
                if ni.has_work():
                    ni.step(cycle)
        # A flit granted SA this cycle lands downstream _SA_TO_ARRIVAL
        # cycles later; a waking router that completes by then may be
        # used (see PowerPolicy.is_router_available_by).  The probe is
        # passed unbound with its arrival cycle — one probe call per
        # SA-ready VC instead of a closure hop plus the probe.
        available_by = self.policy.is_router_available_by
        arrival_cycle = cycle + _SA_TO_ARRIVAL
        if self._active_kernel:
            busy = [self.routers[rid] for rid in sorted(self.active_routers)]
        else:
            busy = [router for router in self.routers if router._occupied]
        if self.faults is not None:
            # A stalled router buffers arrivals but performs no VA/SA.
            busy = [
                router
                for router in busy
                if not self.faults.is_stalled(router.router_id, cycle)
            ]
        if self._active_kernel:
            # Allocator rounds before a router's wake deadline are
            # provable no-ops (no eligible VC, no blocked-VC report, no
            # arbitration-pointer movement), so the active kernel skips
            # them; the deadlines are recomputed by every round that
            # does run and only lowered by eligibility-creating events.
            for router in busy:
                if cycle >= router._va_wake_at:
                    router.do_vc_allocation(cycle)
            discard = self.active_routers.discard
            for router in busy:
                if cycle >= router._sa_wake_at:
                    self._run_switch_allocation(router, cycle, available_by, arrival_cycle)
                    # Routers drain only through this SA round (stalled
                    # routers were filtered from ``busy`` but stay
                    # occupied); a skipped round cannot drain.
                    if not router._occupied:
                        discard(router.router_id)
        else:
            for router in busy:
                router.do_vc_allocation(cycle)
            for router in busy:
                self._run_switch_allocation(router, cycle, available_by, arrival_cycle)
        self.policy.end_cycle(cycle)
        self.stats.cycles = cycle + 1
        if self.invariants is not None:
            self.invariants.on_cycle_end(cycle)
        self.cycle = cycle + 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _deliver_flits(self, cycle: int) -> None:
        events = self._flit_events.pop(cycle, None)
        faults = self.faults
        invariants = self.invariants
        if events:
            routers = self.routers
            mark_active = self.active_routers.add
            for router_id, direction, vc, flit in events:
                router = routers[router_id]
                router.incoming_in_flight -= 1
                if faults is not None:
                    faults.maybe_corrupt(router_id, flit, cycle)
                if invariants is not None:
                    invariants.on_flit_arrival(router_id, flit, cycle)
                router.receive_flit(direction, vc, flit, cycle)
                mark_active(router_id)
        ejections = self._eject_events.pop(cycle, None)
        if ejections:
            interfaces = self.interfaces
            hop_distance = self.topology.hop_distance
            stats = self.stats
            record_delivery = stats.record_delivery
            for node, flit in ejections:
                if invariants is not None:
                    invariants.on_flit_ejected(node, flit, cycle)
                interfaces[node].eject_flit(flit, cycle)
                if flit.is_tail:
                    packet = flit.packet
                    hops = hop_distance(packet.source, packet.destination)
                    record_delivery(packet, hops)
                    detour = packet.hops_taken - hops
                    if detour > 0:
                        # Only fault-tolerant rerouting produces
                        # non-minimal paths; XY keeps this branch cold.
                        stats.rerouted_packets += 1
                        stats.detour_hops += detour

    def _deliver_credits(self, cycle: int) -> None:
        events = self._credit_events.pop(cycle, None)
        if not events:
            return
        for router_id, direction, vc in events:
            if self.faults is not None and self.faults.drop_credit(
                router_id, direction, vc, cycle
            ):
                continue
            if router_id < 0:
                # Credit destined for an NI (local-port slot freed).
                self.interfaces[-router_id - 1].credit_from_router(vc)
            else:
                self.routers[router_id].return_credit(direction, vc)

    def _ni_send(self, node: int, vc: int, flit: Flit, cycle: int) -> None:
        router = self.routers[node]
        router.incoming_in_flight += 1
        if self.invariants is not None:
            self.invariants.on_flit_sent(node, flit, cycle)
        self._flit_events[cycle + _NI_TO_ARRIVAL].append(
            (node, Direction.LOCAL, vc, flit)
        )
        if self._active_kernel:
            # The local router's datapath is no longer empty: a parked
            # quiescent PG controller must resume per-cycle stepping.
            self.policy.on_router_disturbed(node)

    def _run_switch_allocation(
        self,
        router: Router,
        cycle: int,
        available_by: Callable[[int, int], bool],
        arrival_cycle: int,
    ) -> None:
        # The departure/blocked sinks are bound methods reading the
        # (router, cycle) context from attributes instead of closures:
        # allocating two function objects per router per cycle is
        # measurable in the cycle kernel's hot path.
        self._sa_router = router
        self._sa_cycle = cycle
        router.do_switch_allocation(
            cycle,
            available_by,
            arrival_cycle,
            self._sa_depart,
            self._sa_note_blocked,
        )

    def _sa_depart(
        self,
        flit: Flit,
        in_dir: Direction,
        in_vc: int,
        out_dir: Direction,
        out_vc: int,
    ) -> None:
        router = self._sa_router
        cycle = self._sa_cycle
        self.stats.router_traversals += 1
        self._link_counts[router.router_id][out_dir] += 1
        # ``_schedule_credit_return`` inlined: one call per granted flit.
        if in_dir == Direction.LOCAL:
            # Encode NI targets as negative ids.
            self._credit_events[cycle + _SA_TO_CREDIT].append(
                (-router.router_id - 1, Direction.LOCAL, in_vc)
            )
        else:
            upstream = router.connected[in_dir]
            if upstream is None:
                raise TopologyError(
                    "credit return toward a mesh edge with no neighbor",
                    cycle=cycle, router=router.router_id, port=in_dir, vc=in_vc,
                )
            self._credit_events[cycle + _SA_TO_CREDIT].append(
                (upstream, in_dir.opposite, in_vc)
            )
        if out_dir == Direction.LOCAL:
            self._eject_events[cycle + 1].append((router.router_id, flit))
        else:
            neighbor = router.connected[out_dir]
            if neighbor is None:
                raise TopologyError(
                    "flit departed toward a mesh edge with no neighbor",
                    cycle=cycle, router=router.router_id, port=out_dir,
                    vc=out_vc, packet=flit.packet.packet_id,
                )
            self.stats.link_traversals += 1
            if flit.is_head:
                flit.packet.hops_taken += 1
            self.routers[neighbor].incoming_in_flight += 1
            self._flit_events[cycle + _SA_TO_ARRIVAL].append(
                (neighbor, out_dir.opposite, out_vc, flit)
            )
            if self._active_kernel:
                # The neighbor's datapath is no longer empty: its
                # PG controller (if quiescently skipped) must
                # resume per-cycle stepping from the next cycle.
                self.policy.on_router_disturbed(neighbor)
        if self._active_kernel and not router._occupied:
            if not router.incoming_in_flight and not router._live_vcs:
                # This departure emptied the router's datapath (no
                # buffered flits, nothing in flight, no live mid-packet
                # allocation): its own PG controller (if parked in the
                # busy skip) sees its sleep precondition change.  A
                # drained-but-owned VC keeps the busy park instead —
                # the tail's eventual departure re-runs this check.
                self.policy.on_router_emptied(router.router_id)

    def _sa_note_blocked(self, neighbor: int, flit: Flit) -> None:
        packet = flit.packet
        packet.blocked_routers.add(neighbor)
        packet.wakeup_wait_cycles += 1
        self.policy.note_blocked(
            self._sa_router.router_id, neighbor, packet, self._sa_cycle
        )

    # ------------------------------------------------------------------
    # Graceful degradation under permanent faults
    # ------------------------------------------------------------------
    def _crosses_dead(self, start: int, dest: int) -> bool:
        """Whether the XY walk ``start -> dest`` touches a dead router."""
        key = (start, dest)
        hit = self._route_crosses_dead.get(key)
        if hit is None:
            dead = self.dead_routers
            hit = start in dead
            node = start
            while not hit and node != dest:
                node = self.routing.next_hop(node, dest)
                hit = node in dead
            self._route_crosses_dead[key] = hit
        return hit

    def _check_degradation(self, cycle: int) -> None:
        """Declare routers dead and apply the configured policy.

        A router is dead once its ``router_stall`` fault window has
        been continuously open for ``dead_router_threshold`` cycles
        (see :meth:`FaultInjector.dead_routers`).  ``fail_fast`` raises
        :class:`DegradedNetworkError` carrying the blast radius;
        ``drop`` purges every packet whose remaining route crosses a
        dead router — with full credit/ownership restoration, so the
        strict invariant checker stays green — and keeps the rest of
        the mesh live.  ``reroute`` keeps traffic flowing instead:
        only packets physically stuck in (or flying toward, or
        unreachable past) the dead routers are purged, every surviving
        head flit's route is recomputed against the rebuilt
        fault-tolerant tables, and the tables' channel-dependency
        graph is re-certified acyclic whenever an invariant checker is
        installed.
        """
        newly = [
            rid
            for rid in self.faults.dead_routers(cycle, self._dead_threshold)
            if rid not in self.dead_routers
        ]
        if not newly:
            return
        self.dead_routers.update(newly)
        self._route_crosses_dead.clear()
        ring = self.invariants.ring if self.invariants is not None else self.faults.ring
        if ring is not None:
            for rid in newly:
                ring.record(
                    cycle, "router-dead", rid,
                    f"stalled >= {self._dead_threshold} cycles",
                )
        if self._degradation == "reroute":
            self._apply_reroute(cycle)
            return
        doomed = self._blast_radius()
        if self._degradation == "fail_fast":
            error = DegradedNetworkError(
                f"router(s) {newly} declared permanently dead after "
                f"{self._dead_threshold} continuously stalled cycles",
                dead_routers=sorted(self.dead_routers),
                affected_packets=sorted(doomed),
                cycle=cycle,
                router=newly[0],
            )
            self.attach_fault_context(error)
            raise error
        if doomed:
            self._purge_doomed(doomed, cycle)

    def attach_fault_context(self, error: Exception) -> None:
        """Stamp ``error`` with the fault spec and dead-router set.

        The supervised campaign executor copies both into the
        quarantine ``reports/<key>.json`` post-mortem, so a reroute or
        deadlock failure is reproducible from the report alone.
        """
        if getattr(error, "fault_spec", None) is None and self.faults is not None:
            error.fault_spec = self.faults.schedule.to_spec()
        if not getattr(error, "dead_routers", None):
            error.dead_routers = tuple(sorted(self.dead_routers))

    def _apply_reroute(self, cycle: int) -> None:
        """Route live traffic around the (grown) dead set.

        Order matters: the tables are rebuilt first (and certified
        deadlock-free under the strict checker), then packets that
        cannot be saved — a flit buffered in or flying toward a dead
        router, or an endpoint the fault disconnected — are purged
        with full accounting, and finally every surviving buffered
        head flit re-resolves its output port against the new tables
        (releasing any downstream VC grant that pointed the old way).
        """
        routing = self.routing
        routing.set_dead(frozenset(self.dead_routers))
        if self.invariants is not None:
            routing.verify_deadlock_free()
        doomed = self._stranded_packets()
        if doomed:
            self._purge_doomed(doomed, cycle)
        self._recompute_head_routes(cycle)

    def _stranded_packets(self) -> Dict[int, Packet]:
        """Packets fault-tolerant rerouting cannot save.

        Far narrower than :meth:`_blast_radius`: a packet is stranded
        only if one of its flits sits inside (or flies toward) a dead
        router, or if its current location / destination fell outside
        the live component — merely *routing through* the dead region
        is cured by the detour instead.
        """
        dead = self.dead_routers
        reachable = self.routing.reachable
        doomed: Dict[int, Packet] = {}

        def doom(packet: Packet) -> None:
            doomed.setdefault(packet.packet_id, packet)

        for ni in self.interfaces:
            node = ni.node
            for queue in ni.queues:
                for packet in queue:
                    if not reachable(node, packet.destination):
                        doom(packet)
            for stream in ni.streams.values():
                if not reachable(node, stream.packet.destination):
                    doom(stream.packet)
        for router in self.routers:
            rid = router.router_id
            in_dead = rid in dead
            for vc in router._occupied:
                for flit in vc.flits:
                    if in_dead or not reachable(rid, flit.packet.destination):
                        doom(flit.packet)
        for events in self._flit_events.values():
            for router_id, _direction, _vc, flit in events:
                if router_id in dead or not reachable(
                    router_id, flit.packet.destination
                ):
                    doom(flit.packet)
        return doomed

    def _recompute_head_routes(self, cycle: int) -> None:
        """Re-resolve every surviving front head flit's output port.

        A head still waiting for VA simply re-reads the table; a head
        whose VA grant pointed toward the dead region gives the
        downstream VC back and restarts from VA.  Flits of packets
        whose head already departed keep following it — the committed
        hop is live (packets with flits in or toward dead routers were
        purged first) and the head reroutes from wherever it is now.
        """
        routing = self.routing
        dead = self.dead_routers
        for router in self.routers:
            rid = router.router_id
            if rid in dead or not router._occupied:
                continue
            touched = False
            for vc in router._occupied:
                front = vc.front
                if front is None or not front.is_head:
                    continue
                new_route = routing.output_direction(
                    rid, front.packet.destination
                )
                if new_route == vc.route:
                    continue
                if (
                    vc.state is VCState.ACTIVE
                    and vc.route is not None
                    and vc.out_vc is not None
                ):
                    out_port = router.output_ports[vc.route]
                    if out_port.owner[vc.out_vc] == (
                        vc.port_direction,
                        vc.vc_index,
                    ):
                        out_port.owner[vc.out_vc] = None
                vc.route = new_route
                vc.out_vc = None
                vc.state = VCState.WAIT_VA
                vc.va_eligible_at = max(cycle + 1, vc.front_arrival() + 1)
                if vc.va_eligible_at < router._va_wake_at:
                    router._va_wake_at = vc.va_eligible_at
                router.head_version += 1
                touched = True
            if touched and router._sa_wake_at > cycle + 1:
                router._sa_wake_at = cycle + 1

    def _blast_radius(self) -> Dict[int, Packet]:
        """Live packets whose remaining route crosses a dead router.

        A packet's remaining route is evaluated from every location one
        of its flits currently occupies (NI queue/stream, router
        buffer, or link in flight); flits already queued for ejection
        have cleared every router and contribute nothing.
        """
        doomed: Dict[int, Packet] = {}

        def doom(packet: Packet, at: int) -> None:
            if packet.packet_id not in doomed and self._crosses_dead(
                at, packet.destination
            ):
                doomed[packet.packet_id] = packet

        for ni in self.interfaces:
            for queue in ni.queues:
                for packet in queue:
                    doom(packet, ni.node)
            for stream in ni.streams.values():
                doom(stream.packet, ni.node)
        for router in self.routers:
            for vc in router._occupied:
                for flit in vc.flits:
                    doom(flit.packet, router.router_id)
        for events in self._flit_events.values():
            for router_id, _direction, _vc, flit in events:
                doom(flit.packet, router_id)
        return doomed

    def _restore_upstream_credit(
        self, router: Router, direction: Direction, vc_index: int
    ) -> None:
        """Give back the buffer slot a purged flit held (or was flying
        toward) on ``router``'s ``direction`` input, to whoever spent
        the credit: the local NI or the upstream router's output port."""
        if direction is Direction.LOCAL:
            self.interfaces[router.router_id].credits[vc_index] += 1
            return
        upstream = router.connected[direction]
        if upstream is None:
            raise TopologyError(
                "purged flit held a slot fed from a mesh edge with no neighbor",
                router=router.router_id, port=direction, vc=vc_index,
            )
        self.routers[upstream].output_ports[direction.opposite].credits[
            vc_index
        ] += 1

    def _purge_doomed(self, doomed: Dict[int, Packet], cycle: int) -> None:
        """Remove every trace of the doomed packets, conservatively
        restoring credits, VC state and downstream ownership so the
        surviving traffic (and the invariant checker) see a consistent
        network."""
        invariants = self.invariants
        pre_busy = [
            bool(router._occupied) or router.incoming_in_flight > 0
            for router in self.routers
        ]
        # NI queues, streams and pending injection checks.
        for ni in self.interfaces:
            for queue in ni.queues:
                if any(p.packet_id in doomed for p in queue):
                    kept = [p for p in queue if p.packet_id not in doomed]
                    queue.clear()
                    queue.extend(kept)
            for vc_index in [
                v for v, s in ni.streams.items() if s.packet.packet_id in doomed
            ]:
                del ni.streams[vc_index]
            ni._checked -= doomed.keys()
        # Flits in flight on links: unwind the in-flight count and give
        # the never-to-be-occupied slot's credit back to the sender.
        for when in list(self._flit_events):
            kept_events = []
            for router_id, direction, vc_index, flit in self._flit_events[when]:
                if flit.packet.packet_id in doomed:
                    router = self.routers[router_id]
                    router.incoming_in_flight -= 1
                    self._restore_upstream_credit(router, direction, vc_index)
                    if invariants is not None:
                        invariants.on_flit_dropped(flit, cycle)
                else:
                    kept_events.append((router_id, direction, vc_index, flit))
            if kept_events:
                self._flit_events[when] = kept_events
            else:
                del self._flit_events[when]
        # Buffered flits: filter each touched VC and restore one
        # upstream credit per removed flit.
        for router in self.routers:
            touched = [
                vc
                for vc in router._occupied
                if any(f.packet.packet_id in doomed for f in vc.flits)
            ]
            for vc in touched:
                kept_pairs = []
                for flit, arrival in zip(vc.flits, vc.arrivals):
                    if flit.packet.packet_id in doomed:
                        self._restore_upstream_credit(
                            router, vc.port_direction, vc.vc_index
                        )
                        if invariants is not None:
                            invariants.on_flit_dropped(flit, cycle)
                    else:
                        kept_pairs.append((flit, arrival))
                vc.flits.clear()
                vc.arrivals.clear()
                for flit, arrival in kept_pairs:
                    vc.flits.append(flit)
                    vc.arrivals.append(arrival)
                router.head_version += 1
                if not vc.flits:
                    router._occupied.pop(vc, None)
            # Release every allocation a doomed packet still holds.
            # This sweep is keyed on ``vc.owner_packet``, NOT on the
            # buffered flits: a mid-packet VC can be ACTIVE with an
            # empty buffer (every arrived flit already forwarded, the
            # rest still in flight) — such a VC appears in neither
            # ``_occupied`` nor ``touched``, but its route/out_vc and
            # the downstream VC ownership still belong to the purged
            # packet and would otherwise leak.  A surviving follow-on
            # packet's head restarts from VA.
            released = False
            for port in router.input_ports.values():
                for vc in port.vcs:
                    if (
                        vc.state is VCState.IDLE
                        or vc.owner_packet not in doomed
                    ):
                        continue
                    if (
                        vc.state is VCState.ACTIVE
                        and vc.route is not None
                        and vc.out_vc is not None
                    ):
                        out_port = router.output_ports[vc.route]
                        if out_port.owner[vc.out_vc] == (
                            vc.port_direction,
                            vc.vc_index,
                        ):
                            out_port.owner[vc.out_vc] = None
                    router._live_vcs -= 1
                    vc.reset_for_next_packet()
                    router.head_version += 1
                    released = True
                    if vc.flits:
                        router._activate_front(vc, cycle)
            if touched or released:
                # Conservative allocator wake-up: surviving fronts may
                # have become eligible by the purge.
                if router._va_wake_at > cycle + 1:
                    router._va_wake_at = cycle + 1
                if router._sa_wake_at > cycle + 1:
                    router._sa_wake_at = cycle + 1
        # Flits queued for ejection never reach their NI.
        for when in list(self._eject_events):
            kept_ejects = []
            for node, flit in self._eject_events[when]:
                if flit.packet.packet_id in doomed:
                    if invariants is not None:
                        invariants.on_flit_dropped(flit, cycle)
                else:
                    kept_ejects.append((node, flit))
            if kept_ejects:
                self._eject_events[when] = kept_ejects
            else:
                del self._eject_events[when]
        # Per-packet accounting, then active-set / PG bookkeeping for
        # routers the purge emptied.
        for packet in doomed.values():
            self.stats.record_drop(packet, cycle, self.dead_routers)
            if invariants is not None:
                invariants.on_packet_dropped(packet, cycle)
        for router, was_busy in zip(self.routers, pre_busy):
            if router._occupied:
                continue
            self.active_routers.discard(router.router_id)
            if (
                was_busy
                and self._active_kernel
                and not router.incoming_in_flight
                and not router._live_vcs
            ):
                self.policy.on_router_emptied(router.router_id)

