"""Input-port virtual-channel state and credit bookkeeping.

Each router input port holds ``num_vcs`` virtual channels.  A VC moves
through the classic wormhole states: ``IDLE`` (no packet), ``ROUTING``
(head buffered, waiting to become VA-eligible), ``WAIT_VA`` (requesting
an output VC) and ``ACTIVE`` (output VC allocated; flits compete for the
switch).  Credit counters at the upstream side track free buffer slots
of the downstream VC.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional, Tuple

from .errors import BufferOverflowError
from .packet import Flit
from .topology import Direction


class VCState(enum.Enum):
    """Wormhole VC lifecycle: IDLE -> WAIT_VA -> ACTIVE."""
    IDLE = "idle"
    WAIT_VA = "wait_va"
    ACTIVE = "active"


#: Dense integer codes for :class:`VCState`, shared with the vector
#: kernel's structure-of-arrays mirror (``repro.noc.vector`` keeps VC
#: state as an int8 array; materialization maps codes back to enums).
VC_STATE_CODES = {
    VCState.IDLE: 0,
    VCState.WAIT_VA: 1,
    VCState.ACTIVE: 2,
}
VC_STATE_FROM_CODE = {code: state for state, code in VC_STATE_CODES.items()}


class VirtualChannel:
    """State of one input virtual channel."""

    __slots__ = (
        "port_direction",
        "vc_index",
        "depth",
        "flits",
        "arrivals",
        "state",
        "route",
        "out_vc",
        "owner_packet",
        "va_eligible_at",
        "sa_eligible_at",
    )

    def __init__(self, vc_index: int, depth: int, port_direction=None) -> None:
        self.port_direction = port_direction
        self.vc_index = vc_index
        self.depth = depth
        #: Buffered flits, front of the deque departs first.
        self.flits: Deque[Flit] = deque()
        #: Arrival cycle of each buffered flit (parallel to ``flits``).
        self.arrivals: Deque[int] = deque()
        self.state = VCState.IDLE
        #: Output direction of the current packet (known on head arrival
        #: thanks to look-ahead routing).
        self.route: Optional[Direction] = None
        #: Downstream VC allocated to the current packet.
        self.out_vc: Optional[int] = None
        #: ``packet_id`` holding this VC's allocation (set at head
        #: activation, cleared with the rest of the allocation state).
        #: The graceful-degradation purge needs it: a mid-packet VC can
        #: be ACTIVE with an *empty* buffer (every arrived flit already
        #: forwarded, tail still in flight), and only this field then
        #: ties the allocation to the packet being purged.
        self.owner_packet: Optional[int] = None
        self.va_eligible_at = 0
        self.sa_eligible_at = 0

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of buffered flits."""
        return len(self.flits)

    @property
    def is_empty(self) -> bool:
        """Whether the buffer holds no flits."""
        return not self.flits

    @property
    def front(self) -> Optional[Flit]:
        """The flit at the head of the buffer, or None."""
        return self.flits[0] if self.flits else None

    def front_arrival(self) -> int:
        """Arrival cycle of the front flit."""
        return self.arrivals[0]

    def push(self, flit: Flit, cycle: int) -> None:
        """Buffer an arriving flit; raises on overflow."""
        if len(self.flits) >= self.depth:
            raise BufferOverflowError(
                f"VC overflow: {len(self.flits)}/{self.depth} flits buffered, "
                "credit flow control violated",
                cycle=cycle, port=self.port_direction, vc=self.vc_index,
                packet=flit.packet.packet_id,
            )
        self.flits.append(flit)
        self.arrivals.append(cycle)

    def pop(self) -> Flit:
        """Remove and return the front flit."""
        self.arrivals.popleft()
        return self.flits.popleft()

    def reset_for_next_packet(self) -> None:
        """Return the VC to IDLE after a tail flit departs."""
        self.state = VCState.IDLE
        self.route = None
        self.out_vc = None
        self.owner_packet = None


class InputPort:
    """One router input port: a VC array plus arbitration state."""

    __slots__ = ("direction", "vcs", "sa_rr_pointer")

    def __init__(self, direction: Direction, depths_by_vc: dict) -> None:
        self.direction = direction
        self.vcs: List[VirtualChannel] = [
            VirtualChannel(vc, depth, direction)
            for vc, depth in sorted(depths_by_vc.items())
        ]
        #: Round-robin pointer for picking among this port's ready VCs.
        self.sa_rr_pointer = 0

    def is_empty(self) -> bool:
        """Whether the buffer holds no flits."""
        return all(vc.is_empty for vc in self.vcs)

    def occupied_vcs(self) -> List[VirtualChannel]:
        """VCs currently holding at least one flit."""
        return [vc for vc in self.vcs if not vc.is_empty]


class OutputPort:
    """Upstream-side state for one router output port.

    Tracks, per downstream VC: the credit count (free downstream buffer
    slots) and which local input VC currently owns it (wormhole VC
    ownership persists from head to tail).
    """

    __slots__ = ("direction", "credits", "owner", "vc_rr_pointer", "sa_rr_pointer")

    def __init__(self, direction: Direction, depths_by_vc: dict) -> None:
        self.direction = direction
        self.credits: List[int] = [depths_by_vc[vc] for vc in sorted(depths_by_vc)]
        #: (input_direction, input_vc) owning each downstream VC, or None.
        self.owner: List[Optional[Tuple[Direction, int]]] = [None] * len(self.credits)
        self.vc_rr_pointer = 0
        self.sa_rr_pointer = 0

    def free_vc_in(self, vc_range: range) -> Optional[int]:
        """A free (unowned) downstream VC within ``vc_range``, if any."""
        n = len(vc_range)
        for i in range(n):
            vc = vc_range[(self.vc_rr_pointer + i) % n]
            if self.owner[vc] is None:
                return vc
        return None

    def all_vcs_idle(self) -> bool:
        """Whether no downstream VC is owned by a packet."""
        return all(o is None for o in self.owner)
