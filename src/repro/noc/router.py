"""Wormhole router with virtual channels and credit flow control.

Timing model (paper Sec. 3, Fig. 3): a flit written into an input
buffer at cycle ``t`` performs BW during ``t``.  For the 4-stage
pipeline it performs VA at ``t+1``, SA at ``t+2`` and ST at ``t+3``;
the 3-stage pipeline speculatively performs VA and SA together at
``t+1`` and ST at ``t+2``.  With a one-cycle link this yields exactly
``Trouter + Tlink`` cycles per hop.  VA and SA are separable allocators
with round-robin priority.

A router never forwards a flit toward a neighbor whose PG signal is
asserted (gated off or waking); the stall is reported to the power
policy so schemes can assert wakeup signals and so the Fig. 9/10
blocking statistics can be collected.

For simulation speed the router keeps the set of currently occupied
VCs (``_occupied``) so per-cycle work scales with activity, not with
the 30 VCs per router.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .buffers import BufferOverflowError, InputPort, OutputPort, VCState, VirtualChannel
from .config import NoCConfig
from .errors import SimulationError, TopologyError
from .packet import Flit
from .routing import RoutingAlgorithm
from .topology import Direction

#: Callback signature used to hand a departing flit to the network
#: kernel: (flit, in_direction, in_vc, out_direction, out_vc).
DepartureSink = Callable[[Flit, Direction, int, Direction, int], None]

#: Sentinel wake deadline: no VC can become allocator-eligible without
#: an intervening event that lowers the deadline again.
_NEVER = 1 << 60


class Router:
    """One router; its port set comes from the routing's topology."""

    def __init__(
        self,
        router_id: int,
        config: NoCConfig,
        routing: RoutingAlgorithm,
    ) -> None:
        self.router_id = router_id
        self.config = config
        self.routing = routing
        ports = routing.topology.ports
        depths = config.depths_by_vc()
        self.input_ports: Dict[Direction, InputPort] = {
            d: InputPort(d, depths) for d in ports
        }
        self.output_ports: Dict[Direction, OutputPort] = {
            d: OutputPort(d, depths) for d in ports
        }
        #: Adjacent router id per direction (None at mesh edges);
        #: LOCAL maps to this router itself.  Filled in by the network.
        self.connected: Dict[Direction, Optional[int]] = {
            d: None for d in ports
        }
        self.connected[Direction.LOCAL] = router_id
        #: Flits currently flying toward this router (sent but not yet
        #: buffered); used for the sleep-safety check.
        self.incoming_in_flight = 0
        #: Input VCs holding a live packet allocation (state != IDLE).
        #: A wormhole stream can drain its buffer mid-packet (every
        #: arrived flit already forwarded, the rest stalled upstream);
        #: such a VC is in neither ``_occupied`` nor the in-flight
        #: count, but its allocation state is datapath state the
        #: power-gating controller must not cut power to — see
        #: :meth:`datapath_empty`.
        self._live_vcs = 0
        #: Switch-allocation round-robin pointer per output direction.
        self._sa_out_rr: Dict[Direction, int] = {d: 0 for d in ports}
        #: Non-empty input VCs (the per-cycle working set).  A dict is
        #: used as an insertion-ordered set so iteration order — and
        #: therefore arbitration and the whole simulation — is
        #: deterministic.
        self._occupied: Dict[VirtualChannel, None] = {}
        #: Bumped whenever the set of front head flits (and hence the
        #: result of :meth:`head_flit_requirements`) may have changed.
        #: Power schemes key their per-router punch-target caches on it
        #: so a router whose heads are merely stalled does not recompute
        #: targets every cycle.
        self.head_version = 0
        #: Earliest cycles at which a VA / SA round could do anything.
        #: The active-set kernel skips allocator rounds before these
        #: deadlines; both are conservative lower bounds (they may be
        #: in the past, forcing a harmless no-op round, but are never
        #: later than the first cycle with real allocator work).  Each
        #: full allocator round recomputes its own deadline; events
        #: that create new eligibility (head activation, VA grant,
        #: stream flit landing in an empty ACTIVE VC) only ever lower
        #: them.
        self._va_wake_at = 0
        self._sa_wake_at = 0

    # ------------------------------------------------------------------
    # Datapath state queries
    # ------------------------------------------------------------------
    @property
    def is_idle(self) -> bool:
        """No buffered flits and nothing in flight toward this router."""
        return not self._occupied and not self.incoming_in_flight

    def datapath_empty(self) -> bool:
        """True when all input buffers are empty and nothing is in flight.

        This is the power-gating controller's sleep precondition
        (Sec. 2.2: input buffers, output registers and crossbar empty;
        the in-flight check subsumes the paper's mandatory two-cycle
        timeout that lets flits already on links land safely).

        A VC whose buffer drained mid-packet still holds live datapath
        state (route, output VC ownership, downstream credit debt), so
        the router must not power off until the tail has passed: gating
        mid-allocation would deadlock the stranded remainder of the
        stream, whose body/tail flits assert no punch or wakeup wires
        of their own (only head flits do).
        """
        return (
            not self._occupied
            and not self.incoming_in_flight
            and not self._live_vcs
        )

    def buffered_flits(self) -> int:
        """Total flits buffered across all input VCs."""
        return sum(vc.occupancy for vc in self._occupied)

    # ------------------------------------------------------------------
    # Flit reception
    # ------------------------------------------------------------------
    def receive_flit(
        self, direction: Direction, vc_index: int, flit: Flit, cycle: int
    ) -> None:
        """Buffer an arriving flit (its BW stage is this cycle)."""
        vc = self.input_ports[direction].vcs[vc_index]
        flits = vc.flits
        was_empty = not flits
        # ``vc.push`` inlined — this runs once per flit per hop.
        if len(flits) >= vc.depth:
            raise BufferOverflowError(
                f"VC overflow: {len(flits)}/{vc.depth} flits buffered, "
                "credit flow control violated",
                cycle=cycle, port=vc.port_direction, vc=vc.vc_index,
                packet=flit.packet.packet_id,
            )
        flits.append(flit)
        vc.arrivals.append(cycle)
        self._occupied[vc] = None
        if was_empty:
            if flit.is_head:
                self._activate_front(vc, cycle)
            elif vc.state is VCState.ACTIVE:
                # A stream's body flit landed in a drained-but-owned VC:
                # it becomes the new front, so SA has work again once
                # its pipeline stages complete.
                gate = cycle + self.config.router_stages - 2
                if vc.sa_eligible_at > gate:
                    gate = vc.sa_eligible_at
                if gate < self._sa_wake_at:
                    self._sa_wake_at = gate

    def _activate_front(self, vc: VirtualChannel, cycle: int) -> None:
        """Start VA for the head flit now at the front of ``vc``."""
        head = vc.front
        if head is None or not head.is_head:
            raise SimulationError(
                "VC activation without a head flit at the buffer front "
                f"(found {head!r})",
                cycle=cycle, router=self.router_id,
                port=vc.port_direction, vc=vc.vc_index,
            )
        if vc.state is VCState.IDLE:
            self._live_vcs += 1
        vc.state = VCState.WAIT_VA
        vc.route = self.routing.output_direction(
            self.router_id, head.packet.destination
        )
        vc.out_vc = None
        vc.owner_packet = head.packet.packet_id
        vc.va_eligible_at = max(cycle + 1, vc.front_arrival() + 1)
        if vc.va_eligible_at < self._va_wake_at:
            self._va_wake_at = vc.va_eligible_at
        self.head_version += 1

    # ------------------------------------------------------------------
    # Virtual-channel allocation
    # ------------------------------------------------------------------
    def do_vc_allocation(self, cycle: int) -> None:
        """Grant free downstream VCs to head flits in WAIT_VA state."""
        next_va = _NEVER
        for vc in self._occupied:
            if vc.state is not VCState.WAIT_VA:
                continue
            if cycle < vc.va_eligible_at:
                if vc.va_eligible_at < next_va:
                    next_va = vc.va_eligible_at
                continue
            out_port = self.output_ports[vc.route]
            vnet = self.config.vnet_of_vc(vc.vc_index)
            vc_range = self.config.vcs_of_vnet(vnet)
            if self.routing.restricts_vcs:
                # Dateline routings restrict the claimable VCs per link
                # (deadlock freedom on wrapped fabrics); plain XY never
                # takes this branch, keeping the mesh hot path intact.
                vc_range = self.routing.vc_choices(
                    self.router_id, vc.route,
                    vc.front.packet.destination, vc_range,
                )
            candidate = out_port.free_vc_in(vc_range)
            if candidate is None:
                # All downstream VCs owned: one may free up any cycle.
                if cycle + 1 < next_va:
                    next_va = cycle + 1
                continue
            out_port.owner[candidate] = (vc.port_direction, vc.vc_index)
            out_port.vc_rr_pointer = (candidate + 1) % len(out_port.credits)
            vc.out_vc = candidate
            vc.state = VCState.ACTIVE
            # 4-stage routers separate VA and SA; the 3-stage router
            # speculates SA in the same cycle as VA (Fig. 3b).
            vc.sa_eligible_at = cycle + (1 if self.config.router_stages == 4 else 0)
            gate = vc.front_arrival() + self.config.router_stages - 2
            if vc.sa_eligible_at > gate:
                gate = vc.sa_eligible_at
            if gate < self._sa_wake_at:
                self._sa_wake_at = gate
        self._va_wake_at = next_va

    # ------------------------------------------------------------------
    # Switch allocation + switch/link traversal
    # ------------------------------------------------------------------
    def do_switch_allocation(
        self,
        cycle: int,
        available_by: Callable[[int, int], bool],
        arrival_cycle: int,
        depart: DepartureSink,
        note_blocked: Callable[[int, Flit], None],
    ) -> int:
        """One separable switch-allocation round.

        ``available_by(router_id, arrival_cycle)`` reflects neighbors'
        PG signals at the cycle a granted flit would land; ``depart``
        receives every granted flit; ``note_blocked`` is called once
        per (stalled VC, cycle) with the blocking neighbor.  Returns
        the number of flits granted.
        """
        if not self._occupied:
            return 0
        # Stage 1: each input port nominates one SA-ready VC.  The scan
        # doubles as the recomputation of ``_sa_wake_at``: a VC whose
        # pipeline stages are not yet complete contributes its known
        # eligibility cycle; a VC stalled on a neighbor's PG signal or
        # an exhausted credit must be re-examined every cycle (the
        # per-cycle ``note_blocked`` report is part of the Fig. 9/10
        # accounting contract).
        next_sa = _NEVER
        stage_gate = self.config.router_stages - 2
        active = VCState.ACTIVE
        local = Direction.LOCAL
        connected = self.connected
        output_ports = self.output_ports
        ready_vcs: List[VirtualChannel] = []
        for vc in self._occupied:
            if vc.state is not active:
                continue
            gate = vc.arrivals[0] + stage_gate
            if vc.sa_eligible_at > gate:
                gate = vc.sa_eligible_at
            if cycle < gate:
                if gate < next_sa:
                    next_sa = gate
                continue
            route = vc.route
            if route == local:
                ready_vcs.append(vc)
                continue
            neighbor = connected[route]
            if neighbor is None:
                raise TopologyError(
                    "route points off the mesh edge",
                    cycle=cycle, router=self.router_id,
                    port=route, vc=vc.vc_index,
                )
            if not available_by(neighbor, arrival_cycle):
                note_blocked(neighbor, vc.front)
                next_sa = cycle + 1
                continue
            if output_ports[route].credits[vc.out_vc] > 0:
                ready_vcs.append(vc)
            else:
                next_sa = cycle + 1
        if not ready_vcs:
            self._sa_wake_at = next_sa
            return 0
        if len(ready_vcs) == 1:
            # Single contender: both round-robin stages degenerate to
            # "advance the pointer and grant" — same pointer movement as
            # the general path below with one-element candidate lists.
            winner = ready_vcs[0]
            in_dir = winner.port_direction
            self.input_ports[in_dir].sa_rr_pointer += 1
            out_dir = winner.route
            self._sa_out_rr[out_dir] += 1
            flit, out_vc = self._commit_departure(winner, out_dir, cycle)
            depart(flit, in_dir, winner.vc_index, out_dir, out_vc)
            self._sa_wake_at = cycle + 1
            return 1

        by_port: Dict[Direction, List[VirtualChannel]] = {}
        for vc in ready_vcs:
            by_port.setdefault(vc.port_direction, []).append(vc)
        nominations: Dict[Direction, List[VirtualChannel]] = {}
        for direction, ready in by_port.items():
            port = self.input_ports[direction]
            pick = ready[port.sa_rr_pointer % len(ready)]
            port.sa_rr_pointer += 1
            nominations.setdefault(pick.route, []).append(pick)

        # Stage 2: each output port grants one nomination.
        granted = 0
        for out_dir, contenders in nominations.items():
            rr = self._sa_out_rr[out_dir]
            winner = contenders[rr % len(contenders)]
            self._sa_out_rr[out_dir] = rr + 1
            in_dir, in_vc = winner.port_direction, winner.vc_index
            flit, out_vc = self._commit_departure(winner, out_dir, cycle)
            depart(flit, in_dir, in_vc, out_dir, out_vc)
            granted += 1
        # Grants advanced buffer fronts (and ready VCs may have lost
        # arbitration): the allocator has work again next cycle.
        self._sa_wake_at = cycle + 1
        return granted

    def _commit_departure(
        self, vc: VirtualChannel, out_dir: Direction, cycle: int
    ) -> Tuple[Flit, int]:
        """Pop the granted flit; update VC, credit and ownership state."""
        # ``vc.pop`` inlined — this runs once per granted flit.
        vc.arrivals.popleft()
        flits = vc.flits
        flit = flits.popleft()
        if flit.is_head:
            # Only a departing head changes the set of front head flits
            # (:meth:`head_flit_requirements`): a body/tail pop leaves a
            # non-head front behind, and the head of a follow-on packet
            # is republished by ``_activate_front`` below.
            self.head_version += 1
        out_port = self.output_ports[out_dir]
        out_vc = vc.out_vc
        if out_dir != Direction.LOCAL:
            out_port.credits[out_vc] -= 1
        if flit.is_tail:
            out_port.owner[out_vc] = None
            self._live_vcs -= 1
            vc.reset_for_next_packet()
            # The head of the next packet may already be buffered.
            if flits:
                self._activate_front(vc, cycle)
        if not flits:
            self._occupied.pop(vc, None)
        return flit, out_vc

    # ------------------------------------------------------------------
    # Credits
    # ------------------------------------------------------------------
    def return_credit(self, direction: Direction, vc_index: int) -> None:
        """A downstream buffer slot on ``direction`` freed up."""
        self.output_ports[direction].credits[vc_index] += 1

    # ------------------------------------------------------------------
    # Punch-signal support
    # ------------------------------------------------------------------
    def head_flit_requirements(self) -> List[Tuple[int, int]]:
        """(next_router, destination) for every front head flit.

        Power Punch recomputes punch signals combinationally every
        cycle from the wakeup requirements of the packets currently
        buffered (Sec. 6.6(1)); this method exposes those requirements.
        ConvOpt-PG's one-hop-early wakeup reads the same information
        but only uses ``next_router``.
        """
        requirements = []
        for vc in self._occupied:
            front = vc.front
            if front is None or not front.is_head:
                continue
            if vc.route is None or vc.route == Direction.LOCAL:
                continue
            neighbor = self.connected[vc.route]
            if neighbor is not None:
                requirements.append((neighbor, front.packet.destination))
        return requirements
