"""Opt-in runtime invariant checking and deadlock watchdog.

The simulator normally trusts its own bookkeeping; this module makes
that trust checkable.  An :class:`InvariantChecker` attached to a
network verifies, once per ``check_interval`` cycles:

* **flit conservation** — every flit sent into the mesh is either
  buffered in a VC, in flight on a link, queued for ejection, or was
  ejected (nothing is created or destroyed in transit);
* **credit conservation** — for every link and VC, upstream credits +
  downstream occupancy + in-flight flits + in-flight credits equals
  the buffer depth (a leaked or duplicated credit shows up here);
* **VC ownership exclusivity** — every ACTIVE input VC owns exactly
  the downstream VC the output port maps back to it, and no two input
  VCs claim the same downstream VC;
* **no gated-off traversal** — a flit never lands at a router whose
  power-gating signal says it cannot accept one (checked on every
  arrival, not just on the interval);
* **corruption detection** — a flit marked corrupted by the fault
  injector is flagged the moment it lands.

A **deadlock/livelock watchdog** runs on the same interval: any packet
whose in-network age exceeds ``max_network_age`` (or, optionally,
whose NI-queue age exceeds ``max_queue_age``) trips a
:class:`~repro.noc.errors.DeadlockError` carrying a structured
:class:`PostMortem` — the stuck packets with their routes, the state
of every router on those routes (PG state, VC occupancy), and the last
N events from a bounded :class:`~repro.noc.tracing.EventRing`.

With ``strict=True`` (the default) violations raise immediately; with
``strict=False`` they accumulate in :attr:`InvariantChecker.violations`
for later inspection — useful inside property tests that expect a
fault to be *detected* rather than fatal.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from .buffers import VCState
from .errors import DeadlockError, InvariantViolation, SimulationError
from .topology import Direction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network
    from .packet import Flit, Packet


@dataclass
class PostMortem:
    """Structured dump of network state at a watchdog/drain failure."""

    cycle: int
    reason: str
    #: Per stuck packet: id, endpoints, ages, route and blocking history.
    stuck_packets: List[dict] = field(default_factory=list)
    #: Per relevant router: PG state and VC occupancy.
    routers: List[dict] = field(default_factory=list)
    #: Last-N events from the flight recorder, oldest first.
    recent_events: List[object] = field(default_factory=list)

    @staticmethod
    def _node(node_id, coord) -> str:
        """``R27(3,3)``-style label (plain ``R27`` without a coord)."""
        if coord is None:
            return f"R{node_id}"
        return f"R{node_id}({','.join(str(c) for c in coord)})"

    def render(self) -> str:
        """Multi-line human-readable post-mortem report."""
        lines = [f"=== post-mortem @ cycle {self.cycle}: {self.reason} ==="]
        lines.append(f"--- stuck packets ({len(self.stuck_packets)}) ---")
        for p in self.stuck_packets:
            src = self._node(p["source"], p.get("source_coord"))
            dst = self._node(p["destination"], p.get("destination_coord"))
            lines.append(
                f"  pkt#{p['packet_id']} {src}->{dst} "
                f"vnet={p['vnet']} age={p['age']} "
                f"(created@{p['created_at']}, injected@{p['injected_at']}) "
                f"wakeup_wait={p['wakeup_wait_cycles']}"
            )
            lines.append(f"    route: {' -> '.join(str(r) for r in p['route'])}")
            if p["blocked_routers"]:
                lines.append(f"    blocked by routers: {p['blocked_routers']}")
        lines.append(f"--- routers on stuck routes ({len(self.routers)}) ---")
        for r in self.routers:
            label = self._node(r["router_id"], r.get("coord"))
            lines.append(
                f"  {label}: pg={r['pg_state']} "
                f"incoming_in_flight={r['incoming_in_flight']}"
            )
            for occ in r["occupied_vcs"]:
                lines.append(
                    f"    {occ['port']} vc{occ['vc']}: {occ['state']} "
                    f"occ={occ['occupancy']} front=pkt#{occ['front_packet']} "
                    f"route={occ['route']}"
                )
        lines.append(f"--- last {len(self.recent_events)} events ---")
        for event in self.recent_events:
            lines.append(f"  {event}")
        return "\n".join(lines)


def _coord_pair(topology, node: int) -> tuple:
    """Node coordinate as a plain ``(x, y)`` tuple for post-mortems."""
    c = topology.coord(node)
    return (c.x, c.y)


class InvariantChecker:
    """Per-cycle runtime verification for one :class:`Network`.

    Install with :meth:`Network.install_invariants`; the network then
    calls the ``on_*`` hooks from its kernel loop.  The checker is
    opt-in precisely because the structural checks cost O(ports x VCs)
    per check — ``check_interval`` amortizes that for long experiment
    runs while keeping detection latency bounded.
    """

    def __init__(
        self,
        *,
        strict: bool = True,
        check_interval: int = 1,
        max_network_age: int = 10_000,
        max_queue_age: Optional[int] = None,
        ring_capacity: int = 256,
    ) -> None:
        from .tracing import EventRing  # deferred: tracing imports network

        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        if max_network_age < 1:
            raise ValueError("max_network_age must be positive")
        self.strict = strict
        self.check_interval = check_interval
        self.max_network_age = max_network_age
        self.max_queue_age = max_queue_age
        self.ring = EventRing(ring_capacity)
        self.network: Optional["Network"] = None
        #: Violations recorded in non-strict mode (strict mode raises).
        self.violations: List[InvariantViolation] = []
        #: Packets created but not yet delivered, by id.
        self.live: Dict[int, "Packet"] = {}
        # Flit accounting (conservation check).
        self.flits_sent = 0
        self.flits_ejected = 0
        #: Flits removed from the mesh by the graceful-degradation
        #: purge — a third, accounted way for a sent flit to leave.
        self.flits_dropped = 0
        self.corrupted_arrivals = 0
        self.checks_run = 0

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def attach(self, network: "Network") -> None:
        """Bind to ``network`` and subscribe to its delivery stream."""
        self.network = network
        network.add_delivery_listener(self._on_delivered)

    # ------------------------------------------------------------------
    # Kernel hooks (called by Network when a checker is installed)
    # ------------------------------------------------------------------
    def on_packet_created(self, packet: "Packet", cycle: int) -> None:
        """A packet entered the system (NI enqueue)."""
        self.live[packet.packet_id] = packet
        self.ring.record(
            cycle, "created", packet.source,
            f"->{packet.destination}", packet.packet_id,
        )

    def _on_delivered(self, packet: "Packet", cycle: int) -> None:
        self.live.pop(packet.packet_id, None)
        self.ring.record(
            cycle, "delivered", packet.destination,
            f"lat={packet.network_latency}", packet.packet_id,
        )

    def on_flit_sent(self, node: int, flit: "Flit", cycle: int) -> None:
        """An NI pushed a flit into the mesh."""
        self.flits_sent += 1

    def on_flit_arrival(self, router_id: int, flit: "Flit", cycle: int) -> None:
        """A flit landed in a router input buffer: PG-safety checks."""
        network = self.network
        if not network.policy.is_router_available_by(router_id, cycle):
            self._violation(
                InvariantViolation(
                    "gated-traversal",
                    f"flit of pkt#{flit.packet.packet_id} arrived at a "
                    "router whose PG signal is asserted",
                    cycle=cycle, router=router_id, packet=flit.packet.packet_id,
                )
            )
        if getattr(flit, "corrupted", False):
            self.corrupted_arrivals += 1
            self._violation(
                InvariantViolation(
                    "flit-integrity",
                    f"corrupted flit {flit.index} of pkt#{flit.packet.packet_id} "
                    "arrived",
                    cycle=cycle, router=router_id, packet=flit.packet.packet_id,
                )
            )

    def on_flit_ejected(self, node: int, flit: "Flit", cycle: int) -> None:
        """A flit left the mesh through an NI."""
        self.flits_ejected += 1

    def on_flit_dropped(self, flit: "Flit", cycle: int) -> None:
        """A sent flit was purged by the graceful-degradation policy."""
        self.flits_dropped += 1

    def on_packet_dropped(self, packet: "Packet", cycle: int) -> None:
        """A packet was dropped whole: it will never be delivered, so it
        leaves the live set (and the watchdog's jurisdiction)."""
        self.live.pop(packet.packet_id, None)
        self.ring.record(
            cycle, "dropped", packet.source,
            f"->{packet.destination}", packet.packet_id,
        )

    def on_cycle_end(self, cycle: int) -> None:
        """Interval checks + watchdog; called once per simulated cycle."""
        if cycle % self.check_interval:
            return
        self.checks_run += 1
        self.check_flit_conservation(cycle)
        self.check_credit_conservation(cycle)
        self.check_vc_ownership(cycle)
        self.check_active_sets(cycle)
        self.check_watchdog(cycle)

    # ------------------------------------------------------------------
    # The invariants
    # ------------------------------------------------------------------
    def check_flit_conservation(self, cycle: int) -> None:
        """sent == buffered + flying + ejecting + ejected + dropped."""
        network = self.network
        buffered = sum(
            vc.occupancy for router in network.routers for vc in router._occupied
        )
        flying = sum(len(v) for v in network._flit_events.values())
        ejecting = sum(len(v) for v in network._eject_events.values())
        in_system = buffered + flying + ejecting
        expected = self.flits_sent - self.flits_ejected - self.flits_dropped
        if in_system != expected:
            self._violation(
                InvariantViolation(
                    "flit-conservation",
                    f"{self.flits_sent} sent - {self.flits_ejected} ejected - "
                    f"{self.flits_dropped} dropped = "
                    f"{expected} expected in system, found {in_system} "
                    f"(buffered={buffered} flying={flying} ejecting={ejecting})",
                    cycle=cycle,
                )
            )

    def check_credit_conservation(self, cycle: int) -> None:
        """Per (link, VC): credits + occupancy + in-flight == depth."""
        network = self.network
        flit_inflight: Counter = Counter()
        for events in network._flit_events.values():
            for router_id, direction, vc, _flit in events:
                flit_inflight[(router_id, direction, vc)] += 1
        credit_inflight: Counter = Counter()
        for events in network._credit_events.values():
            for router_id, direction, vc in events:
                credit_inflight[(router_id, direction, vc)] += 1

        depths = network.config.depths_by_vc()
        for router in network.routers:
            rid = router.router_id
            # Router-to-router links.
            for direction, downstream in router.connected.items():
                if direction is Direction.LOCAL or downstream is None:
                    continue
                down_port = network.routers[downstream].input_ports[direction.opposite]
                for vc, depth in depths.items():
                    total = (
                        router.output_ports[direction].credits[vc]
                        + down_port.vcs[vc].occupancy
                        + flit_inflight[(downstream, direction.opposite, vc)]
                        + credit_inflight[(rid, direction, vc)]
                    )
                    if total != depth:
                        self._violation(
                            InvariantViolation(
                                "credit-conservation",
                                f"link R{rid}->{direction.name}->R{downstream} "
                                f"accounts for {total} slots, depth is {depth}",
                                cycle=cycle, router=rid, port=direction, vc=vc,
                            )
                        )
            # NI-to-router local link.
            ni = network.interfaces[rid]
            local_port = router.input_ports[Direction.LOCAL]
            for vc, depth in depths.items():
                total = (
                    ni.credits[vc]
                    + local_port.vcs[vc].occupancy
                    + flit_inflight[(rid, Direction.LOCAL, vc)]
                    + credit_inflight[(-rid - 1, Direction.LOCAL, vc)]
                )
                if total != depth:
                    self._violation(
                        InvariantViolation(
                            "credit-conservation",
                            f"NI link at node {rid} accounts for {total} "
                            f"slots, depth is {depth}",
                            cycle=cycle, router=rid, port=Direction.LOCAL, vc=vc,
                        )
                    )

    def check_vc_ownership(self, cycle: int) -> None:
        """ACTIVE input VCs and output-port owners agree, exclusively."""
        network = self.network
        for router in network.routers:
            rid = router.router_id
            claims: Dict[tuple, tuple] = {}
            for in_dir, port in router.input_ports.items():
                for vc in port.vcs:
                    if vc.state is not VCState.ACTIVE:
                        continue
                    key = (vc.route, vc.out_vc)
                    holder = (in_dir, vc.vc_index)
                    if key in claims:
                        self._violation(
                            InvariantViolation(
                                "vc-ownership",
                                f"downstream vc{vc.out_vc} of output "
                                f"{vc.route.name} claimed by both "
                                f"{claims[key]} and {holder}",
                                cycle=cycle, router=rid, port=vc.route, vc=vc.out_vc,
                            )
                        )
                        continue
                    claims[key] = holder
                    owner = router.output_ports[vc.route].owner[vc.out_vc]
                    if owner != holder:
                        self._violation(
                            InvariantViolation(
                                "vc-ownership",
                                f"input {in_dir.name}/vc{vc.vc_index} is ACTIVE "
                                f"on {vc.route.name}/vc{vc.out_vc} but the "
                                f"output port records owner {owner}",
                                cycle=cycle, router=rid, port=vc.route, vc=vc.out_vc,
                            )
                        )
            # Reverse direction: every recorded owner must map back to
            # an ACTIVE input VC holding exactly that downstream VC.
            for out_dir, out_port in router.output_ports.items():
                for out_vc, owner in enumerate(out_port.owner):
                    if owner is None:
                        continue
                    in_dir, in_vc = owner
                    ivc = router.input_ports[in_dir].vcs[in_vc]
                    if (
                        ivc.state is not VCState.ACTIVE
                        or ivc.route is not out_dir
                        or ivc.out_vc != out_vc
                    ):
                        self._violation(
                            InvariantViolation(
                                "vc-ownership",
                                f"output {out_dir.name}/vc{out_vc} records owner "
                                f"{in_dir.name}/vc{in_vc}, but that input VC is "
                                f"{ivc.state.name} on "
                                f"{ivc.route.name if ivc.route else None}/"
                                f"vc{ivc.out_vc}",
                                cycle=cycle, router=rid, port=out_dir, vc=out_vc,
                            )
                        )

    def check_active_sets(self, cycle: int) -> None:
        """Active-set coverage: the work-sets the kernel iterates must
        contain every component the naive full scan would visit.

        Supersets are harmless (a stale entry is a wasted visit); a
        *missing* entry means a component with work would be silently
        skipped, so only the subset direction is an invariant:

        * every router with occupied VCs is in ``active_routers``;
        * every NI with queued/streaming packets is in ``active_nis``;
        * every non-OFF PG controller is either armed for stepping or
          parked in the quiescent-skip state with lazy accounting
          (checked only for policies exposing active-set scheme state).
        """
        network = self.network
        for router in network.routers:
            if router._occupied and router.router_id not in network.active_routers:
                self._violation(
                    InvariantViolation(
                        "active-set-coverage",
                        f"router {router.router_id} has "
                        f"{len(router._occupied)} occupied VC(s) but is "
                        "missing from active_routers",
                        cycle=cycle, router=router.router_id,
                    )
                )
        for ni in network.interfaces:
            if ni.has_work() and ni.node not in network.active_nis:
                self._violation(
                    InvariantViolation(
                        "active-set-coverage",
                        f"NI {ni.node} has queued/streaming work but is "
                        "missing from active_nis",
                        cycle=cycle, router=ni.node,
                    )
                )
        policy = network.policy
        armed = getattr(policy, "_armed", None)
        controllers = getattr(policy, "controllers", None)
        if armed is None or not controllers or not getattr(policy, "_active", False):
            return
        from ..powergate.controller import PGState

        for controller in controllers:
            if (
                controller.state is not PGState.OFF
                and controller.router_id not in armed
                and getattr(controller, "_quiescent_since", None) is None
            ):
                self._violation(
                    InvariantViolation(
                        "active-set-coverage",
                        f"PG controller {controller.router_id} is "
                        f"{controller.state.name} but neither armed for "
                        "stepping nor parked quiescent",
                        cycle=cycle, router=controller.router_id,
                    )
                )

    def check_watchdog(self, cycle: int) -> None:
        """Flag packets whose age exceeds the configured bounds."""
        stuck: List["Packet"] = []
        for packet in self.live.values():
            if packet.injected_at is not None:
                if cycle - packet.injected_at > self.max_network_age:
                    stuck.append(packet)
            elif (
                self.max_queue_age is not None
                and cycle - packet.created_at > self.max_queue_age
            ):
                stuck.append(packet)
        if not stuck:
            return
        post_mortem = self.build_post_mortem(
            cycle,
            f"{len(stuck)} packet(s) exceeded the watchdog age bound "
            f"(network>{self.max_network_age}"
            + (f", queue>{self.max_queue_age}" if self.max_queue_age else "")
            + ")",
            stuck,
        )
        error = DeadlockError(
            f"pkt#{stuck[0].packet_id} ({stuck[0].source}->"
            f"{stuck[0].destination}) stuck for "
            f"{cycle - (stuck[0].injected_at if stuck[0].injected_at is not None else stuck[0].created_at)} cycles",
            post_mortem=post_mortem,
            cycle=cycle,
            packet=stuck[0].packet_id,
        )
        self.network.attach_fault_context(error)
        if self.strict:
            raise error
        self.violations.append(error)

    # ------------------------------------------------------------------
    # Post-mortem construction
    # ------------------------------------------------------------------
    def build_post_mortem(
        self, cycle: int, reason: str, packets: Optional[List["Packet"]] = None
    ) -> PostMortem:
        """Snapshot stuck packets, their route routers and recent events.

        With no explicit ``packets``, the oldest live packets are used
        (e.g. for drain-timeout diagnostics).
        """
        network = self.network
        if packets is None:
            packets = sorted(self.live.values(), key=lambda p: p.created_at)[:10]
        packets = packets[:10]
        stuck_dumps = []
        route_routers: Dict[int, None] = {}
        topology = network.topology
        for packet in packets:
            route = self._route_of(packet)
            for rid in route:
                route_routers[rid] = None
            base = packet.injected_at if packet.injected_at is not None else packet.created_at
            stuck_dumps.append(
                {
                    "packet_id": packet.packet_id,
                    "source": packet.source,
                    "source_coord": _coord_pair(topology, packet.source),
                    "destination": packet.destination,
                    "destination_coord": _coord_pair(topology, packet.destination),
                    "vnet": int(packet.vnet),
                    "created_at": packet.created_at,
                    "injected_at": packet.injected_at,
                    "age": cycle - base,
                    "route": route,
                    "blocked_routers": sorted(packet.blocked_routers),
                    "wakeup_wait_cycles": packet.wakeup_wait_cycles,
                }
            )
        router_dumps = [
            self._router_dump(network.routers[rid]) for rid in route_routers
        ]
        return PostMortem(
            cycle=cycle,
            reason=reason,
            stuck_packets=stuck_dumps,
            routers=router_dumps,
            recent_events=self.ring.snapshot(),
        )

    def _route_of(self, packet: "Packet") -> List[int]:
        """Current route of ``packet``, source to destination inclusive.

        Post-mortems run while the network may already be degraded:
        fault-tolerant routing can legitimately refuse an unreachable
        endpoint (``SimulationError``), and the walk is length-bounded
        so a diagnostic dump can never itself hang.
        """
        routing = self.network.routing
        route = [packet.source]
        current = packet.source
        limit = 2 * self.network.config.num_nodes
        try:
            while current != packet.destination and len(route) <= limit:
                current = routing.next_hop(current, packet.destination)
                route.append(current)
        except SimulationError:
            route.append(-1)  # truncated: endpoint became unreachable
        return route

    def _router_dump(self, router) -> dict:
        policy = self.network.policy
        rid = router.router_id
        if policy.router_is_off(rid):
            pg_state = "off"
        elif policy.router_is_waking(rid):
            pg_state = "waking"
        elif policy.is_router_available(rid):
            pg_state = "active"
        else:  # pragma: no cover - defensive (stalled by faults, etc.)
            pg_state = "unavailable"
        occupied = []
        for vc in router._occupied:
            front = vc.front
            occupied.append(
                {
                    "port": vc.port_direction.name,
                    "vc": vc.vc_index,
                    "state": vc.state.name,
                    "occupancy": vc.occupancy,
                    "front_packet": front.packet.packet_id if front else None,
                    "route": vc.route.name if vc.route is not None else None,
                }
            )
        return {
            "router_id": rid,
            "coord": _coord_pair(self.network.topology, rid),
            "pg_state": pg_state,
            "incoming_in_flight": router.incoming_in_flight,
            "occupied_vcs": occupied,
        }

    # ------------------------------------------------------------------
    def _violation(self, error: InvariantViolation) -> None:
        if self.strict:
            raise error
        self.violations.append(error)
