"""NoC simulator substrate: pluggable topologies, VC wormhole routers.

The default fabric is the paper's 2D mesh with XY routing; torus and
ring fabrics (with dateline VC-class routing) are available as baseline
comparison points via ``NoCConfig(topology=...)``.
"""

from .config import VALID_TOPOLOGIES, NoCConfig
from .errors import (
    BoundViolationError,
    BufferOverflowError,
    ConfigError,
    DeadlockError,
    DegradedNetworkError,
    DrainTimeoutError,
    FaultSpecError,
    InvariantViolation,
    NIQueueOverflowError,
    SimulationError,
    TopologyError,
    UnsupportedTopologyError,
)
from .faults import (
    FAULT_KINDS,
    SAMPLABLE_FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    clear_ambient,
    sample_fault_schedule,
    set_ambient,
)
from .invariants import InvariantChecker, PostMortem
from .network import Network
from .network_interface import NetworkInterface
from .packet import (
    CONTROL_PACKET_FLITS,
    DATA_PACKET_FLITS,
    NUM_VNETS,
    Flit,
    Packet,
    VirtualNetwork,
    control_packet,
    data_packet,
)
from .policy import AlwaysOnPolicy, PowerPolicy
from .router import Router
from .routing import (
    FaultTolerantRouting,
    RingRouting,
    RoutingAlgorithm,
    TorusRouting,
    XYRouting,
    default_routing,
)
from .stats import DroppedPacket, NetworkStats
from .topology import (
    ALL_DIRECTIONS,
    MESH_DIRECTIONS,
    Coordinate,
    Direction,
    Mesh2D,
    MeshTopology,
    Ring,
    Topology,
    Torus2D,
    make_topology,
)

__all__ = [
    "ALL_DIRECTIONS",
    "AlwaysOnPolicy",
    "BoundViolationError",
    "BufferOverflowError",
    "CONTROL_PACKET_FLITS",
    "ConfigError",
    "Coordinate",
    "DATA_PACKET_FLITS",
    "DeadlockError",
    "DegradedNetworkError",
    "Direction",
    "DrainTimeoutError",
    "DroppedPacket",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "FaultSpecError",
    "FaultTolerantRouting",
    "Flit",
    "InvariantChecker",
    "InvariantViolation",
    "MESH_DIRECTIONS",
    "Mesh2D",
    "MeshTopology",
    "NIQueueOverflowError",
    "Network",
    "NetworkInterface",
    "NetworkStats",
    "NoCConfig",
    "NUM_VNETS",
    "Packet",
    "PostMortem",
    "PowerPolicy",
    "Ring",
    "RingRouting",
    "Router",
    "RoutingAlgorithm",
    "SAMPLABLE_FAULT_KINDS",
    "SimulationError",
    "Topology",
    "TopologyError",
    "TorusRouting",
    "Torus2D",
    "UnsupportedTopologyError",
    "VALID_TOPOLOGIES",
    "VirtualNetwork",
    "XYRouting",
    "clear_ambient",
    "control_packet",
    "data_packet",
    "default_routing",
    "make_topology",
    "sample_fault_schedule",
    "set_ambient",
]
