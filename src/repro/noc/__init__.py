"""NoC simulator substrate: mesh topology, XY routing, VC wormhole routers."""

from .config import NoCConfig
from .network import Network
from .network_interface import NetworkInterface
from .packet import (
    CONTROL_PACKET_FLITS,
    DATA_PACKET_FLITS,
    NUM_VNETS,
    Flit,
    Packet,
    VirtualNetwork,
    control_packet,
    data_packet,
)
from .policy import AlwaysOnPolicy, PowerPolicy
from .router import Router
from .routing import XYRouting
from .stats import NetworkStats
from .topology import ALL_DIRECTIONS, MESH_DIRECTIONS, Direction, MeshTopology

__all__ = [
    "ALL_DIRECTIONS",
    "AlwaysOnPolicy",
    "CONTROL_PACKET_FLITS",
    "DATA_PACKET_FLITS",
    "Direction",
    "Flit",
    "MESH_DIRECTIONS",
    "MeshTopology",
    "Network",
    "NetworkInterface",
    "NetworkStats",
    "NoCConfig",
    "NUM_VNETS",
    "Packet",
    "PowerPolicy",
    "Router",
    "VirtualNetwork",
    "XYRouting",
    "control_packet",
    "data_packet",
]
