"""NoC simulator substrate: mesh topology, XY routing, VC wormhole routers."""

from .config import NoCConfig
from .errors import (
    BufferOverflowError,
    DeadlockError,
    DegradedNetworkError,
    DrainTimeoutError,
    FaultSpecError,
    InvariantViolation,
    NIQueueOverflowError,
    SimulationError,
    TopologyError,
)
from .faults import (
    FAULT_KINDS,
    SAMPLABLE_FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    clear_ambient,
    sample_fault_schedule,
    set_ambient,
)
from .invariants import InvariantChecker, PostMortem
from .network import Network
from .network_interface import NetworkInterface
from .packet import (
    CONTROL_PACKET_FLITS,
    DATA_PACKET_FLITS,
    NUM_VNETS,
    Flit,
    Packet,
    VirtualNetwork,
    control_packet,
    data_packet,
)
from .policy import AlwaysOnPolicy, PowerPolicy
from .router import Router
from .routing import FaultTolerantRouting, XYRouting
from .stats import DroppedPacket, NetworkStats
from .topology import ALL_DIRECTIONS, MESH_DIRECTIONS, Direction, MeshTopology

__all__ = [
    "ALL_DIRECTIONS",
    "AlwaysOnPolicy",
    "BufferOverflowError",
    "CONTROL_PACKET_FLITS",
    "DATA_PACKET_FLITS",
    "DeadlockError",
    "DegradedNetworkError",
    "Direction",
    "DrainTimeoutError",
    "DroppedPacket",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "FaultSpecError",
    "FaultTolerantRouting",
    "Flit",
    "InvariantChecker",
    "InvariantViolation",
    "MESH_DIRECTIONS",
    "MeshTopology",
    "NIQueueOverflowError",
    "Network",
    "NetworkInterface",
    "NetworkStats",
    "NoCConfig",
    "NUM_VNETS",
    "Packet",
    "PostMortem",
    "PowerPolicy",
    "Router",
    "SAMPLABLE_FAULT_KINDS",
    "SimulationError",
    "TopologyError",
    "VirtualNetwork",
    "XYRouting",
    "clear_ambient",
    "control_packet",
    "data_packet",
    "sample_fault_schedule",
    "set_ambient",
]
