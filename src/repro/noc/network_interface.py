"""Network interface (NI).

The NI sits between a node (traffic generator or core/cache complex)
and its local router.  Following the paper's Sec. 4.2 timeline, a
message entering the NI spends ``ni_latency`` cycles being encapsulated
and arbitrated before the availability of the local router's input
port is checked and flits are passed into its input VC buffer; only
one flit from all virtual networks crosses the NI-to-router link per
cycle.

Power-gating hooks: when a ready packet finds the local router gated
off, the NI reports the injection check to the power policy (which
asserts the WU handshake, or has already punched ahead using NI slack)
and the packet accrues wakeup-wait cycles — this is the injection-side
blocking that Power Punch's second mechanism removes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from .buffers import VCState
from .config import NoCConfig
from .errors import NIQueueOverflowError
from .packet import NUM_VNETS, Flit, Packet, VirtualNetwork, make_flits
from .policy import PowerPolicy
from .router import Router
from .topology import Direction


class _Stream(object):
    """An in-progress packet injection into a local input VC."""

    __slots__ = ("packet", "flits", "vc", "next_flit")

    def __init__(self, packet: Packet, vc: int) -> None:
        self.packet = packet
        self.flits = make_flits(packet)
        self.vc = vc
        self.next_flit = 0

    @property
    def done(self) -> bool:
        """Whether every flit of the packet has been sent."""
        return self.next_flit >= len(self.flits)


class NetworkInterface:
    """NI for one node."""

    def __init__(
        self,
        node: int,
        config: NoCConfig,
        router: Router,
        policy: PowerPolicy,
        send_flit: Callable[[int, int, Flit, int], None],
        on_work: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.node = node
        self.config = config
        self.router = router
        self.policy = policy
        #: Kernel callback: (node, local_vc, flit, cycle) -> schedules the
        #: flit into the local input port next cycle.
        self._send_flit = send_flit
        #: Kernel callback fired whenever this NI gains work (a packet
        #: was queued), so the active-set kernel re-schedules it.
        self._on_work = on_work
        #: Vector-kernel hook: when engaged, local-VC probes read the
        #: engine's structure-of-arrays mirror instead of the (stale)
        #: router objects.  ``None`` under the object kernels.
        self._vc_probe: Optional[Callable] = None
        self.queues: List[Deque[Packet]] = [deque() for _ in range(NUM_VNETS)]
        #: NI-side credits for the local input port VCs.
        self.credits: List[int] = [
            config.vc_depth(config.vnet_of_vc(vc)) for vc in range(config.num_vcs)
        ]
        #: VCs currently reserved by an injection stream.
        self.streams: Dict[int, _Stream] = {}
        self._vn_rr = 0
        #: Packets whose injection check already fired (id set).
        self._checked: set = set()
        # Ejection-side state: flits of partially received packets.
        self._eject_listeners: List[Callable[[Packet, int], None]] = []
        # Statistics
        self.injected_packets = 0
        self.ejected_packets = 0
        self.injection_stalled_cycles = 0

    # ------------------------------------------------------------------
    # Producer-side API
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, cycle: int) -> None:
        """A node hands a freshly generated message to the NI."""
        if self.config.ni_queue_capacity and (
            len(self.queues[int(packet.vnet)]) >= self.config.ni_queue_capacity
        ):
            raise NIQueueOverflowError(
                f"NI queue overflow: vnet {int(packet.vnet)} queue already "
                f"holds {self.config.ni_queue_capacity} packets",
                cycle=cycle, router=self.node, packet=packet.packet_id,
            )
        packet.created_at = cycle
        self.queues[int(packet.vnet)].append(packet)
        if self._on_work is not None:
            self._on_work(self.node)
        self.policy.on_message_created(self.node, packet, cycle)

    def reinject(self, packet: Packet) -> None:
        """Re-queue a packet that bypassed the mesh (e.g. a NoRD ring
        packet re-entering at its exit node) without restarting the NI
        pipeline delay: ``created_at`` is left untouched."""
        self.queues[int(packet.vnet)].append(packet)
        if self._on_work is not None:
            self._on_work(self.node)

    def early_notice(self, cycle: int) -> None:
        """Forward a slack-2 style early notice to the power policy."""
        self.policy.early_local_notice(self.node, cycle)

    def add_eject_listener(self, listener: Callable[[Packet, int], None]) -> None:
        """Register a callback fired when packets finish ejecting here."""
        self._eject_listeners.append(listener)

    def notify_delivery(self, packet: Packet, cycle: int) -> None:
        """Announce an out-of-band delivery at this node.

        Fires the same eject listeners a mesh ejection would, so
        bypass paths (e.g. NoRD's ring) stay observationally identical
        to normal deliveries without reaching into private state.
        """
        for listener in self._eject_listeners:
            listener(packet, cycle)

    # ------------------------------------------------------------------
    # Sleep-gating signal toward the local PG controller
    # ------------------------------------------------------------------
    def wants_local_router(self, cycle: int) -> bool:
        """Whether the NI is actively using (or about to use) the router.

        True while a stream is in flight or a ready packet is waiting to
        inject: the PG controller must not put the local router to sleep
        then (it would immediately need waking).  Packets still inside
        the NI pipeline do *not* hold the router awake under
        conventional power-gating — that is exactly the slack Power
        Punch exploits.
        """
        if self.streams:
            return True
        for queue in self.queues:
            if queue and cycle >= queue[0].created_at + self.config.ni_latency:
                return True
        return False

    def pending_packets(self) -> int:
        """Packets queued or mid-injection at this NI."""
        return sum(len(q) for q in self.queues) + len(self.streams)

    def has_work(self) -> bool:
        """Whether stepping this NI this cycle could do anything.

        True while any stream is in flight or any vnet queue holds a
        packet, independent of how many virtual networks exist.
        """
        if self.streams:
            return True
        return any(self.queues)

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Start new streams, then send at most one flit to the router."""
        self._try_start_streams(cycle)
        self._send_one_flit(cycle)

    def _try_start_streams(self, cycle: int) -> None:
        for vn in range(NUM_VNETS):
            queue = self.queues[vn]
            if not queue:
                continue
            packet = queue[0]
            if cycle < packet.created_at + self.config.ni_latency:
                continue
            # The NI now checks the availability of the local router
            # (end of NI delay in the paper's Fig. 6 timeline).
            if packet.packet_id not in self._checked:
                self._checked.add(packet.packet_id)
                self.policy.on_injection_check(self.node, packet, cycle)
            # The injected flit lands in the local input port next cycle.
            if not self.policy.is_router_available_by(
                self.router.router_id, cycle + 1
            ):
                packet.blocked_routers.add(self.router.router_id)
                packet.wakeup_wait_cycles += 1
                self.injection_stalled_cycles += 1
                continue
            vc = self._free_local_vc(VirtualNetwork(vn))
            if vc is None:
                continue
            queue.popleft()
            self._checked.discard(packet.packet_id)
            self.streams[vc] = _Stream(packet, vc)

    def _free_local_vc(self, vnet: VirtualNetwork) -> Optional[int]:
        """A local input VC that is idle, empty and not already reserved."""
        probe = self._vc_probe
        if probe is not None:
            return probe(self, vnet)
        port = self.router.input_ports[Direction.LOCAL]
        for vc in self.config.vcs_of_vnet(vnet):
            if vc in self.streams:
                continue
            state = port.vcs[vc]
            if state.is_empty and state.state is VCState.IDLE:
                return vc
        return None

    def _send_one_flit(self, cycle: int) -> None:
        if not self.streams:
            return
        vcs = sorted(self.streams)
        n = len(vcs)
        for i in range(n):
            vc = vcs[(self._vn_rr + i) % n]
            stream = self.streams[vc]
            if self.credits[vc] <= 0:
                continue
            flit = stream.flits[stream.next_flit]
            stream.next_flit += 1
            self.credits[vc] -= 1
            if flit.is_head:
                stream.packet.injected_at = cycle
                self.injected_packets += 1
            self._send_flit(self.node, vc, flit, cycle)
            if stream.done:
                del self.streams[vc]
            self._vn_rr += 1
            return

    # ------------------------------------------------------------------
    # Kernel-side callbacks
    # ------------------------------------------------------------------
    def credit_from_router(self, vc: int) -> None:
        """A local input-port buffer slot freed up."""
        self.credits[vc] += 1

    def eject_flit(self, flit: Flit, cycle: int) -> None:
        """Receive an ejected flit; fire listeners on the tail."""
        if flit.is_tail:
            packet = flit.packet
            packet.delivered_at = cycle
            self.ejected_packets += 1
            for listener in self._eject_listeners:
                listener(packet, cycle)
