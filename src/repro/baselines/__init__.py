"""Baseline power-gating schemes the paper compares against."""

from .nord import BypassRing, NoRDLike, snake_order

__all__ = ["BypassRing", "NoRDLike", "snake_order"]
