"""NoRD-like baseline: node-router decoupling with a bypass ring.

The paper's Sec. 6.6(3) compares Power Punch against NoRD [Chen &
Pinkston, MICRO 2012], the strongest fast-reconfiguration baseline:
instead of waking gated-off routers, NoRD lets packets *detour* around
them on a narrow bypass ring that connects every NI, and routers wake
only on their own node's communication demand — transit packets never
wake anybody.  Its performance cost is detour latency (the paper quotes
~9.3 cycles/packet vs Power Punch's ~1.8 on 64 nodes).

This module implements a faithful-in-kind simplification (documented in
DESIGN.md):

* a unidirectional Hamiltonian **bypass ring** in boustrophedon (snake)
  order over the mesh, one flit wide, ``ring_hop_latency`` cycles per
  hop, with per-link serialization and contention;
* **decoupled wakeup**: a router wakes only when its own NI's backlog
  exceeds ``wake_threshold`` packets; transit traffic never triggers
  wakeups;
* **injection-time path check**: a ready packet whose full XY path is
  powered on injects into the mesh normally (path routers are held
  awake long enough to cross); otherwise the NI places it on the ring;
* **ring re-entry**: at every ring stop the packet re-checks the mesh;
  as soon as the remaining XY path is fully awake it hops off and
  continues through the mesh (re-paying the NI latency, as NoRD pays
  its bypass-to-router transfer);
* a **fallback wakeup** if a mesh packet is ever caught by a router
  that gated off behind the path check, guaranteeing progress.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..core.schemes import PowerGatedScheme
from ..noc.network import Network
from ..noc.packet import Packet
from ..noc.topology import MeshTopology


def snake_order(topology: MeshTopology) -> List[int]:
    """Hamiltonian ring order: row 0 left-to-right, row 1 back, ..."""
    order = []
    for y in range(topology.height):
        row = range(topology.width) if y % 2 == 0 else reversed(range(topology.width))
        order.extend(topology.node_at(x, y) for x in row)
    return order


class BypassRing:
    """Cycle-stepped one-flit-wide unidirectional ring over all NIs."""

    def __init__(self, order: List[int], hop_latency: int = 2) -> None:
        self.order = order
        self.position = {node: i for i, node in enumerate(order)}
        self.hop_latency = hop_latency
        n = len(order)
        #: Per ring link (from position i): cycle until which it is busy.
        self._link_busy_until = [0] * n
        #: Packets waiting at each ring position.
        self._queues: List[Deque[Packet]] = [deque() for _ in range(n)]
        #: Packets in flight on a link: (arrival_cycle, next_pos, packet).
        self._in_flight: List[Tuple[int, int, Packet]] = []
        #: Ring hops ridden per live packet id.
        self.hops_ridden: Dict[int, int] = {}
        self.ring_hops = 0
        self.boardings = 0

    def board(self, node: int, packet: Packet) -> None:
        """Put a packet on the ring at ``node``."""
        self._queues[self.position[node]].append(packet)
        self.hops_ridden.setdefault(packet.packet_id, 0)
        self.boardings += 1

    def step(self, cycle: int, try_exit) -> None:
        """Advance the ring one cycle.

        ``try_exit(node, packet, cycle)`` is consulted for every packet
        at a ring stop; returning True removes it from the ring (it was
        delivered or re-entered the mesh).
        """
        # Land packets that finished their link traversal.
        if self._in_flight:
            still = []
            for arrival, pos, packet in self._in_flight:
                if arrival <= cycle:
                    self._queues[pos].append(packet)
                else:
                    still.append((arrival, pos, packet))
            self._in_flight = still
        n = len(self.order)
        for pos in range(n):
            queue = self._queues[pos]
            if not queue:
                continue
            node = self.order[pos]
            # Offer every queued packet a chance to leave the ring.
            kept: Deque[Packet] = deque()
            while queue:
                packet = queue.popleft()
                if try_exit(node, packet, cycle):
                    self.hops_ridden.pop(packet.packet_id, None)
                else:
                    kept.append(packet)
            self._queues[pos] = queue = kept
            if not queue:
                continue
            # One flit per cycle per link: a packet of F flits occupies
            # the outgoing link for F cycles plus the hop latency.
            if self._link_busy_until[pos] > cycle:
                continue
            packet = queue.popleft()
            occupancy = packet.size_flits + self.hop_latency
            self._link_busy_until[pos] = cycle + packet.size_flits
            self._in_flight.append((cycle + occupancy, (pos + 1) % n, packet))
            self.hops_ridden[packet.packet_id] = (
                self.hops_ridden.get(packet.packet_id, 0) + 1
            )
            self.ring_hops += 1

    def in_transit(self) -> int:
        """Packets currently riding or queued on the ring."""
        return len(self._in_flight) + sum(len(q) for q in self._queues)


class NoRDLike(PowerGatedScheme):
    """Bypass-ring power-gating in the spirit of NoRD."""

    name = "NoRD-like"

    def __init__(
        self,
        wakeup_latency: int = 8,
        timeout: int = 4,
        ring_hop_latency: int = 2,
        wake_threshold: int = 1,
        max_ring_hops: int = 4,
    ) -> None:
        super().__init__(
            wakeup_latency=wakeup_latency,
            timeout=timeout,
            punch_hops=1,
            use_forewarning=False,
        )
        self.ring_hop_latency = ring_hop_latency
        #: NI backlog (packets) beyond which the local router is woken.
        self.wake_threshold = wake_threshold
        #: A packet that has ridden this many ring hops starts waking
        #: the mesh ahead of it (NoRD bounds its detours the same way:
        #: unbounded rides would defeat the point of the bypass).
        self.max_ring_hops = max_ring_hops
        self.detour_wakes = 0
        self.ring: Optional[BypassRing] = None
        #: Mesh path holds: router -> hold-awake-until cycle.
        self._path_hold: Dict[int, int] = {}
        self.detoured_packets = 0
        self.mesh_packets = 0
        self.emergency_wakes = 0

    # ------------------------------------------------------------------
    def attach(self, network: Network) -> None:
        """Build the bypass ring and per-router controllers for this network."""
        super().attach(network)
        self.ring = BypassRing(
            snake_order(network.topology), hop_latency=self.ring_hop_latency
        )
        self._hop_latency = network.config.hop_latency

    # ------------------------------------------------------------------
    # Decoupled wakeup policy
    # ------------------------------------------------------------------
    def begin_cycle(self, cycle: int) -> None:
        """Demand-only wakeups, path holds, divert decisions, ring step."""
        self.fabric.deliver(cycle)
        interfaces = self.network.interfaces
        routers = self.network.routers
        for node, controller in enumerate(self.controllers):
            ni = interfaces[node]
            backlog = ni.pending_packets()
            # NoRD: wake only on the node's own sustained demand.
            if backlog >= self.wake_threshold and controller.is_off:
                controller.request_wakeup(cycle, 0)
            held = self._path_hold.get(node, -1) >= cycle
            if held or ni.streams:
                controller.request_wakeup(cycle, 0)
            controller.step(
                cycle,
                routers[node].datapath_empty() and not held,
                bool(ni.streams),
            )
        # NoRD steps every controller every cycle (demand wakeups need
        # each NI's backlog anyway), so the lazy OFF-accounting clock
        # just tracks the real step point.
        self._stepped_through = cycle
        self._divert_or_release(cycle)
        self.ring.step(cycle, self._try_exit)

    def end_cycle(self, cycle: int) -> None:
        # No punch signals: NoRD never wakes routers for transit.
        """No transit punches: NoRD never wakes routers for through-traffic."""
        return

    # ------------------------------------------------------------------
    # Injection-side decisions
    # ------------------------------------------------------------------
    #: How many upcoming XY hops must be awake to (re)enter the mesh.
    LOOKAHEAD_HOPS = 3

    def _path_is_awake(self, source: int, destination: int, cycle: int) -> bool:
        """Whether the next few hops (and the source) are powered on.

        NoRD exits its bypass as soon as the local mesh neighborhood is
        usable, rather than requiring the whole path — later gated-off
        routers are handled by riding the ring again from an
        intermediate NI (or, rarely, the emergency-wake fallback).
        """
        path = self.network.routing.path(source, destination)
        ahead = path[: self.LOOKAHEAD_HOPS + 1]
        return all(self.controllers[r].available_by(cycle + 1) for r in ahead)

    def _hold_path(self, source: int, destination: int, cycle: int) -> None:
        path = self.network.routing.path(source, destination)
        for i, router in enumerate(path[: self.LOOKAHEAD_HOPS + 1]):
            eta = cycle + (i + 2) * self._hop_latency + 24
            if eta > self._path_hold.get(router, -1):
                self._path_hold[router] = eta

    def _divert_or_release(self, cycle: int) -> None:
        """Move ready NI packets whose mesh path is asleep to the ring."""
        ni_latency = self.network.config.ni_latency
        for ni in self.network.interfaces:
            for queue in ni.queues:
                while queue:
                    packet = queue[0]
                    if cycle < packet.created_at + ni_latency:
                        break
                    if self._path_is_awake(ni.node, packet.destination, cycle):
                        self._hold_path(ni.node, packet.destination, cycle)
                        self.mesh_packets += 1
                        break  # let the NI inject it normally
                    queue.popleft()
                    ni._checked.discard(packet.packet_id)
                    if packet.injected_at is None:
                        packet.injected_at = cycle
                    self.detoured_packets += 1
                    self.ring.board(ni.node, packet)

    def _try_exit(self, node: int, packet: Packet, cycle: int) -> bool:
        """Leave the ring at ``node`` if possible."""
        if node == packet.destination:
            self.network.deliver_out_of_band(packet, cycle)
            return True
        if self._path_is_awake(node, packet.destination, cycle):
            # Re-enter the mesh: hand the packet to this node's NI (its
            # NI-pipeline timer elapsed long ago, so it is immediately
            # ready — NoRD's bypass-to-router transfer is about as fast).
            self._hold_path(node, packet.destination, cycle)
            packet.source = node  # continue XY routing from here
            self.network.interfaces[node].reinject(packet)
            return True
        # Detour bound: after max_ring_hops on the ring, start waking
        # the next few XY-path routers so a mesh exit opens up soon.
        if self.ring.hops_ridden.get(packet.packet_id, 0) >= self.max_ring_hops:
            path = self.network.routing.path(node, packet.destination)
            for router in path[: self.LOOKAHEAD_HOPS + 1]:
                controller = self.controllers[router]
                if controller.is_off:
                    self.detour_wakes += 1
                controller.request_wakeup(cycle, 0)
                eta = cycle + self.wakeup_latency + 4 * self._hop_latency
                if eta > self._path_hold.get(router, -1):
                    self._path_hold[router] = eta
        return False

    # ------------------------------------------------------------------
    # Fallback: a mesh packet caught by a gated-off router wakes it
    # (guarantees forward progress; rare thanks to path holds).
    # ------------------------------------------------------------------
    def note_blocked(self, router_id: int, next_router: int, packet, cycle: int) -> None:
        """Emergency fallback: wake a router that caught a mesh packet."""
        controller = self.controllers[next_router]
        if controller.is_off:
            self.emergency_wakes += 1
        controller.request_wakeup(cycle, 0)

    def on_injection_check(self, node: int, packet: Packet, cycle: int) -> None:
        # Injection never blocks on the local router: the ring is always
        # reachable (node-router decoupling).
        """Injection never blocks: the ring is reachable router-off (NRD)."""
        return

    def pending_work(self) -> int:
        """Ring occupancy, so drain loops wait for detoured packets."""
        return self.ring.in_transit() if self.ring is not None else 0
