"""Kernel performance baseline: ``python -m repro.bench``.

Measures simulated cycles/sec of the active-set and vector kernels
against the naive full-scan kernel over a matrix of scheme x injection
rate x mesh size, and emits the result as ``BENCH_kernel.json`` so CI
can track the trend and flag regressions.

Methodology
-----------

Open-loop synthetic traffic is state-independent: the generator never
looks at the network beyond its topology.  Each benchmark therefore
**pre-records an injection trace** (cycle, source, destination, vnet,
size — plus slack-2 early notices) by driving :class:`SyntheticTraffic`
against a lightweight recorder, then **replays** the identical trace
into a fresh network per kernel.  The timed region contains only trace
application and ``Network.step`` — no RNG, no pattern math — so the
reported speedup isolates the kernel instead of diluting it with
traffic-generation overhead.

Because all kernels consume the same trace, the bench doubles as an
end-to-end exactness check: within every config it asserts that **every
timing repetition** of every kernel produced the identical stats dump
and total cycle count (so no timing is ever accepted for a run that did
different work), and that all kernels match the naive reference.

Output schema (``bench_kernel/v1``)::

    {
      "schema": "bench_kernel/v1",
      "cycles": <recorded trace length>,
      "repeat": <timing repetitions, best-of>,
      "results": [
        {"scheme": str, "width": int, "height": int,
         "injection_rate": float, "total_cycles": int,
         "active_cps": float, "naive_cps": float, "vector_cps": float,
         "speedup": float,          # active_cps / naive_cps
         "speedup_vector": float},  # vector_cps / active_cps
        ...
      ]
    }

``--check BASELINE`` compares the current run against a committed
baseline and exits non-zero only when a config's cycles/sec fell more
than ``--tolerance`` (default 30%) below the baseline for any
``*_cps`` column present in both documents — a trend job, deliberately
insensitive to ordinary machine-to-machine noise in the speedup ratios
themselves.

Campaign throughput mode (``--campaign``) benchmarks the *campaign
executors* instead of the cycle kernels: the same batch of cheap
synthetic cells runs through the single-host process pool and through
an ephemeral two-host local service cluster (``docs/service.md``),
reporting cells/sec for each and asserting the payloads came back
bit-identical.  Output schema (``bench_campaign/v1``) lands in
``BENCH_campaign.json``; the service row carries real orchestration
overhead (TCP round-trips, leases, per-host engine pools), so it is a
distribution-tax trend line, not a horse race.
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from .baselines import NoRDLike
from .core import ConvOptPG, NoPG, PowerPunchPG, PowerPunchSignal
from .noc import Network, NoCConfig
from .noc.packet import Packet, VirtualNetwork
from .traffic import SyntheticTraffic

SCHEMES: Dict[str, Callable] = {
    "NoPG": NoPG,
    "ConvOptPG": ConvOptPG,
    "PowerPunchSignal": PowerPunchSignal,
    "PowerPunchPG": PowerPunchPG,
    "NoRDLike": NoRDLike,
}

#: Schemes that run on every topology (multi-hop punch schemes are
#: mesh-only, so non-mesh bench rows are restricted to these).
PORTABLE_SCHEMES = ("NoPG", "ConvOptPG")

#: Kernels every bench cell times and cross-checks.
KERNELS = ("active", "naive", "vector")

#: One trace event: ("inject", source, dest, vnet, size) or ("notice", node).
TraceEvent = Tuple
#: A recorded trace: events per cycle over a fixed window.
Trace = Dict[int, List[TraceEvent]]


class _RecorderNI:
    """Stand-in NI that records slack-2 early notices."""

    def __init__(self, recorder: "_TraceRecorder", node: int) -> None:
        self._recorder = recorder
        self._node = node

    def early_notice(self, cycle: int) -> None:
        self._recorder.events.setdefault(cycle, []).append(("notice", self._node))


class _TraceRecorder:
    """Duck-typed :class:`Network` facade for :class:`SyntheticTraffic`.

    The generator only uses ``topology``, ``interfaces[n].early_notice``
    and ``inject``; recording those calls captures everything needed to
    replay the workload verbatim.
    """

    def __init__(self, config: NoCConfig) -> None:
        self.topology = config.make_topology()
        self.cycle = 0
        self.events: Trace = {}
        self.interfaces = [
            _RecorderNI(self, node) for node in range(config.num_nodes)
        ]

    def inject(self, packet: Packet) -> None:
        self.events.setdefault(self.cycle, []).append(
            (
                "inject",
                packet.source,
                packet.destination,
                int(packet.vnet),
                packet.size_flits,
            )
        )


def record_trace(
    config: NoCConfig, pattern: str, rate: float, seed: int, cycles: int
) -> Trace:
    """Record ``cycles`` cycles of synthetic traffic for ``config``."""
    recorder = _TraceRecorder(config)
    traffic = SyntheticTraffic(recorder, pattern, rate, seed=seed)
    for cycle in range(cycles):
        recorder.cycle = cycle
        traffic.step(cycle)
    # Packets still deferred past the window are dropped: both kernels
    # replay the identical truncated trace.
    return recorder.events


def replay(
    config: NoCConfig,
    scheme_name: str,
    trace: Trace,
    cycles: int,
    drain_cycles: int = 500_000,
) -> Tuple[Network, float]:
    """Replay ``trace`` into a fresh network; return it and the wall
    time of the timed region (trace application + every ``step``)."""
    net = Network(config, SCHEMES[scheme_name]())
    interfaces = net.interfaces
    inject = net.inject
    step = net.step
    start = perf_counter()
    for cycle in range(cycles):
        for event in trace.get(cycle, ()):
            if event[0] == "inject":
                _kind, source, dest, vnet, size = event
                inject(Packet(source, dest, VirtualNetwork(vnet), size, cycle))
            else:
                interfaces[event[1]].early_notice(cycle)
        step()
    net.run_until_drained(drain_cycles)
    elapsed = perf_counter() - start
    return net, elapsed


def _stats_fingerprint(net: Network) -> Dict[str, int]:
    dump = dict(net.stats.as_dict())
    policy = net.policy
    if hasattr(policy, "controllers") and policy.controllers:
        dump["total_off_cycles"] = policy.total_off_cycles()
        dump["total_wake_events"] = policy.total_wake_events()
    return dump


def bench_config(
    scheme_name: str,
    width: int,
    height: int,
    rate: float,
    cycles: int,
    repeat: int,
    seed: int = 7,
    topology: str = "mesh",
) -> Dict[str, object]:
    """Benchmark one (scheme, fabric, rate) cell under all three kernels.

    A timing is only accepted once **every** repetition of the kernel
    produced the identical stats fingerprint and drain length — a
    repetition that did different work (a nondeterminism bug) would
    otherwise silently contribute its wall clock to the best-of.
    Previously only the last repetition was checked.
    """
    base = NoCConfig(width=width, height=height, topology=topology)
    trace = record_trace(base, "uniform_random", rate, seed, cycles)
    timings: Dict[str, float] = {}
    fingerprints = {}
    total_cycles = {}
    for kernel in KERNELS:
        config = NoCConfig(
            width=width, height=height, topology=topology, kernel=kernel
        )
        best = None
        for rep in range(repeat):
            net, elapsed = replay(config, scheme_name, trace, cycles)
            fingerprint = _stats_fingerprint(net)
            if rep == 0:
                fingerprints[kernel] = fingerprint
                total_cycles[kernel] = net.cycle
            else:
                if fingerprint != fingerprints[kernel]:
                    mismatched = {
                        key: (fingerprints[kernel][key], fingerprint[key])
                        for key in fingerprint
                        if fingerprint[key] != fingerprints[kernel][key]
                    }
                    raise AssertionError(
                        f"nondeterministic {kernel} kernel for {scheme_name} "
                        f"{width}x{height}@{rate} (repeat {rep}): {mismatched}"
                    )
                if net.cycle != total_cycles[kernel]:
                    raise AssertionError(
                        f"nondeterministic drain length for {kernel} kernel, "
                        f"{scheme_name} {width}x{height}@{rate} (repeat "
                        f"{rep}): {net.cycle} != {total_cycles[kernel]}"
                    )
            best = elapsed if best is None else min(best, elapsed)
        timings[kernel] = best
    for kernel in KERNELS:
        if kernel == "naive":
            continue
        if fingerprints[kernel] != fingerprints["naive"]:
            mismatched = {
                key: (fingerprints[kernel][key], fingerprints["naive"][key])
                for key in fingerprints[kernel]
                if fingerprints[kernel][key] != fingerprints["naive"][key]
            }
            raise AssertionError(
                f"kernel mismatch ({kernel} vs naive) for {scheme_name} "
                f"{width}x{height}@{rate}: {mismatched}"
            )
        if total_cycles[kernel] != total_cycles["naive"]:
            raise AssertionError(
                f"drain length diverged ({kernel} vs naive) for "
                f"{scheme_name} {width}x{height}@{rate}: {total_cycles}"
            )
    active_cps = total_cycles["active"] / timings["active"]
    naive_cps = total_cycles["naive"] / timings["naive"]
    vector_cps = total_cycles["vector"] / timings["vector"]
    return {
        "scheme": scheme_name,
        "topology": topology,
        "width": width,
        "height": height,
        "injection_rate": rate,
        "total_cycles": total_cycles["active"],
        "active_cps": round(active_cps, 1),
        "naive_cps": round(naive_cps, 1),
        "vector_cps": round(vector_cps, 1),
        "speedup": round(active_cps / naive_cps, 3),
        "speedup_vector": round(vector_cps / active_cps, 3),
    }


def parse_fabric(spec: str) -> Tuple[str, int, int]:
    """Parse a fabric spec: ``8x8`` (mesh), ``torus:8x8``, ``ring:16``."""
    topology, sep, dims = spec.partition(":")
    if not sep:
        topology, dims = "mesh", spec
    width, sep, height = dims.partition("x")
    return (topology, int(width), int(height) if sep else 1)


def bench_campaign(
    schemes: List[str],
    fabrics: List[Tuple[str, int, int]],
    rates: List[float],
    cycles: int,
    repeat: int,
):
    """Declare the benchmark matrix as campaign cells.

    Bench cells are never cached — their payloads are wall-clock
    timings, which are not a function of the spec — so the campaign
    runs with ``cache_dir=None`` always; the engine contributes
    fan-out, retries and the shared progress-log format.

    Multi-hop punch schemes are mesh-only, so non-mesh fabrics keep
    only the :data:`PORTABLE_SCHEMES` subset of ``schemes``.
    """
    from .campaign import Campaign, CellSpec

    cells = tuple(
        CellSpec(
            kind="bench",
            workload=(
                f"{width}x{height}"
                if topology == "mesh"
                else f"{topology}:{width}x{height}"
            ),
            scheme=scheme_name,
            config=NoCConfig(
                width=width, height=height, topology=topology
            ).to_items(),
            seed=7,
            injection_rate=rate,
            extras=(("cycles", cycles), ("repeat", repeat)),
        )
        for topology, width, height in fabrics
        for rate in rates
        for scheme_name in schemes
        if topology == "mesh" or scheme_name in PORTABLE_SCHEMES
    )
    return Campaign(name="bench-kernel", cells=cells)


def run_matrix(
    schemes: List[str],
    fabrics: List[Tuple[str, int, int]],
    rates: List[float],
    cycles: int,
    repeat: int,
    verbose: bool = True,
    workers: int = 1,
    timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
) -> Dict[str, object]:
    """Run the full benchmark matrix; return the bench_kernel/v1 doc.

    ``workers > 1`` fans cells out over a process pool; expect extra
    timing noise from co-scheduled workers (cycles/sec drops while the
    active/naive *ratio* within a cell stays comparable, since both
    kernels of a cell time on the same worker).  ``timeout`` bounds
    each cell's wall clock — a wedged kernel fails its cell instead of
    hanging the whole trend job.
    """
    campaign = bench_campaign(schemes, fabrics, rates, cycles, repeat)
    results = campaign.run(
        workers=workers, timeout=timeout, max_retries=max_retries
    )
    if verbose:
        for cell in results:
            topo = cell.get("topology", "mesh")
            label = "" if topo == "mesh" else f"{topo}:"
            print(
                f"{cell['scheme']:>17} {label}{cell['width']}x{cell['height']} "
                f"rate={cell['injection_rate']:<5} "
                f"active={cell['active_cps']:>9} c/s  "
                f"naive={cell['naive_cps']:>9} c/s  "
                f"vector={cell['vector_cps']:>9} c/s  "
                f"speedup={cell['speedup']}x  "
                f"vector/active={cell['speedup_vector']}x",
                file=sys.stderr,
            )
    return {
        "schema": "bench_kernel/v1",
        "cycles": cycles,
        "repeat": repeat,
        "results": results,
    }


def campaign_throughput_cells(count: int, measurement: int = 60):
    """Cheap, distinct synthetic cells for executor benchmarking."""
    from .campaign import CellSpec

    return [
        CellSpec.synthetic(
            "uniform_random",
            0.02,
            "PowerPunch-PG",
            warmup=20,
            measurement=measurement,
            seed=seed,
            drain=False,
        )
        for seed in range(1, count + 1)
    ]


def run_campaign_bench(
    count: int,
    workers: int,
    service_hosts: int,
    measurement: int = 60,
    verbose: bool = True,
) -> Dict[str, object]:
    """Benchmark single-host pool vs local service on the same cells.

    Both executors get the same total parallelism (``workers`` pool
    slots vs ``service_hosts`` hosts of ``workers // service_hosts``
    capacity each, minimum 1) and run cache-less so every cell
    actually executes.  Returns the ``bench_campaign/v1`` document.
    """
    import json as _json

    from .campaign import execute_cells
    from .campaign.cache import encode_payload
    from .campaign.service import run_hosted

    cells = campaign_throughput_cells(count, measurement=measurement)

    start = perf_counter()
    single_payloads, _single = execute_cells(cells, workers=workers)
    single_elapsed = perf_counter() - start

    per_host = max(1, workers // service_hosts)
    start = perf_counter()
    hosted_payloads, hosted_stats = run_hosted(
        cells,
        f"local:{service_hosts}",
        name="bench-campaign",
        workers=per_host,
    )
    hosted_elapsed = perf_counter() - start

    identical = [
        _json.dumps(encode_payload(p), sort_keys=True) for p in single_payloads
    ] == [
        _json.dumps(encode_payload(p), sort_keys=True) for p in hosted_payloads
    ]
    if not identical:
        raise AssertionError(
            "service payloads diverged from the single-host run"
        )
    doc = {
        "schema": "bench_campaign/v1",
        "cells": count,
        "measurement": measurement,
        "results": [
            {
                "executor": "single-host-pool",
                "workers": workers,
                "elapsed": round(single_elapsed, 3),
                "cells_per_sec": round(count / single_elapsed, 2),
            },
            {
                "executor": f"service-{service_hosts}host",
                "hosts": service_hosts,
                "capacity_per_host": per_host,
                "elapsed": round(hosted_elapsed, 3),
                "cells_per_sec": round(count / hosted_elapsed, 2),
                "service": getattr(hosted_stats, "service", {}),
            },
        ],
        "identical_payloads": identical,
    }
    if verbose:
        for row in doc["results"]:
            print(
                f"{row['executor']:>20}: {row['cells_per_sec']:>8} cells/s "
                f"({row['elapsed']}s for {count} cells)",
                file=sys.stderr,
            )
    return doc


def check_against_baseline(
    current: Dict[str, object], baseline: Dict[str, object], tolerance: float
) -> List[str]:
    """Cycles/sec regressions beyond ``tolerance``, as messages.

    Every ``*_cps`` column present in both a current cell and its
    baseline cell is gated — a regression in any kernel fails the
    trend job.  Only configs (and columns) present in both documents
    are compared, so shrinking or extending the matrix, or adding a
    kernel, never fails the job by itself.
    """

    def key(cell):
        return (
            cell["scheme"],
            cell.get("topology", "mesh"),
            cell["width"],
            cell["height"],
            cell["injection_rate"],
        )

    baseline_cells = {key(cell): cell for cell in baseline.get("results", [])}
    failures = []
    for cell in current["results"]:
        ref = baseline_cells.get(key(cell))
        if ref is None:
            continue
        for column in sorted(cell):
            if not column.endswith("_cps") or column not in ref:
                continue
            floor = ref[column] * (1.0 - tolerance)
            if cell[column] < floor:
                failures.append(
                    f"{cell['scheme']} {cell['width']}x{cell['height']}"
                    f"@{cell['injection_rate']}: {column} {cell[column]} "
                    f"< {floor:.1f} (baseline {ref[column]} "
                    f"- {tolerance:.0%})"
                )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench", description="kernel cycles/sec benchmark"
    )
    parser.add_argument("--out", default="BENCH_kernel.json", help="output JSON path")
    parser.add_argument(
        "--cycles", type=int, default=3000, help="traffic cycles per config"
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--schemes",
        nargs="+",
        default=["NoPG", "ConvOptPG", "PowerPunchSignal", "PowerPunchPG"],
        choices=sorted(SCHEMES),
    )
    parser.add_argument(
        "--meshes",
        nargs="+",
        default=["8x8", "16x16", "torus:8x8"],
        help="fabrics as WxH (mesh), topology:WxH, or ring:N "
        "(non-mesh fabrics bench portable schemes only)",
    )
    parser.add_argument(
        "--rates", nargs="+", type=float, default=[0.02, 0.05],
        help="injection rates (flits/node/cycle)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool fan-out over bench cells (adds timing noise; "
        "keep 1 for trend comparisons)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-cell wall-clock budget in seconds (kills wedged cells)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="total attempts per bench cell before it fails the run",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small matrix for CI trend runs (8x8, rate 0.02, 1 repetition)",
    )
    parser.add_argument(
        "--campaign",
        action="store_true",
        help="benchmark campaign executors (single-host pool vs local "
        "service cluster) instead of cycle kernels; writes "
        "BENCH_campaign.json unless --out is given",
    )
    parser.add_argument(
        "--campaign-cells",
        type=int,
        default=24,
        help="cells in the campaign-throughput batch",
    )
    parser.add_argument(
        "--campaign-workers",
        type=int,
        default=2,
        help="total parallelism for both campaign executors",
    )
    parser.add_argument(
        "--campaign-hosts",
        type=int,
        default=2,
        help="worker hosts in the local service cluster",
    )
    parser.add_argument(
        "--check", default=None, help="baseline BENCH_kernel.json to compare against"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional active_cps regression vs the baseline",
    )
    args = parser.parse_args(argv)

    if args.campaign:
        out = args.out
        if out == parser.get_default("out"):
            out = "BENCH_campaign.json"
        doc = run_campaign_bench(
            args.campaign_cells, args.campaign_workers, args.campaign_hosts
        )
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {out}", file=sys.stderr)
        return 0

    if args.quick:
        args.meshes = ["8x8", "torus:8x8"]
        args.rates = [0.02]
        args.repeat = 1
        args.cycles = min(args.cycles, 2000)
    fabrics = [parse_fabric(spec) for spec in args.meshes]

    doc = run_matrix(
        args.schemes,
        fabrics,
        args.rates,
        args.cycles,
        args.repeat,
        workers=args.workers,
        timeout=args.timeout,
        max_retries=args.max_retries,
    )
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out} ({len(doc['results'])} configs)", file=sys.stderr)

    if args.check is not None:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_against_baseline(doc, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            f"no regression vs {args.check} (tolerance {args.tolerance:.0%})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
