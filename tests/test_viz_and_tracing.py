"""Tests for the visualization helpers and the packet tracer."""

import pytest

from repro.core import ConvOptPG, NoPG
from repro.noc import MeshTopology, Network, NoCConfig, VirtualNetwork, control_packet
from repro.noc.tracing import PacketTracer
from repro.viz import (
    gated_fraction_map,
    latency_histogram,
    mesh_heatmap,
    scheme_comparison_bars,
    shade,
    wake_events_map,
)


class TestShade:
    def test_extremes(self):
        assert shade(0.0) == " "
        assert shade(1.0) == "@"

    def test_clamping(self):
        assert shade(-5.0) == " "
        assert shade(42.0) == "@"

    def test_monotone(self):
        ramp = [shade(i / 10) for i in range(11)]
        assert ramp == sorted(ramp, key=" .:-=+*#%@".index)


class TestHeatmaps:
    def test_mesh_heatmap_dimensions(self):
        topo = MeshTopology(4, 4)
        out = mesh_heatmap(topo, [0.1] * 16, title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 2 * 4  # title + (shade+number) per row

    def test_mesh_heatmap_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            mesh_heatmap(MeshTopology(4, 4), [0.0] * 15)

    def test_gated_fraction_map_nopg_all_zero(self):
        net = Network(NoCConfig(width=4, height=4), NoPG())
        for _ in range(20):
            net.step()
        out = gated_fraction_map(net)
        assert "0.00" in out

    def test_gated_fraction_map_pg(self):
        net = Network(NoCConfig(width=4, height=4), ConvOptPG())
        for _ in range(60):
            net.step()
        out = gated_fraction_map(net)
        assert "0.00" not in out.splitlines()[1]  # routers did gate off

    def test_wake_events_map(self):
        net = Network(NoCConfig(width=4, height=4), ConvOptPG())
        for _ in range(30):
            net.step()
        net.inject(control_packet(0, 15, VirtualNetwork.REQUEST, net.cycle))
        net.run_until_drained(2000)
        out = wake_events_map(net)
        assert any(ch.isdigit() and ch != "0" for ch in out)


class TestHistogramAndBars:
    def test_histogram_counts_sum(self):
        out = latency_histogram([10, 12, 30, 31, 31, 50], bins=4)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in out.splitlines())
        assert total == 6

    def test_histogram_empty(self):
        assert latency_histogram([]) == "(no samples)"

    def test_bars_include_all_schemes(self):
        out = scheme_comparison_bars({"A": 1.0, "B": 2.0}, title="x")
        assert "A" in out and "B" in out and out.startswith("x")


class TestPacketTracer:
    def test_traces_lifecycle(self):
        net = Network(NoCConfig(width=4, height=4))
        tracer = PacketTracer(net)
        p = control_packet(0, 3, VirtualNetwork.REQUEST, 0)
        net.inject(p)
        net.run_until_drained(500)
        kinds = [e.kind for e in tracer.for_packet(p.packet_id)]
        assert kinds[0] == "created"
        assert kinds[-1] == "delivered"
        assert kinds.count("sw-grant") == 4  # routers 0,1,2,3

    def test_traces_blocking(self):
        scheme = ConvOptPG(wakeup_latency=8)
        net = Network(NoCConfig(width=4, height=4), scheme)
        tracer = PacketTracer(net)
        for _ in range(25):
            net.step()
        p = control_packet(0, 3, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(2000)
        assert tracer.blocked_routers_seen()
        assert any(e.kind == "blocked" for e in tracer.events)

    def test_filter(self):
        net = Network(NoCConfig(width=4, height=4))
        a = control_packet(0, 3, VirtualNetwork.REQUEST, 0)
        tracer = PacketTracer(net, match=lambda p: p.packet_id == a.packet_id)
        b = control_packet(4, 7, VirtualNetwork.REQUEST, 0)
        net.inject(a)
        net.inject(b)
        net.run_until_drained(500)
        assert tracer.for_packet(a.packet_id)
        assert not tracer.for_packet(b.packet_id)

    def test_render(self):
        net = Network(NoCConfig(width=4, height=4))
        tracer = PacketTracer(net)
        p = control_packet(0, 1, VirtualNetwork.REQUEST, 0)
        net.inject(p)
        net.run_until_drained(500)
        text = tracer.render(p.packet_id)
        assert "created" in text and "delivered" in text


class TestLinkLoadMap:
    def test_counts_forwarded_flits(self):
        from repro.viz import link_load_map

        net = Network(NoCConfig(width=4, height=4))
        net.inject(control_packet(0, 3, VirtualNetwork.REQUEST, 0))
        net.run_until_drained(500)
        out = link_load_map(net)
        assert "Router forwarding load" in out
        # Row 0 routers carried the packet; row 3 carried nothing.
        lines = out.splitlines()
        assert "0.00" in lines[-1]
