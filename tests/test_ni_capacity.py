"""Tests for NI queue capacity and misc interface edges."""

import pytest

from repro.noc import Network, NoCConfig, VirtualNetwork, control_packet


class TestQueueCapacity:
    def test_unbounded_by_default(self):
        net = Network(NoCConfig(width=4, height=4))
        for _ in range(100):
            net.inject(control_packet(0, 5, VirtualNetwork.REQUEST, net.cycle))
        assert net.interfaces[0].pending_packets() == 100

    def test_bounded_queue_raises_on_overflow(self):
        net = Network(NoCConfig(width=4, height=4, ni_queue_capacity=4))
        for _ in range(4):
            net.inject(control_packet(0, 5, VirtualNetwork.REQUEST, net.cycle))
        with pytest.raises(RuntimeError, match="overflow"):
            net.inject(control_packet(0, 5, VirtualNetwork.REQUEST, net.cycle))

    def test_capacity_is_per_vnet(self):
        net = Network(NoCConfig(width=4, height=4, ni_queue_capacity=2))
        for vn in VirtualNetwork:
            for _ in range(2):
                net.inject(control_packet(0, 5, vn, net.cycle))
        assert net.interfaces[0].pending_packets() == 6


class TestInFlightAccounting:
    def test_in_flight_packets_tracks_progress(self):
        net = Network(NoCConfig(width=4, height=4))
        assert net.in_flight_packets() == 0
        net.inject(control_packet(0, 15, VirtualNetwork.REQUEST, net.cycle))
        assert net.in_flight_packets() > 0
        net.run_until_drained(500)
        assert net.in_flight_packets() == 0

    def test_run_until_drained_raises_on_deadline(self):
        net = Network(NoCConfig(width=4, height=4))
        net.inject(control_packet(0, 15, VirtualNetwork.REQUEST, net.cycle))
        with pytest.raises(RuntimeError, match="drain"):
            net.run_until_drained(max_cycles=2)
