"""Tests for the router energy model."""

import pytest

from repro.core import ConvOptPG
from repro.noc import Network, NoCConfig, VirtualNetwork, control_packet
from repro.power import DEFAULT_CONSTANTS, EnergyModel, PowerConstants


class TestConstants:
    def test_static_energy_per_cycle(self):
        c = PowerConstants(frequency=2e9, router_static_power=27.3e-3)
        assert c.router_static_energy_per_cycle == pytest.approx(13.65e-12)

    def test_break_even_definition(self):
        # One PG event costs exactly BET cycles of static energy.
        c = DEFAULT_CONSTANTS
        assert c.power_gate_event_energy == pytest.approx(
            c.break_even_cycles * c.router_static_energy_per_cycle
        )

    def test_chip_static_power_anchor(self):
        # 64 routers at ~27.3 mW each ~ 1.75 W (Fig. 12 No-PG curves).
        total = 64 * DEFAULT_CONSTANTS.router_static_power
        assert 1.6 < total < 1.9


class TestNoPGAccounting:
    def test_static_scales_with_cycles_and_routers(self):
        net = Network(NoCConfig(width=4, height=4))
        for _ in range(100):
            net.step()
        e = EnergyModel().account(net)
        expected = 100 * 16 * DEFAULT_CONSTANTS.router_static_energy_per_cycle
        assert e.static == pytest.approx(expected)
        assert e.overhead == 0.0

    def test_dynamic_counts_traversals(self):
        net = Network(NoCConfig(width=4, height=4))
        p = control_packet(0, 3, VirtualNetwork.REQUEST, 0)
        net.inject(p)
        net.run_until_drained(500)
        e = EnergyModel().account(net)
        c = DEFAULT_CONSTANTS
        # 4 router traversals (0,1,2,3) and 3 link traversals.
        assert e.dynamic == pytest.approx(
            4 * c.flit_router_energy + 3 * c.flit_link_energy
        )


class TestPGAccounting:
    def test_gating_reduces_static(self):
        net_on = Network(NoCConfig(width=4, height=4))
        net_pg = Network(NoCConfig(width=4, height=4), ConvOptPG())
        for _ in range(300):
            net_on.step()
            net_pg.step()
        e_on = EnergyModel().account(net_on)
        e_pg = EnergyModel().account(net_pg)
        assert e_pg.static < 0.2 * e_on.static

    def test_overhead_charged_per_wake(self):
        scheme = ConvOptPG(wakeup_latency=4)
        net = Network(NoCConfig(width=4, height=4), scheme)
        for _ in range(50):
            net.step()
        p = control_packet(0, 3, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(500)
        e = EnergyModel().account(net)
        wakes = scheme.total_wake_events()
        assert wakes > 0
        c = DEFAULT_CONSTANTS
        assert e.overhead >= wakes * c.power_gate_event_energy

    def test_snapshot_window(self):
        net = Network(NoCConfig(width=4, height=4))
        model = EnergyModel()
        for _ in range(100):
            net.step()
        snap = model.snapshot(net)
        for _ in range(50):
            net.step()
        window = model.account(net, since=snap)
        assert window.cycles == 50
        assert window.static == pytest.approx(
            50 * 16 * DEFAULT_CONSTANTS.router_static_energy_per_cycle
        )


class TestBreakdownHelpers:
    def test_net_static_and_total(self):
        net = Network(NoCConfig(width=4, height=4), ConvOptPG())
        for _ in range(200):
            net.step()
        e = EnergyModel().account(net)
        assert e.net_static == pytest.approx(e.static + e.overhead)
        assert e.total == pytest.approx(e.dynamic + e.static + e.overhead)

    def test_normalization(self):
        net = Network(NoCConfig(width=4, height=4))
        for _ in range(100):
            net.step()
        e = EnergyModel().account(net)
        norm = e.normalized_to(e)
        assert norm["total"] == pytest.approx(1.0)

    def test_static_power_watts(self):
        net = Network(NoCConfig(width=4, height=4))
        for _ in range(100):
            net.step()
        e = EnergyModel().account(net)
        # 16 always-on routers: static power = 16 * 27.3 mW.
        assert e.static_power_watts() == pytest.approx(
            16 * DEFAULT_CONSTANTS.router_static_power, rel=1e-6
        )
