"""Regression tests for the kernel bugfixes that rode along with the
active-set kernel rework.

* ``Network.in_flight_packets`` counts flits queued for ejection, so it
  agrees with ``is_drained`` about what "still in flight" means.
* NI work detection goes through ``NetworkInterface.has_work`` instead
  of a hardcoded three-vnet truthiness chain in ``Network.step``.
* ``NetworkStats.record_delivery`` raises a typed ``SimulationError``
  (with packet context) instead of a bare ``assert`` that vanishes
  under ``python -O``.
* ``Network.deliver_out_of_band`` goes through the public
  ``NetworkInterface.notify_delivery`` instead of reaching into
  ``_eject_listeners``; NoRD's ring re-entry goes through the public
  ``reinject``.
"""

import pytest

from repro.noc import Network, NoCConfig, VirtualNetwork, control_packet
from repro.noc.errors import SimulationError
from repro.noc.packet import NUM_VNETS, Packet
from repro.noc.stats import NetworkStats


class TestInFlightPackets:
    def test_counts_flits_awaiting_ejection(self):
        net = Network(NoCConfig())
        net.inject(control_packet(0, 1, VirtualNetwork.REQUEST, 0))
        saw_ejection_phase = False
        for _ in range(200):
            if net.is_drained():
                break
            if any(net._eject_events.values()):
                saw_ejection_phase = True
                # The seed bug: with the flit out of every buffer and
                # link but not yet ejected, in_flight_packets() said 0
                # while is_drained() said False.
                assert net.in_flight_packets() > 0
            net.step()
        assert saw_ejection_phase
        assert net.is_drained()

    def test_agrees_with_is_drained_every_cycle(self):
        net = Network(NoCConfig())
        for dst in (5, 9, 20):
            net.inject(control_packet(0, dst, VirtualNetwork.RESPONSE, 0))
        for _ in range(300):
            if net.is_drained():
                break
            # Same universe: a zero census may only coincide with a
            # not-yet-drained network when the residual work is credits
            # or policy bookkeeping — never packet material (NI queues,
            # buffers, link flits, pending ejections).
            if net.in_flight_packets() == 0:
                assert not any(net._flit_events.values())
                assert not any(net._eject_events.values())
                assert not any(ni.pending_packets() for ni in net.interfaces)
                assert not any(r.buffered_flits() for r in net.routers)
            net.step()
        assert net.is_drained()
        assert net.in_flight_packets() == 0


class TestHasWork:
    def test_every_vnet_counts(self):
        net = Network(NoCConfig())
        ni = net.interfaces[0]
        assert not ni.has_work()
        for vn in range(NUM_VNETS):
            packet = Packet(0, 3, VirtualNetwork(vn), 1, net.cycle)
            ni.enqueue(packet, net.cycle)
            assert ni.has_work()
            net.run_until_drained(500)
            assert not ni.has_work()

    def test_not_bound_to_three_vnets(self):
        # The predicate must follow the queue list, not a literal count.
        net = Network(NoCConfig())
        ni = net.interfaces[0]
        ni.queues.append([object()])
        try:
            assert ni.has_work()
        finally:
            ni.queues.pop()

    def test_streams_count_as_work(self):
        net = Network(NoCConfig())
        net.inject(Packet(0, 5, VirtualNetwork.RESPONSE, 5, 0))
        ni = net.interfaces[0]
        saw_stream = False
        for _ in range(50):
            if ni.streams:
                saw_stream = True
                assert not any(ni.queues)
                assert ni.has_work()
            net.step()
        assert saw_stream


class TestRecordDeliveryTypedError:
    def test_raises_simulation_error_with_context(self):
        stats = NetworkStats()
        packet = Packet(3, 9, VirtualNetwork.REQUEST, 1, 0)
        packet.delivered_at = 50  # injected_at never set
        with pytest.raises(SimulationError) as excinfo:
            stats.record_delivery(packet, 2)
        assert not isinstance(excinfo.value, AssertionError)
        message = str(excinfo.value)
        assert f"packet={packet.packet_id}" in message
        assert "3->9" in message

    def test_normal_delivery_still_recorded(self):
        stats = NetworkStats()
        packet = Packet(0, 1, VirtualNetwork.REQUEST, 1, 0)
        packet.injected_at = 4
        packet.delivered_at = 10
        stats.record_delivery(packet, 1)
        assert stats.delivered == 1
        assert stats.total_network_latency == 6


class TestPublicNIDeliveryPaths:
    def test_notify_delivery_fires_listeners(self):
        net = Network(NoCConfig())
        seen = []
        net.interfaces[5].add_eject_listener(lambda p, c: seen.append((p, c)))
        packet = control_packet(1, 5, VirtualNetwork.REQUEST, 0)
        net.interfaces[5].notify_delivery(packet, 42)
        assert seen == [(packet, 42)]

    def test_deliver_out_of_band_routes_through_notify_delivery(self):
        net = Network(NoCConfig())
        calls = []
        ni = net.interfaces[7]
        original = ni.notify_delivery
        ni.notify_delivery = lambda p, c: (calls.append((p, c)), original(p, c))
        packet = control_packet(2, 7, VirtualNetwork.REQUEST, 0)
        packet.injected_at = 0
        net.deliver_out_of_band(packet, 30)
        assert calls == [(packet, 30)]
        assert net.stats.delivered == 1

    def test_reinject_requeues_and_reactivates(self):
        net = Network(NoCConfig())
        ni = net.interfaces[4]
        packet = Packet(4, 12, VirtualNetwork.REQUEST, 1, 0)
        packet.created_at = 0
        ni.reinject(packet)
        assert ni.has_work()
        assert 4 in net.active_nis
        # created_at is preserved: the NI pipeline delay is not re-paid
        # from scratch for a re-entering packet.
        assert packet.created_at == 0
        net.run_until_drained(500)
        assert packet.delivered_at is not None
