"""Property-based tests for the fault-injection subsystem.

The central liveness claim: under any schedule of *liveness* faults
(lost/duplicated/delayed punches, delayed or bounded-failing wakeups,
transient router stalls) the network still delivers every packet —
the blocking-wakeup fallback degrades latency, never correctness —
and the strict invariant checker stays quiet throughout.

Safety faults (``credit_drop``, ``flit_corrupt``) are deliberately
excluded here; they exist to be *detected* and are covered by
``tests/test_invariants.py``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro.core import PowerPunchPG
from repro.noc import (
    FAULT_KINDS,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FaultSpecError,
    InvariantChecker,
    Network,
    NoCConfig,
    VirtualNetwork,
    control_packet,
    data_packet,
)
from repro.traffic import SyntheticTraffic, measure

CONFIG = NoCConfig(width=4, height=4)

#: Faults that may only slow the network down, never wedge it.  A
#: ``wakeup_fail`` must carry a ``count`` budget: the blocking fallback
#: retries every blocked cycle, so any finite budget is eventually
#: exhausted and the retry lands.
_PUNCH_KINDS = ("punch_drop", "punch_dup", "punch_delay")


@st.composite
def liveness_schedules(draw):
    specs = []
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(
            st.sampled_from(
                _PUNCH_KINDS + ("wakeup_delay", "wakeup_fail", "router_stall")
            )
        )
        router = draw(st.one_of(st.none(), st.integers(0, 15)))
        if kind == "router_stall":
            start = draw(st.integers(0, 200))
            specs.append(
                FaultSpec(
                    kind=kind,
                    router=router,
                    start=start,
                    end=start + draw(st.integers(0, 60)),
                )
            )
        elif kind == "wakeup_fail":
            specs.append(
                FaultSpec(
                    kind=kind,
                    router=router,
                    rate=draw(st.floats(0.1, 1.0)),
                    count=draw(st.integers(1, 15)),
                )
            )
        else:
            specs.append(
                FaultSpec(
                    kind=kind,
                    router=router,
                    rate=draw(st.floats(0.1, 1.0)),
                    delay=draw(st.integers(1, 5)),
                )
            )
    return FaultSchedule(specs=specs, seed=draw(st.integers(0, 2**16)))


class TestLivenessProperties:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(schedule=liveness_schedules())
    def test_delivery_and_conservation_under_liveness_faults(self, schedule):
        scheme = PowerPunchPG(wakeup_latency=8)
        net = Network(CONFIG, scheme)
        checker = InvariantChecker(strict=True, max_network_age=20_000)
        net.install_invariants(checker)
        net.install_faults(FaultInjector(schedule))
        # Installing faults arms the paper-baseline blocking fallback.
        assert scheme.blocking_fallback
        for _ in range(30):
            net.step()
        packets = [
            control_packet(0, 15, VirtualNetwork.REQUEST, net.cycle),
            data_packet(5, 10, VirtualNetwork.RESPONSE, net.cycle),
            control_packet(12, 3, VirtualNetwork.FORWARD, net.cycle),
            control_packet(7, 7, VirtualNetwork.REQUEST, net.cycle),
            data_packet(2, 13, VirtualNetwork.RESPONSE, net.cycle),
        ]
        for packet in packets:
            net.inject(packet)
        net.run_until_drained(50_000)
        assert all(p.delivered_at is not None for p in packets)
        # Strict checker did not raise, and the books balance.
        assert checker.flits_sent == checker.flits_ejected
        assert not checker.live

    @settings(max_examples=10, deadline=None)
    @given(schedule=liveness_schedules())
    def test_fault_replay_is_deterministic(self, schedule):
        """Same (schedule, workload) pair => identical run, bit for bit."""

        def run():
            net = Network(CONFIG, PowerPunchPG())
            injector = FaultInjector(schedule)
            net.install_faults(injector)
            traffic = SyntheticTraffic(net, "uniform_random", 0.02, seed=9)
            measure(net, traffic, warmup=100, measurement=300)
            s = net.stats
            return (s.delivered, s.total_network_latency, dict(injector.counts))

        assert run() == run()


class TestBlockingFallback:
    def _cold_start_latency(self, schedule):
        scheme = PowerPunchPG(wakeup_latency=8)
        net = Network(CONFIG, scheme)
        if schedule is not None:
            net.install_faults(FaultInjector(schedule))
        for _ in range(30):
            net.step()
        packet = control_packet(0, 3, VirtualNetwork.REQUEST, net.cycle)
        net.inject(packet)
        net.run_until_drained(5000)
        return packet.total_latency

    def test_total_punch_loss_degrades_latency_not_liveness(self):
        """With every punch dropped, PowerPunch silently becomes the
        baseline blocking scheme: slower, but every packet arrives."""
        healthy = self._cold_start_latency(None)
        degraded = self._cold_start_latency(
            FaultSchedule([FaultSpec(kind="punch_drop")])
        )
        assert degraded > healthy

    def test_duplicate_punches_are_harmless(self):
        healthy = self._cold_start_latency(None)
        duplicated = self._cold_start_latency(
            FaultSchedule([FaultSpec(kind="punch_dup")])
        )
        # Extra wakeups cannot slow a packet down.
        assert duplicated <= healthy


class TestSpecGrammar:
    def test_parse_full_grammar(self):
        schedule = FaultSchedule.parse(
            "punch_drop,rate=0.5,start=100;"
            "router_stall,router=5,start=200,end=400;seed=7"
        )
        assert schedule.seed == 7
        assert [s.kind for s in schedule.specs] == ["punch_drop", "router_stall"]
        assert schedule.specs[0].rate == 0.5
        assert schedule.specs[0].start == 100
        assert schedule.specs[1].router == 5
        assert schedule.specs[1].end == 400
        assert schedule.kinds() == ["punch_drop", "router_stall"]

    def test_empty_clauses_ignored(self):
        assert FaultSchedule.parse(";;").specs == []

    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate",
            "punch_drop,rate=2.0",
            "punch_drop,bogus=1",
            "punch_drop,rate=x",
            "punch_drop,delay=0",
            "punch_drop,rate",
            "router_stall,start=5,end=2",
            "seed=x",
            "seed=3,rate=1",
        ],
    )
    def test_parse_rejects_bad_specs(self, bad):
        with pytest.raises(FaultSpecError):
            FaultSchedule.parse(bad)

    def test_with_seed_replaces_only_the_seed(self):
        schedule = FaultSchedule.parse("punch_drop;seed=1")
        reseeded = schedule.with_seed(42)
        assert reseeded.seed == 42
        assert reseeded.specs == schedule.specs

    @settings(max_examples=25, deadline=None)
    @given(
        kind=st.sampled_from(FAULT_KINDS),
        rate=st.floats(0.0, 1.0),
        start=st.integers(0, 1000),
        extra=st.integers(0, 1000),
        delay=st.integers(1, 50),
    )
    def test_spec_window_semantics(self, kind, rate, start, extra, delay):
        spec = FaultSpec(kind=kind, rate=rate, start=start, end=start + extra, delay=delay)
        assert spec.active_at(start)
        assert spec.active_at(start + extra)
        assert not spec.active_at(start - 1)
        assert not spec.active_at(start + extra + 1)
        assert spec.matches(0) and spec.matches(15)


class TestInjectorAccounting:
    def test_count_budget_limits_firings(self):
        injector = FaultInjector(
            FaultSchedule([FaultSpec(kind="wakeup_fail", count=3)])
        )
        outcomes = [injector.wakeup_disposition(0, c)[0] for c in range(10)]
        assert outcomes.count("fail") == 3
        assert outcomes[3:] == ["ok"] * 7
        assert injector.counts["wakeup_fail"] == 3
        assert injector.total_fired() == 3
        assert injector.summary() == "wakeup_fail=3"

    def test_zero_rate_never_fires(self):
        injector = FaultInjector(
            FaultSchedule([FaultSpec(kind="punch_drop", rate=0.0)])
        )
        assert all(
            injector.punch_disposition(r, c) == ("ok", 0)
            for r in range(16)
            for c in range(50)
        )
        assert injector.summary() == "no faults fired"

    def test_stall_is_a_deterministic_window(self):
        injector = FaultInjector(
            FaultSchedule(
                [FaultSpec(kind="router_stall", router=5, start=10, end=20)]
            )
        )
        assert not injector.is_stalled(5, 9)
        assert all(injector.is_stalled(5, c) for c in range(10, 21))
        assert not injector.is_stalled(5, 21)
        assert not injector.is_stalled(4, 15)  # other routers unaffected
