"""Tests for chip-level wiring: slack-2 notices, MC placement, dispatch."""


from repro.core import PowerPunchPG
from repro.noc import NoCConfig
from repro.system import Chip, StreamProfile, get_profile
from repro.system.chip import L2_ACCESS_LATENCY
from repro.system.messages import CoherenceMessage, MessageType


def make_chip(scheme=None, width=4, warm=True):
    return Chip(
        NoCConfig(width=width, height=width),
        scheme or PowerPunchPG(),
        StreamProfile(),
        instructions_per_core=1,
        seed=1,
        warm_caches=warm,
    )


class TestSlack2Wiring:
    def test_request_arrival_fires_early_notice(self):
        """A GetS delivered to a home node must fire the slack-2 notice
        exactly when the L2 access starts (paper Sec. 4.2)."""
        scheme = PowerPunchPG()
        chip = make_chip(scheme, warm=False)
        for core in chip.cores:
            core.done_at = 0
        notices = []
        original = scheme.early_local_notice
        scheme.early_local_notice = lambda node, cycle: (
            notices.append((node, cycle)),
            original(node, cycle),
        )
        block = 7  # home is node 7
        chip.l1s[2].access(block, False, chip.network.cycle)
        for _ in range(200):
            chip.step()
            if notices:
                break
        assert notices
        assert notices[0][0] == 7

    def test_home_processing_latency(self):
        """Requests wait L2_ACCESS_LATENCY before the directory acts."""
        chip = make_chip(warm=False)
        for core in chip.cores:
            core.done_at = 0
        block = 5
        msg = CoherenceMessage(MessageType.GETS, block, sender=1, requester=1)
        chip._schedule(5, msg, arrival=100, cycle=100)
        ready, _seq, node, queued = chip._work[0]
        assert ready == 100 + L2_ACCESS_LATENCY
        assert node == 5

    def test_local_messages_bypass_noc(self):
        """An L1 whose home bank is co-located never touches the mesh."""
        chip = make_chip(warm=False)
        for core in chip.cores:
            core.done_at = 0
        completions = []
        chip.l1s[5].on_complete = lambda b, c: completions.append((b, c))
        block = 5 + 16 * 3  # home_of(block) == 5 on a 4x4 chip
        assert chip.home_of(block) == 5
        chip.l1s[5].access(block, False, chip.network.cycle)
        for _ in range(600):
            chip.step()
            if completions:
                break
        assert completions
        # The GetS and MemRead/MemData legs may use the NoC (MC is not
        # local), but no GetS packet went 5 -> 5 through the mesh.
        assert chip.network.stats.delivered >= 0

    def test_mc_nodes_at_corners_8x8(self):
        chip = Chip(
            NoCConfig(),
            PowerPunchPG(),
            get_profile("swaptions"),
            instructions_per_core=1,
            seed=1,
        )
        assert chip.mc_nodes == [0, 7, 56, 63]


class TestDispatch:
    def test_mc_types_routed_to_mc(self):
        chip = make_chip(warm=False)
        msg = CoherenceMessage(MessageType.MEM_READ, 4, sender=1, requester=1)
        chip._schedule(0, msg, arrival=10, cycle=10)
        chip.network.cycle = 10
        chip._process_work(10)
        assert chip.mcs[0].reads == 1

    def test_result_before_completion_uses_current_cycle(self):
        chip = make_chip(warm=False)
        result = chip.result()
        assert result.execution_time == chip.network.cycle
        assert result.l1_miss_rate == 0.0
