"""Tests for the Monte-Carlo reliability campaign stack.

Covers the seeded fault-schedule sampler, the Wilson confidence
interval, the ``reliability`` cell kind (payload shape + bit-identical
determinism), the aggregation/report layer, the fault context carried
into quarantine post-mortems, and the new robustness CLI flags.
"""

import json

import pytest

from repro.campaign import CellSpec, FailureReport, run_cell
from repro.campaign.cli import add_robustness_args, apply_robustness_args
from repro.campaign.spec import CELL_KINDS
from repro.experiments.reliability import (
    aggregate,
    reliability_campaign,
    report,
    wilson_interval,
)
from repro.noc import (
    SAMPLABLE_FAULT_KINDS,
    FaultSchedule,
    NoCConfig,
    clear_ambient,
    sample_fault_schedule,
)
from repro.noc.faults import ambient_config


class TestWilsonInterval:
    def test_textbook_value(self):
        lo, hi = wilson_interval(45, 100)
        assert lo == pytest.approx(0.3561, abs=1e-4)
        assert hi == pytest.approx(0.5476, abs=1e-4)

    def test_zero_successes_touches_zero(self):
        lo, hi = wilson_interval(0, 6)
        assert lo == 0.0
        assert hi == pytest.approx(0.3903, abs=1e-4)

    def test_all_successes_touches_one(self):
        lo, hi = wilson_interval(6, 6)
        assert lo == pytest.approx(0.6097, abs=1e-4)
        assert hi == pytest.approx(1.0)

    def test_no_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            wilson_interval(7, 6)
        with pytest.raises(ValueError):
            wilson_interval(-1, 6)

    def test_interval_is_inside_unit_and_brackets_p(self):
        for successes, trials in [(1, 50), (25, 50), (49, 50), (500, 1000)]:
            lo, hi = wilson_interval(successes, trials)
            p = successes / trials
            assert 0.0 <= lo < p < hi <= 1.0


class TestFaultSampler:
    def test_same_seed_is_bit_identical(self):
        a = sample_fault_schedule(42, 64, max_faults=3, horizon=1000)
        b = sample_fault_schedule(42, 64, max_faults=3, horizon=1000)
        assert a.to_spec() == b.to_spec()

    def test_different_seeds_differ(self):
        specs = {
            sample_fault_schedule(seed, 64, max_faults=3, horizon=1000).to_spec()
            for seed in range(20)
        }
        assert len(specs) > 10

    def test_samples_only_samplable_kinds_within_bounds(self):
        for seed in range(30):
            schedule = sample_fault_schedule(seed, 16, max_faults=4, horizon=500)
            assert len(schedule.specs) <= 4
            for spec in schedule.specs:
                assert spec.kind in SAMPLABLE_FAULT_KINDS
                assert 0 <= spec.start <= 500
                if spec.router is not None:
                    assert 0 <= spec.router < 16

    def test_spec_string_round_trips(self):
        schedule = sample_fault_schedule(7, 16, max_faults=2, horizon=500)
        text = schedule.to_spec()
        assert FaultSchedule.parse(text).to_spec() == text


class TestReliabilityCell:
    def _spec(self, seed=3):
        config = NoCConfig(
            width=4,
            height=4,
            degradation="reroute",
            dead_router_threshold=200,
        )
        return CellSpec.reliability(
            seed,
            injection_rate=0.02,
            scheme="PowerPunch-PG",
            warmup=100,
            measurement=400,
            config=config,
            max_faults=2,
            horizon=300,
            watchdog=50_000,
        )

    def test_kind_is_registered(self):
        assert "reliability" in CELL_KINDS

    def test_spec_is_cacheable_and_labeled(self):
        spec = self._spec()
        assert spec.kind == "reliability"
        assert dict(spec.extras) == {
            "max_faults": 2,
            "horizon": 300,
            "watchdog": 50_000,
        }
        assert spec.cache_key("salt") == self._spec().cache_key("salt")
        json.loads(spec.canonical_json())  # canonical form is valid JSON

    def test_payload_shape_and_accounting(self):
        payload = run_cell(self._spec())
        for key in (
            "fault_spec",
            "outcome",
            "deadlocked",
            "injected",
            "delivered",
            "dropped",
            "refused",
            "delivered_all",
            "dead_routers",
            "wakeup_retries",
            "rerouted_packets",
            "detour_hops",
            "cycles",
        ):
            assert key in payload
        assert payload["outcome"] in ("drained", "deadlock", "degraded")
        assert payload["delivered"] <= payload["injected"]
        # The sampled schedule is replayable from its payload string.
        assert FaultSchedule.parse(payload["fault_spec"])

    def test_cell_is_bit_identical_across_runs(self):
        assert run_cell(self._spec()) == run_cell(self._spec())

    def test_scheme_dash_runs_without_power_gating(self):
        spec = CellSpec.reliability(
            5,
            scheme="-",
            injection_rate=0.02,
            warmup=100,
            measurement=300,
            config=NoCConfig(width=4, height=4, degradation="reroute"),
            horizon=200,
        )
        payload = run_cell(spec)
        assert payload["wakeup_retries"] == 0  # no PG => no wakeups


class TestAggregate:
    def _outcome(self, **overrides):
        base = {
            "outcome": "drained",
            "deadlocked": False,
            "injected": 100,
            "delivered": 100,
            "dropped": 0,
            "refused": 0,
            "delivered_all": True,
            "wakeup_retries": 0,
            "rerouted_packets": 0,
            "detour_hops": 0,
        }
        base.update(overrides)
        return base

    def test_counts_and_probabilities(self):
        outcomes = [
            self._outcome(),
            self._outcome(
                outcome="deadlock",
                deadlocked=True,
                delivered=60,
                dropped=40,
                delivered_all=False,
            ),
            self._outcome(
                delivered=98,
                dropped=2,
                rerouted_packets=5,
                detour_hops=11,
                delivered_all=False,
            ),
        ]
        estimate = aggregate(outcomes)
        assert estimate["trials"] == 3
        assert estimate["deadlocks"] == 1
        assert estimate["clean_trials"] == 1
        assert estimate["injected_packets"] == 300
        assert estimate["delivered_packets"] == 258
        assert estimate["delivery_probability"] == pytest.approx(258 / 300)
        assert estimate["deadlock_probability"] == pytest.approx(1 / 3)
        assert estimate["delivery_ci95"] == list(wilson_interval(258, 300))
        assert estimate["deadlock_ci95"] == list(wilson_interval(1, 3))
        assert estimate["rerouted_packets"] == 5
        assert estimate["detour_hops"] == 11

    def test_empty_campaign_is_honest(self):
        estimate = aggregate([])
        assert estimate["delivery_probability"] is None
        assert estimate["deadlock_probability"] is None
        assert estimate["delivery_ci95"] == [0.0, 1.0]

    def test_report_renders(self):
        text = report(aggregate([self._outcome()]))
        assert "delivery (per packet)" in text
        assert "95% CI" in text
        assert "100/100" in text

    def test_estimate_is_json_serializable(self):
        json.dumps(aggregate([self._outcome()]))


class TestReliabilityCampaign:
    def test_cells_are_seeded_sequentially_and_carry_config(self):
        campaign = reliability_campaign(
            4, width=4, height=4, base_seed=10, measurement=500
        )
        assert [c.seed for c in campaign.cells] == [10, 11, 12, 13]
        for cell in campaign.cells:
            config = cell.build_config()
            assert config.degradation == "reroute"
            assert config.dead_router_threshold == 200
            assert config.width == 4

    def test_rejects_empty_campaign(self):
        with pytest.raises(ValueError):
            reliability_campaign(0)

    def test_tiny_campaign_estimates_are_bit_identical(self):
        def run():
            campaign = reliability_campaign(
                3,
                width=4,
                height=4,
                warmup=100,
                measurement=300,
                horizon=200,
                base_seed=2,
            )
            return aggregate(campaign.run())

        assert run() == run()


class TestQuarantinePostMortem:
    def test_failure_report_carries_fault_context(self):
        error = RuntimeError("router wedged")
        error.fault_spec = "router_stall,router=5,start=10"
        error.dead_routers = (5,)
        spec = CellSpec.analysis("postmortem-probe")
        rep = FailureReport.from_failure(
            spec=spec,
            key="k1",
            exc=error,
            attempts=1,
            signatures=["RuntimeError:router wedged"],
            classification="deterministic",
        )
        assert rep.fault_spec == "router_stall,router=5,start=10"
        assert rep.dead_routers == [5]
        doc = rep.as_dict()
        assert doc["fault_spec"] == "router_stall,router=5,start=10"
        assert doc["dead_routers"] == [5]

    def test_plain_failures_leave_context_empty(self):
        rep = FailureReport.from_failure(
            spec=CellSpec.analysis("plain"),
            key="k2",
            exc=ValueError("nope"),
            attempts=1,
            signatures=["ValueError:nope"],
            classification="deterministic",
        )
        assert rep.fault_spec is None
        assert rep.dead_routers == []
        assert rep.as_dict()["fault_spec"] is None


class TestRobustnessArgs:
    def _parser(self):
        import argparse

        parser = argparse.ArgumentParser()
        return add_robustness_args(parser)

    def test_reroute_shorthand_sets_ambient(self):
        args = self._parser().parse_args(["--reroute"])
        try:
            assert apply_robustness_args(args)
            assert ambient_config()[3] == "reroute"
        finally:
            clear_ambient()

    def test_threshold_merges_without_clobbering(self):
        args = self._parser().parse_args(
            ["--degradation", "drop", "--dead-router-threshold", "77"]
        )
        try:
            assert apply_robustness_args(args)
            assert ambient_config()[3] == "drop"
            assert ambient_config()[4] == 77
        finally:
            clear_ambient()

    def test_no_flags_is_a_noop(self):
        args = self._parser().parse_args([])
        assert not apply_robustness_args(args)
        assert ambient_config() == (None, False, None, None, None, False)

    def test_bad_degradation_choice_exits(self):
        with pytest.raises(SystemExit):
            self._parser().parse_args(["--degradation", "explode"])
