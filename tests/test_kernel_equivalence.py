"""Cycle-exactness of the active-set kernel.

The active-set kernel (``NoCConfig.kernel == "active"``) must be an
observationally identical replica of the naive full-scan kernel
(``kernel == "naive"``, the seed implementation): same stats counter by
counter, same controller accounting, same per-packet timing — for every
scheme, under synthetic and full-system PARSEC traffic.

Two layers of evidence:

* golden equivalence — full :meth:`NetworkStats.as_dict` dumps compared
  between kernels for all four schemes (plus the NoRD-like baseline)
  across two seeds, and a PARSEC ``Chip`` run compared end to end;
* a hypothesis property — at every cycle the kernel's work-sets contain
  every component the naive scan would visit (routers with occupied
  VCs, NIs with work, non-OFF controllers).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import NoRDLike
from repro.core import ConvOptPG, NoPG, PowerPunchPG, PowerPunchSignal
from repro.noc import Network, NoCConfig
from repro.noc.invariants import InvariantChecker
from repro.powergate.controller import PGState
from repro.system import Chip, get_profile
from repro.traffic import SyntheticTraffic, measure

SCHEMES = {
    "NoPG": NoPG,
    "ConvOptPG": ConvOptPG,
    "PowerPunchSignal": PowerPunchSignal,
    "PowerPunchPG": PowerPunchPG,
    "NoRDLike": NoRDLike,
}


def _run_synthetic(scheme_name, kernel, seed, rate=0.02):
    net = Network(NoCConfig(kernel=kernel), SCHEMES[scheme_name]())
    traffic = SyntheticTraffic(net, "uniform_random", rate, seed=seed)
    measure(net, traffic, warmup=200, measurement=800)
    dump = dict(net.stats.as_dict())
    policy = net.policy
    if hasattr(policy, "controllers") and policy.controllers:
        dump["total_off_cycles"] = policy.total_off_cycles()
        dump["total_wake_events"] = policy.total_wake_events()
        dump["currently_off"] = policy.currently_off()
        dump["sleep_events"] = sum(c.sleep_events for c in policy.controllers)
        dump["cancelled_sleeps"] = sum(
            c.cancelled_sleeps for c in policy.controllers
        )
        dump["active_cycles"] = sum(c.active_cycles for c in policy.controllers)
        dump["waking_cycles"] = sum(c.waking_cycles for c in policy.controllers)
    return dump


class TestKernelEquivalence:
    @pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
    @pytest.mark.parametrize("seed", [7, 23])
    def test_synthetic_uniform_random(self, scheme_name, seed):
        active = _run_synthetic(scheme_name, "active", seed)
        naive = _run_synthetic(scheme_name, "naive", seed)
        assert active == naive

    def test_parsec_chip(self):
        results = []
        for kernel in ("active", "naive"):
            chip = Chip(
                NoCConfig(width=4, height=4, kernel=kernel),
                PowerPunchPG(),
                get_profile("bodytrack"),
                instructions_per_core=400,
                seed=3,
                benchmark="bodytrack",
            )
            result = chip.run(max_cycles=500_000)
            results.append(
                (
                    result.execution_time,
                    result.packets,
                    chip.network.stats.as_dict(),
                    chip.network.policy.total_off_cycles(),
                )
            )
        assert results[0] == results[1]

    def test_strict_invariants_clean_on_active_kernel(self):
        net = Network(NoCConfig(kernel="active"), PowerPunchPG())
        net.install_invariants(InvariantChecker(strict=True))
        traffic = SyntheticTraffic(net, "uniform_random", 0.02, seed=11)
        traffic.run(600)
        traffic.drain()
        assert net.invariants.checks_run > 0
        assert not net.invariants.violations


class TestActiveSetCoverageProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.005, max_value=0.08),
        scheme_name=st.sampled_from(sorted(SCHEMES)),
    )
    def test_work_sets_cover_naive_scan(self, seed, rate, scheme_name):
        net = Network(
            NoCConfig(width=4, height=4, kernel="active"), SCHEMES[scheme_name]()
        )
        traffic = SyntheticTraffic(net, "uniform_random", rate, seed=seed)
        policy = net.policy
        scheme_like = getattr(policy, "_active", False)
        for _ in range(150):
            traffic.step()
            net.step()
            for router in net.routers:
                if router._occupied:
                    assert router.router_id in net.active_routers
            for ni in net.interfaces:
                if ni.has_work():
                    assert ni.node in net.active_nis
            if scheme_like:
                for controller in policy.controllers:
                    if controller.state is not PGState.OFF:
                        # Non-OFF controllers are either stepped every
                        # cycle (armed) or parked in the quiescent-skip
                        # state with a scheduled sleep deadline.
                        assert (
                            controller.router_id in policy._armed
                            or controller._quiescent_since is not None
                        )
