"""Cycle-exactness of the active-set and vector kernels.

The active-set kernel (``NoCConfig.kernel == "active"``) and the
structure-of-arrays vector kernel (``kernel == "vector"``, see
``repro.noc.vector``) must be observationally identical replicas of the
naive full-scan kernel (``kernel == "naive"``, the seed
implementation): same stats counter by counter, same controller
accounting, same per-packet timing — for every scheme, under synthetic
and full-system PARSEC traffic.

Three layers of evidence:

* golden equivalence — full :meth:`NetworkStats.as_dict` dumps compared
  between all three kernels for all four schemes (plus the NoRD-like
  baseline, which exercises the vector kernel's fallback path) across
  two seeds, and a PARSEC ``Chip`` run compared end to end;
* a hypothesis property — random ``(scheme, rate, seed)`` triples give
  identical fingerprints across all three kernels, including under
  ``degradation="reroute"`` with router-stall faults (where the vector
  kernel must decline engagement and run on the active fallback);
* a hypothesis property — at every cycle the active kernel's work-sets
  contain every component the naive scan would visit (routers with
  occupied VCs, NIs with work, non-OFF controllers).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import NoRDLike
from repro.core import ConvOptPG, NoPG, PowerPunchPG, PowerPunchSignal
from repro.noc import Network, NoCConfig
from repro.noc.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.noc.invariants import InvariantChecker
from repro.powergate.controller import PGState
from repro.system import Chip, get_profile
from repro.traffic import SyntheticTraffic, measure

KERNELS = ("active", "naive", "vector")

SCHEMES = {
    "NoPG": NoPG,
    "ConvOptPG": ConvOptPG,
    "PowerPunchSignal": PowerPunchSignal,
    "PowerPunchPG": PowerPunchPG,
    "NoRDLike": NoRDLike,
}


def _run_synthetic(scheme_name, kernel, seed, rate=0.02):
    net = Network(NoCConfig(kernel=kernel), SCHEMES[scheme_name]())
    traffic = SyntheticTraffic(net, "uniform_random", rate, seed=seed)
    measure(net, traffic, warmup=200, measurement=800)
    dump = dict(net.stats.as_dict())
    policy = net.policy
    if hasattr(policy, "controllers") and policy.controllers:
        dump["total_off_cycles"] = policy.total_off_cycles()
        dump["total_wake_events"] = policy.total_wake_events()
        dump["currently_off"] = policy.currently_off()
        dump["sleep_events"] = sum(c.sleep_events for c in policy.controllers)
        dump["cancelled_sleeps"] = sum(
            c.cancelled_sleeps for c in policy.controllers
        )
        dump["active_cycles"] = sum(c.active_cycles for c in policy.controllers)
        dump["waking_cycles"] = sum(c.waking_cycles for c in policy.controllers)
    return dump


class TestKernelEquivalence:
    @pytest.mark.parametrize("kernel", ["active", "vector"])
    @pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
    @pytest.mark.parametrize("seed", [7, 23])
    def test_synthetic_uniform_random(self, scheme_name, seed, kernel):
        candidate = _run_synthetic(scheme_name, kernel, seed)
        naive = _run_synthetic(scheme_name, "naive", seed)
        assert candidate == naive

    def test_vector_engine_engages(self):
        # Guard against silently testing the fallback: the whitelisted
        # schemes must actually run on the SoA engine.
        net = Network(NoCConfig(kernel="vector"), PowerPunchPG())
        net.step()
        assert net._engine is not None
        # ...while the NoRD-like baseline (auxiliary transport the
        # engine does not model) must decline engagement.
        net = Network(NoCConfig(kernel="vector"), NoRDLike())
        net.step()
        assert net._engine is None

    def test_parsec_chip(self):
        results = []
        for kernel in KERNELS:
            chip = Chip(
                NoCConfig(width=4, height=4, kernel=kernel),
                PowerPunchPG(),
                get_profile("bodytrack"),
                instructions_per_core=400,
                seed=3,
                benchmark="bodytrack",
            )
            result = chip.run(max_cycles=500_000)
            results.append(
                (
                    result.execution_time,
                    result.packets,
                    chip.network.stats.as_dict(),
                    chip.network.policy.total_off_cycles(),
                )
            )
        assert results[0] == results[1]

    def test_strict_invariants_clean_on_active_kernel(self):
        net = Network(NoCConfig(kernel="active"), PowerPunchPG())
        net.install_invariants(InvariantChecker(strict=True))
        traffic = SyntheticTraffic(net, "uniform_random", 0.02, seed=11)
        traffic.run(600)
        traffic.drain()
        assert net.invariants.checks_run > 0
        assert not net.invariants.violations


class TestMidStreamSleepRegression:
    """A router must not power-gate while an input VC holds a live
    (drained mid-packet) allocation.

    Falsifying example found by the three-kernel fingerprint property:
    near saturation a stream stalls long enough for its next-hop
    router's buffers to drain and its idle timeout to lapse, so the
    router slept between the stream's body flits.  Only head flits
    assert punch/wakeup wires, so the stranded tail could never wake
    the router again and the network deadlocked (``DrainTimeoutError``
    with the remnant of the stream in flight) — identically on all
    three kernels.  ``Router.datapath_empty`` now also requires every
    input-VC allocation to be released (``_live_vcs == 0``), which is
    the hardware-faithful reading of the paper's sleep precondition:
    a mid-wormhole VC's route/ownership state is datapath state.
    """

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_near_saturation_run_drains(self, kernel):
        net = Network(NoCConfig(kernel=kernel), PowerPunchSignal())
        traffic = SyntheticTraffic(
            net, "uniform_random", 0.06027341367988463, seed=5076
        )
        # Deadlocked inside the drain phase before the fix.
        measure(net, traffic, warmup=200, measurement=800)
        assert net.stats.delivered > 0
        assert net.is_drained()


class TestThreeKernelFingerprintProperty:
    """Random workloads give identical fingerprints on all three kernels."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.005, max_value=0.08),
        scheme_name=st.sampled_from(sorted(SCHEMES)),
    )
    def test_fingerprints_match(self, seed, rate, scheme_name):
        dumps = [
            _run_synthetic(scheme_name, kernel, seed, rate) for kernel in KERNELS
        ]
        assert dumps[0] == dumps[1] == dumps[2]

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.005, max_value=0.05),
        dead=st.integers(min_value=0, max_value=15),
        scheme_name=st.sampled_from(["NoPG", "ConvOptPG", "PowerPunchPG"]),
    )
    def test_fingerprints_match_under_reroute_faults(
        self, seed, rate, dead, scheme_name
    ):
        # Fault injection is outside the vector engine's covered
        # configurations: kernel="vector" must decline engagement and
        # run bit-identically on the active fallback.
        dumps = []
        for kernel in KERNELS:
            config = NoCConfig(
                width=4,
                height=4,
                kernel=kernel,
                degradation="reroute",
                dead_router_threshold=50,
            )
            net = Network(config, SCHEMES[scheme_name]())
            net.install_faults(
                FaultInjector(
                    FaultSchedule(
                        [FaultSpec(kind="router_stall", router=dead, start=100)]
                    )
                )
            )
            traffic = SyntheticTraffic(net, "uniform_random", rate, seed=seed)
            traffic.run(400)
            if kernel == "vector":
                assert net._engine is None
            dumps.append(dict(net.stats.as_dict()))
        assert dumps[0] == dumps[1] == dumps[2]


class TestActiveSetCoverageProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.005, max_value=0.08),
        scheme_name=st.sampled_from(sorted(SCHEMES)),
    )
    def test_work_sets_cover_naive_scan(self, seed, rate, scheme_name):
        net = Network(
            NoCConfig(width=4, height=4, kernel="active"), SCHEMES[scheme_name]()
        )
        traffic = SyntheticTraffic(net, "uniform_random", rate, seed=seed)
        policy = net.policy
        scheme_like = getattr(policy, "_active", False)
        for _ in range(150):
            traffic.step()
            net.step()
            for router in net.routers:
                if router._occupied:
                    assert router.router_id in net.active_routers
            for ni in net.interfaces:
                if ni.has_work():
                    assert ni.node in net.active_nis
            if scheme_like:
                for controller in policy.controllers:
                    if controller.state is not PGState.OFF:
                        # Non-OFF controllers are either stepped every
                        # cycle (armed) or parked in the quiescent-skip
                        # state with a scheduled sleep deadline.
                        assert (
                            controller.router_id in policy._armed
                            or controller._quiescent_since is not None
                        )
