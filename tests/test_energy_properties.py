"""Property tests for energy accounting: window additivity."""

import random

import pytest

from repro.core import ConvOptPG, PowerPunchPG
from repro.noc import Network, NoCConfig, VirtualNetwork, control_packet
from repro.power import EnergyModel


def drive(net, rng, cycles, rate=0.03):
    n = net.config.num_nodes
    for _ in range(cycles):
        for node in range(n):
            if rng.random() < rate:
                dst = rng.randrange(n)
                if dst != node:
                    net.inject(
                        control_packet(node, dst, VirtualNetwork(rng.randrange(3)), net.cycle)
                    )
        net.step()


class TestWindowAdditivity:
    @pytest.mark.parametrize("scheme_cls", [ConvOptPG, PowerPunchPG])
    def test_energy_windows_sum_to_total(self, scheme_cls):
        """account(0..T) == account(0..t1) + account(t1..T), for every
        component — no energy is created or lost at window boundaries."""
        rng = random.Random(5)
        net = Network(NoCConfig(width=4, height=4), scheme_cls())
        model = EnergyModel()
        drive(net, rng, 400)
        snap = model.snapshot(net)
        first = model.account(net)
        drive(net, rng, 400)
        second = model.account(net, since=snap)
        total = model.account(net)
        assert total.dynamic == pytest.approx(first.dynamic + second.dynamic)
        assert total.static == pytest.approx(first.static + second.static)
        assert total.overhead == pytest.approx(first.overhead + second.overhead)
        assert total.cycles == first.cycles + second.cycles

    def test_components_nonnegative_always(self):
        rng = random.Random(9)
        net = Network(NoCConfig(width=4, height=4), PowerPunchPG())
        model = EnergyModel()
        prev = model.snapshot(net)
        for _ in range(10):
            drive(net, rng, 50)
            window = model.account(net, since=prev)
            assert window.dynamic >= 0
            assert window.static >= 0
            assert window.overhead >= 0
            prev = model.snapshot(net)

    def test_static_bounded_by_always_on(self):
        """A gated network can never consume more static energy than an
        always-on one over the same window."""
        rng_a, rng_b = random.Random(3), random.Random(3)
        net_pg = Network(NoCConfig(width=4, height=4), ConvOptPG())
        net_on = Network(NoCConfig(width=4, height=4))
        drive(net_pg, rng_a, 600)
        drive(net_on, rng_b, 600)
        model = EnergyModel()
        assert model.account(net_pg).static <= model.account(net_on).static
