"""Tests for VC state and credit bookkeeping."""

import pytest

from repro.noc import Direction, VirtualNetwork, control_packet
from repro.noc.buffers import InputPort, OutputPort, VCState, VirtualChannel
from repro.noc.packet import make_flits


def flit(dest=5):
    packet = control_packet(0, dest, VirtualNetwork.REQUEST, 0)
    return make_flits(packet)[0]


DEPTHS = {0: 1, 1: 1, 2: 1, 3: 1, 4: 3, 5: 3}


class TestVirtualChannel:
    def test_push_pop_fifo(self):
        vc = VirtualChannel(0, 3)
        flits = [flit(), flit(), flit()]
        for i, f in enumerate(flits):
            vc.push(f, cycle=i)
        assert vc.occupancy == 3
        assert vc.front is flits[0]
        assert vc.front_arrival() == 0
        assert vc.pop() is flits[0]
        assert vc.front_arrival() == 1

    def test_overflow_raises(self):
        vc = VirtualChannel(0, 1)
        vc.push(flit(), 0)
        with pytest.raises(RuntimeError):
            vc.push(flit(), 1)

    def test_reset_for_next_packet(self):
        vc = VirtualChannel(0, 3)
        vc.state = VCState.ACTIVE
        vc.route = Direction.XPOS
        vc.out_vc = 2
        vc.reset_for_next_packet()
        assert vc.state is VCState.IDLE
        assert vc.route is None
        assert vc.out_vc is None


class TestInputPort:
    def test_vcs_carry_port_direction(self):
        port = InputPort(Direction.YNEG, DEPTHS)
        assert all(vc.port_direction == Direction.YNEG for vc in port.vcs)

    def test_depths_assigned_per_vc(self):
        port = InputPort(Direction.LOCAL, DEPTHS)
        assert [vc.depth for vc in port.vcs] == [1, 1, 1, 1, 3, 3]

    def test_is_empty(self):
        port = InputPort(Direction.LOCAL, DEPTHS)
        assert port.is_empty()
        port.vcs[4].push(flit(), 0)
        assert not port.is_empty()
        assert port.occupied_vcs() == [port.vcs[4]]


class TestOutputPort:
    def test_initial_credits_match_depths(self):
        port = OutputPort(Direction.XPOS, DEPTHS)
        assert port.credits == [1, 1, 1, 1, 3, 3]

    def test_free_vc_round_robin(self):
        port = OutputPort(Direction.XPOS, DEPTHS)
        assert port.free_vc_in(range(4, 6)) == 4
        port.owner[4] = (Direction.LOCAL, 0)
        assert port.free_vc_in(range(4, 6)) == 5

    def test_no_free_vc(self):
        port = OutputPort(Direction.XPOS, DEPTHS)
        port.owner[4] = (Direction.LOCAL, 0)
        port.owner[5] = (Direction.LOCAL, 1)
        assert port.free_vc_in(range(4, 6)) is None

    def test_all_vcs_idle(self):
        port = OutputPort(Direction.XPOS, DEPTHS)
        assert port.all_vcs_idle()
        port.owner[0] = (Direction.LOCAL, 0)
        assert not port.all_vcs_idle()
