"""Tests for NoCConfig and NetworkStats."""

import pytest

from repro.noc import NoCConfig, VirtualNetwork, control_packet
from repro.noc.stats import NetworkStats


class TestConfig:
    def test_defaults_match_table2(self):
        cfg = NoCConfig()
        assert cfg.width == cfg.height == 8
        assert cfg.router_stages == 3
        assert cfg.vcs_per_vnet == 2
        assert cfg.data_vc_depth == 3
        assert cfg.control_vc_depth == 1
        assert cfg.ni_latency == 3
        assert cfg.num_vcs == 6

    def test_vc_depth_by_vnet(self):
        cfg = NoCConfig()
        assert cfg.vc_depth(VirtualNetwork.RESPONSE) == 3
        assert cfg.vc_depth(VirtualNetwork.REQUEST) == 1
        assert cfg.vc_depth(VirtualNetwork.FORWARD) == 1

    def test_vc_index_mapping(self):
        cfg = NoCConfig()
        assert cfg.vnet_of_vc(0) == VirtualNetwork.REQUEST
        assert cfg.vnet_of_vc(5) == VirtualNetwork.RESPONSE
        assert list(cfg.vcs_of_vnet(VirtualNetwork.FORWARD)) == [2, 3]

    def test_hop_latency(self):
        assert NoCConfig(router_stages=3).hop_latency == 4
        assert NoCConfig(router_stages=4).hop_latency == 5

    def test_invalid_stages_rejected(self):
        with pytest.raises(ValueError):
            NoCConfig(router_stages=5)

    def test_depths_by_vc(self):
        cfg = NoCConfig()
        assert cfg.depths_by_vc() == {0: 1, 1: 1, 2: 1, 3: 1, 4: 3, 5: 3}


class TestStats:
    def make_packet(self, created=0, injected=5, delivered=30, blocked=(), wait=0):
        p = control_packet(0, 7, VirtualNetwork.REQUEST, created)
        p.injected_at = injected
        p.delivered_at = delivered
        p.blocked_routers = set(blocked)
        p.wakeup_wait_cycles = wait
        return p

    def test_record_delivery_accumulates(self):
        stats = NetworkStats()
        stats.record_delivery(self.make_packet(blocked={1, 2}, wait=9), hops=7)
        stats.record_delivery(self.make_packet(delivered=40), hops=7)
        assert stats.delivered == 2
        assert stats.avg_packet_latency == pytest.approx((25 + 35) / 2)
        assert stats.avg_total_latency == pytest.approx((30 + 40) / 2)
        assert stats.avg_blocked_routers == 1.0
        assert stats.avg_wakeup_wait == 4.5
        assert stats.avg_hops == 7

    def test_warmup_exclusion(self):
        stats = NetworkStats(measure_from=100)
        stats.record_delivery(self.make_packet(created=50), hops=3)
        assert stats.delivered == 0
        stats.record_delivery(self.make_packet(created=150), hops=3)
        assert stats.delivered == 1

    def test_sample_recording_opt_in(self):
        stats = NetworkStats(keep_samples=True)
        stats.record_delivery(self.make_packet(), hops=1)
        assert stats.latencies == [25]

    def test_empty_stats_safe(self):
        stats = NetworkStats()
        assert stats.avg_packet_latency == 0.0
        assert stats.avg_blocked_routers == 0.0
        assert stats.throughput(64) == 0.0


class TestStatsRoundTrip:
    """``as_dict``/``from_dict`` carry every counter, both directions.

    Bench fingerprints and campaign payloads persist ``as_dict`` dumps;
    a counter missing from either half of the round-trip would escape
    the kernel-equivalence and trend gates.
    """

    def _populated(self):
        stats = NetworkStats(measure_from=17)
        # Touch every public counter with a distinct value so a dropped
        # or transposed field cannot cancel out.
        for index, name in enumerate(sorted(stats.as_dict()), start=1):
            if name != "measure_from":
                setattr(stats, name, index * 3 + 1)
        return stats

    def test_round_trip_identity(self):
        stats = self._populated()
        dump = stats.as_dict()
        assert NetworkStats.from_dict(dump).as_dict() == dump

    def test_every_as_dict_key_is_a_field(self):
        # from_dict(**dump) only works if as_dict stays a subset of the
        # constructor fields; new counters must be added to both.
        dump = NetworkStats().as_dict()
        rebuilt = NetworkStats.from_dict(dump)
        for key, value in dump.items():
            assert getattr(rebuilt, key) == value

    def test_fault_tolerance_counters_covered(self):
        # The fault-tolerance counters must flow through serialization
        # (and therefore through the bench fingerprint, which is built
        # on as_dict) — a regression here would exempt them from the
        # kernel-equivalence sweeps.
        dump = NetworkStats().as_dict()
        for counter in (
            "wakeup_retries",
            "rerouted_packets",
            "detour_hops",
            "refused_packets",
            "refused_flits",
            "dropped_packets",
            "dropped_flits",
        ):
            assert counter in dump

    def test_unknown_keys_fail_loudly(self):
        dump = NetworkStats().as_dict()
        dump["counter_from_the_future"] = 1
        with pytest.raises(TypeError):
            NetworkStats.from_dict(dump)
