"""Tests for graceful degradation under permanent router faults.

A router whose ``router_stall`` fault window stays continuously open
for ``dead_router_threshold`` cycles is declared permanently dead.
``degradation="fail_fast"`` raises :class:`DegradedNetworkError`
carrying the blast radius; ``degradation="drop"`` purges every packet
whose remaining route crosses a dead router — with full credit and
VC-state restoration, verified here by running the strict invariant
checker and draining the survivors — and accounts each loss as a
:class:`DroppedPacket`.
"""

import pytest

from repro.core import NoPG, PowerPunchPG
from repro.noc import (
    DegradedNetworkError,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    InvariantChecker,
    Network,
    NoCConfig,
    VirtualNetwork,
    control_packet,
)
from repro.traffic import SyntheticTraffic

#: Router 5 sits mid-mesh on the 4->6 XY route of a 4x4 mesh.
DEAD = 5


def build(degradation, *, kernel="active", threshold=50, scheme=None):
    config = NoCConfig(
        width=4,
        height=4,
        kernel=kernel,
        degradation=degradation,
        dead_router_threshold=threshold,
    )
    net = Network(config, scheme if scheme is not None else NoPG())
    net.install_faults(
        FaultInjector(
            FaultSchedule([FaultSpec(kind="router_stall", router=DEAD, start=0)])
        )
    )
    return net


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NoCConfig(degradation="bogus")
        with pytest.raises(ValueError):
            NoCConfig(dead_router_threshold=0)

    def test_defaults_do_not_disturb_cache_identity(self):
        # New fields default to inert values, so pre-existing specs and
        # cache keys (built from non-default items) are unchanged.
        assert NoCConfig().to_items() == ()


class TestDeathDetection:
    def test_threshold_must_elapse(self):
        net = build("fail_fast", threshold=50)
        for _ in range(49):
            net.step()
        assert net.dead_routers == set()

    def test_wildcard_stall_never_declares_death(self):
        injector = FaultInjector(
            FaultSchedule([FaultSpec(kind="router_stall", rate=0.5)])
        )
        assert injector.dead_routers(10_000, 100) == []

    def test_windowed_stall_recovers_before_threshold(self):
        injector = FaultInjector(
            FaultSchedule(
                [FaultSpec(kind="router_stall", router=3, start=0, end=80)]
            )
        )
        assert injector.dead_routers(60, 50) == [3]
        assert injector.dead_routers(200, 50) == []

    def test_none_policy_never_even_checks(self):
        config = NoCConfig(width=4, height=4)  # degradation="none"
        net = Network(config, NoPG())
        net.install_faults(
            FaultInjector(
                FaultSchedule(
                    [FaultSpec(kind="router_stall", router=DEAD, start=0)]
                )
            )
        )
        for _ in range(200):
            net.step()
        assert net.dead_routers == set()


class TestFailFast:
    def test_raises_with_blast_radius(self):
        net = build("fail_fast", threshold=50)
        packet = control_packet(4, 6, VirtualNetwork.REQUEST, 0)
        net.inject(packet)
        with pytest.raises(DegradedNetworkError) as excinfo:
            net.run(200)
        err = excinfo.value
        assert err.dead_routers == (DEAD,)
        assert err.affected_packets == (packet.packet_id,)
        assert err.cycle >= 50
        assert "dead_routers" in str(err)

    def test_unaffected_traffic_not_in_blast_radius(self):
        net = build("fail_fast", threshold=50)
        # Column route 0 -> 4 -> 8 -> 12 never touches router 5.
        packet = control_packet(0, 12, VirtualNetwork.REQUEST, 0)
        net.inject(packet)
        with pytest.raises(DegradedNetworkError) as excinfo:
            net.run(200)
        assert excinfo.value.affected_packets == ()
        assert packet.delivered_at is not None


class TestDropPolicy:
    @pytest.mark.parametrize("kernel", ["active", "naive"])
    def test_purge_accounts_and_network_stays_consistent(self, kernel):
        net = build("drop", kernel=kernel, threshold=50)
        checker = InvariantChecker(strict=True, max_network_age=100_000)
        net.install_invariants(checker)
        packet = control_packet(4, 6, VirtualNetwork.REQUEST, 0)
        net.inject(packet)
        net.run(120)

        assert net.dead_routers == {DEAD}
        stats = net.stats
        assert stats.dropped_packets == 1
        assert stats.dropped_flits == packet.size_flits
        # An in-flight purge is not a refusal: the packet was injected.
        assert stats.refused_packets == 0
        drop = stats.drops[0]
        assert drop.packet_id == packet.packet_id
        assert drop.flits == packet.size_flits
        assert DEAD in drop.dead_routers
        assert packet.delivered_at is None
        # The purge restored credits/ownership: the mesh drains clean
        # under the strict checker instead of wedging.
        net.run_until_drained(500)
        assert checker.flits_dropped == stats.dropped_flits

    def test_drop_at_inject_once_router_is_dead(self):
        net = build("drop", threshold=50)
        net.run(60)
        assert net.dead_routers == {DEAD}
        before = net.stats.dropped_packets
        before_refused = net.stats.refused_packets
        before_injected = net.stats.injected_packets
        doomed = control_packet(4, 6, VirtualNetwork.REQUEST, net.cycle)
        net.inject(doomed)
        assert net.stats.dropped_packets == before + 1
        # The refusal is broken out separately and never counted as an
        # injection, so drops-minus-refusals stays comparable with
        # injected_packets.
        assert net.stats.refused_packets == before_refused + 1
        assert net.stats.refused_flits >= doomed.size_flits
        assert net.stats.injected_packets == before_injected
        assert doomed.delivered_at is None
        # A route that avoids the dead router still delivers.
        survivor = control_packet(0, 12, VirtualNetwork.REQUEST, net.cycle)
        net.inject(survivor)
        net.run_until_drained(500)
        assert survivor.delivered_at is not None
        assert net.stats.dropped_packets == before + 1

    def test_stats_dict_exposes_drop_counters(self):
        net = build("drop", threshold=50)
        net.inject(control_packet(4, 6, VirtualNetwork.REQUEST, 0))
        net.run(120)
        dump = net.stats.as_dict()
        assert dump["dropped_packets"] == 1
        assert dump["dropped_flits"] >= 1
        assert dump["refused_packets"] == 0  # purged in flight, not refused

    @pytest.mark.parametrize("kernel", ["active", "naive"])
    def test_drop_under_load_keeps_strict_invariants_green(self, kernel):
        """Open-loop traffic across a dying router: every purge must
        leave conservation, credits and VC ownership intact (the strict
        checker raises on the first inconsistency)."""
        net = build("drop", kernel=kernel, threshold=60, scheme=PowerPunchPG())
        checker = InvariantChecker(strict=True, max_network_age=100_000)
        net.install_invariants(checker)
        traffic = SyntheticTraffic(net, "uniform_random", 0.05, seed=3)
        traffic.run(600)
        assert net.dead_routers == {DEAD}
        assert net.stats.dropped_packets > 0
        assert checker.checks_run > 0
        # The checker only sees flits that physically entered the mesh;
        # stats also account packets refused at injection time.
        assert 0 < checker.flits_dropped <= net.stats.dropped_flits

    def test_drop_is_kernel_exact(self):
        """The degradation path is part of the cycle-accurate model:
        both kernels must produce identical stats dumps."""
        dumps = []
        for kernel in ("active", "naive"):
            net = build("drop", kernel=kernel, threshold=60, scheme=PowerPunchPG())
            traffic = SyntheticTraffic(net, "uniform_random", 0.05, seed=3)
            traffic.run(600)
            dumps.append((net.cycle, net.stats.as_dict()))
        assert dumps[0] == dumps[1]
