"""Network tests across mesh shapes and corner conditions."""

import random

import pytest

from repro.core import ConvOptPG, PowerPunchPG
from repro.noc import (
    Network,
    NoCConfig,
    VirtualNetwork,
    control_packet,
    data_packet,
)


class TestMeshShapes:
    @pytest.mark.parametrize("width,height", [(2, 2), (4, 2), (3, 5), (16, 16)])
    def test_random_traffic_drains(self, width, height):
        rng = random.Random(width * 100 + height)
        net = Network(NoCConfig(width=width, height=height))
        n = width * height
        injected = 0
        for _ in range(400):
            for node in range(n):
                if rng.random() < 0.03:
                    dst = rng.randrange(n)
                    if dst != node:
                        net.inject(
                            control_packet(
                                node, dst, VirtualNetwork(rng.randrange(3)), net.cycle
                            )
                        )
                        injected += 1
            net.step()
        net.run_until_drained(100_000)
        assert net.stats.delivered == injected

    @pytest.mark.parametrize("width,height", [(4, 2), (2, 4)])
    def test_rectangular_zero_load_latency(self, width, height):
        cfg = NoCConfig(width=width, height=height, router_stages=3)
        net = Network(cfg)
        dst = width * height - 1
        p = control_packet(0, dst, VirtualNetwork.REQUEST, 0)
        net.inject(p)
        net.run_until_drained(1000)
        hops = net.topology.hop_distance(0, dst)
        assert p.network_latency == 1 + hops * 4 + 2

    def test_power_gating_on_16x16(self):
        scheme = PowerPunchPG()
        net = Network(NoCConfig(width=16, height=16), scheme)
        for _ in range(25):
            net.step()
        assert scheme.currently_off() == 256
        p = control_packet(0, 255, VirtualNetwork.REQUEST, net.cycle)
        net.inject(p)
        net.run_until_drained(5000)
        assert p.delivered_at is not None


class TestBackpressure:
    def test_credit_exhaustion_recovers(self):
        """Many packets into one destination exercise credit stalls."""
        net = Network(NoCConfig(width=4, height=4))
        packets = [
            data_packet(src, 5, VirtualNetwork.RESPONSE, 0)
            for src in range(16)
            if src != 5
        ]
        for p in packets:
            net.inject(p)
        net.run_until_drained(20_000)
        assert all(p.delivered_at is not None for p in packets)

    def test_single_vc_vnet_serializes_safely(self):
        cfg = NoCConfig(width=4, height=4, vcs_per_vnet=1)
        net = Network(cfg)
        packets = [control_packet(0, 15, VirtualNetwork.REQUEST, 0) for _ in range(8)]
        for p in packets:
            net.inject(p)
        net.run_until_drained(5000)
        assert all(p.delivered_at is not None for p in packets)

    def test_deep_buffers(self):
        cfg = NoCConfig(width=4, height=4, data_vc_depth=8, control_vc_depth=4)
        net = Network(cfg)
        rng = random.Random(1)
        injected = 0
        for _ in range(600):
            for node in range(16):
                if rng.random() < 0.1:
                    dst = rng.randrange(16)
                    if dst != node:
                        net.inject(
                            data_packet(node, dst, VirtualNetwork.RESPONSE, net.cycle)
                        )
                        injected += 1
            net.step()
        net.run_until_drained(100_000)
        assert net.stats.delivered == injected


class TestPowerGatingUnderBackpressure:
    def test_hotspot_with_gating_delivers_everything(self):
        scheme = ConvOptPG()
        net = Network(NoCConfig(width=4, height=4), scheme)
        rng = random.Random(9)
        injected = 0
        for cycle in range(1500):
            # Bursty: 50 active cycles, 150 idle.
            if cycle % 200 < 50:
                for node in range(16):
                    if rng.random() < 0.15:
                        dst = 10 if rng.random() < 0.5 else rng.randrange(16)
                        if dst != node:
                            net.inject(
                                control_packet(
                                    node, dst, VirtualNetwork(rng.randrange(3)), net.cycle
                                )
                            )
                            injected += 1
            net.step()
        net.run_until_drained(100_000)
        assert net.stats.delivered == injected
        # The idle gaps must actually produce gated-off time.
        assert scheme.total_off_cycles() > 0

    def test_powerpunch_under_saturation(self):
        scheme = PowerPunchPG()
        net = Network(NoCConfig(width=4, height=4), scheme)
        rng = random.Random(4)
        injected = 0
        for _ in range(1200):
            for node in range(16):
                if rng.random() < 0.3:
                    dst = rng.randrange(16)
                    if dst != node:
                        net.inject(
                            control_packet(
                                node, dst, VirtualNetwork(rng.randrange(3)), net.cycle
                            )
                        )
                        injected += 1
            net.step()
        net.run_until_drained(200_000)
        assert net.stats.delivered == injected
