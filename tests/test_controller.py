"""Tests for the power-gating controller FSM."""

import pytest

from repro.powergate import PGState, PowerGateController


def make(wakeup=8, timeout=4):
    return PowerGateController(0, wakeup_latency=wakeup, timeout=timeout)


def idle_step(ctl, cycle):
    ctl.step(cycle, datapath_empty=True, node_wants_router=False)


class TestSleep:
    def test_sleeps_after_timeout_idle_cycles(self):
        ctl = make(timeout=4)
        for c in range(3):
            idle_step(ctl, c)
            assert ctl.state is PGState.ACTIVE
        idle_step(ctl, 3)
        assert ctl.state is PGState.OFF
        assert ctl.sleep_events == 1

    def test_busy_datapath_resets_idle_count(self):
        ctl = make(timeout=4)
        for c in range(3):
            idle_step(ctl, c)
        ctl.step(3, datapath_empty=False, node_wants_router=False)
        for c in range(4, 7):
            idle_step(ctl, c)
            assert ctl.state is PGState.ACTIVE
        idle_step(ctl, 7)
        assert ctl.state is PGState.OFF

    def test_ni_demand_prevents_sleep(self):
        ctl = make(timeout=2)
        for c in range(20):
            ctl.step(c, datapath_empty=True, node_wants_router=True)
        assert ctl.state is PGState.ACTIVE

    def test_wu_signal_prevents_sleep(self):
        ctl = make(timeout=2)
        for c in range(20):
            ctl.request_wakeup(c)
            idle_step(ctl, c)
        assert ctl.state is PGState.ACTIVE

    def test_minimum_timeout_enforced(self):
        # Paper: at least two cycles so in-flight flits land safely.
        with pytest.raises(ValueError):
            make(timeout=1)

    def test_forewarning_window_blocks_sleep(self):
        ctl = make(timeout=2)
        ctl.request_wakeup(0, expectation_window=10)
        for c in range(10):
            idle_step(ctl, c)
            assert ctl.state is PGState.ACTIVE, f"slept at {c}"
        # Window expired at cycle 10; idle count is already large.
        idle_step(ctl, 11)
        assert ctl.state is PGState.OFF

    def test_busy_datapath_clears_stale_forewarning(self):
        ctl = make(timeout=2)
        ctl.request_wakeup(0, expectation_window=100)
        ctl.step(1, datapath_empty=False, node_wants_router=False)
        assert ctl.expect_until == -1
        for c in range(2, 5):
            idle_step(ctl, c)
        assert ctl.state is PGState.OFF


class TestWakeup:
    def sleep_now(self, ctl, start=0):
        for c in range(start, start + ctl.timeout):
            idle_step(ctl, c)
        assert ctl.state is PGState.OFF
        return start + ctl.timeout

    def test_wakeup_takes_wakeup_latency_cycles(self):
        ctl = make(wakeup=8, timeout=4)
        c = self.sleep_now(ctl)
        ctl.request_wakeup(c)
        assert ctl.state is PGState.WAKING
        for cc in range(c, c + 8):
            idle_step(ctl, cc)
            assert not ctl.is_available
        idle_step(ctl, c + 8)
        assert ctl.state is PGState.ACTIVE

    def test_pg_asserted_while_waking(self):
        # Neighbors must see the router unavailable until fully awake.
        ctl = make(wakeup=5)
        c = self.sleep_now(ctl)
        ctl.request_wakeup(c)
        assert not ctl.is_available
        assert ctl.is_waking

    def test_available_by_eta(self):
        ctl = make(wakeup=8)
        c = self.sleep_now(ctl)
        ctl.request_wakeup(c)
        assert not ctl.available_by(c + 7)
        assert ctl.available_by(c + 8)
        assert ctl.available_by(c + 100)

    def test_available_by_when_off_is_false(self):
        ctl = make()
        c = self.sleep_now(ctl)
        assert not ctl.available_by(c + 10_000)

    def test_available_by_when_active_is_true(self):
        ctl = make()
        assert ctl.available_by(0)

    def test_duplicate_wakeup_requests_do_not_extend(self):
        ctl = make(wakeup=8)
        c = self.sleep_now(ctl)
        ctl.request_wakeup(c)
        first_wake_at = ctl.wake_at
        ctl.request_wakeup(c + 3)
        assert ctl.wake_at == first_wake_at
        assert ctl.wake_events == 1

    def test_wake_event_counted_once_per_off_period(self):
        ctl = make(wakeup=2, timeout=2)
        c = self.sleep_now(ctl)
        ctl.request_wakeup(c)
        for cc in range(c, c + 3):
            idle_step(ctl, cc)
        assert ctl.state is PGState.ACTIVE
        assert ctl.wake_events == 1
        assert ctl.sleep_events == 1


class TestAccounting:
    def test_cycle_accounting_sums_to_total(self):
        ctl = make(wakeup=4, timeout=2)
        cycles = 100
        for c in range(cycles):
            if c % 20 == 10:
                ctl.request_wakeup(c)
            idle_step(ctl, c)
        assert ctl.active_cycles + ctl.off_cycles + ctl.waking_cycles == cycles

    def test_off_period_lengths_tracked(self):
        ctl = make(wakeup=2, timeout=2)
        for c in range(2):
            idle_step(ctl, c)
        assert ctl.state is PGState.OFF
        for c in range(2, 12):
            idle_step(ctl, c)
        ctl.request_wakeup(12)
        assert ctl.mean_off_period() == 10

    def test_gated_fraction(self):
        ctl = make(wakeup=2, timeout=2)
        for c in range(10):
            idle_step(ctl, c)
        assert 0.0 < ctl.gated_fraction < 1.0
