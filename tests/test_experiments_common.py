"""Tests for the experiment plumbing (records, tables, runners)."""

import pytest

from repro.campaign import run_synthetic
from repro.experiments.common import (
    CANONICAL_INSTRUCTIONS,
    SCHEME_ORDER,
    RunRecord,
    format_table,
    geomean_ratio,
    load_records,
    make_scheme,
    mean,
    save_records,
)


def record(scheme="No-PG", latency=30.0, static=1.0, overhead=0.0):
    return RunRecord(
        workload="w",
        scheme=scheme,
        execution_time=1000,
        avg_packet_latency=latency,
        avg_total_latency=latency + 3,
        avg_blocked_routers=0.5,
        avg_wakeup_wait=1.0,
        injection_rate=0.01,
        dynamic_energy=0.2,
        static_energy=static,
        overhead_energy=overhead,
        cycles=1000,
    )


class TestRunRecord:
    def test_energy_helpers(self):
        r = record(static=1.0, overhead=0.25)
        assert r.net_static_energy == pytest.approx(1.25)
        assert r.total_energy == pytest.approx(1.45)

    def test_json_roundtrip(self, tmp_path):
        path = str(tmp_path / "records.json")
        records = [record(), record(scheme="ConvOpt-PG", latency=50.0)]
        save_records(records, path)
        loaded = load_records(path)
        assert loaded == records

    def test_json_roundtrip_preserves_derived_fields(self, tmp_path):
        path = str(tmp_path / "records.json")
        original = record(static=2.0, overhead=0.5)
        save_records([original], path)
        (loaded,) = load_records(path)
        assert loaded.net_static_energy == pytest.approx(original.net_static_energy)
        assert loaded.total_energy == pytest.approx(original.total_energy)


class TestSchemeRegistry:
    def test_four_schemes_in_paper_order(self):
        assert SCHEME_ORDER == [
            "No-PG",
            "ConvOpt-PG",
            "PowerPunch-Signal",
            "PowerPunch-PG",
        ]

    def test_make_scheme_passes_kwargs(self):
        scheme = make_scheme("PowerPunch-PG", wakeup_latency=12)
        assert scheme.wakeup_latency == 12

    def test_make_scheme_nopg_plain(self):
        scheme = make_scheme("No-PG")
        assert scheme.name == "No-PG"

    def test_make_scheme_nopg_rejects_kwargs(self):
        with pytest.raises(TypeError, match="No-PG"):
            make_scheme("No-PG", wakeup_latency=12)

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError):
            make_scheme("Magic-PG")

    def test_canonical_instructions_matches_experiments_md(self):
        assert CANONICAL_INSTRUCTIONS == 2000


class TestFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "2.500" in lines[3]

    def test_format_table_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_geomean(self):
        assert geomean_ratio([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean_ratio([]) == 0.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0


class TestRunSynthetic:
    def test_returns_populated_record(self):
        rec = run_synthetic(
            "uniform_random", 0.02, "No-PG", warmup=200, measurement=800
        )
        assert rec.scheme == "No-PG"
        assert rec.avg_packet_latency > 0
        assert rec.injection_rate > 0
        assert rec.static_energy > 0
        assert rec.overhead_energy == 0

    def test_pg_record_has_overhead(self):
        rec = run_synthetic(
            "uniform_random", 0.02, "ConvOpt-PG", warmup=200, measurement=800
        )
        assert rec.overhead_energy > 0
        assert rec.avg_blocked_routers > 0


class TestCsvExport:
    def test_save_csv_roundtrip(self, tmp_path):
        import csv

        from repro.experiments.common import save_csv

        path = str(tmp_path / "out.csv")
        save_csv([record(), record(scheme="ConvOpt-PG")], path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert rows[1]["scheme"] == "ConvOpt-PG"
        assert float(rows[0]["avg_packet_latency"]) == 30.0
        # Derived fields are reconstructible from the persisted columns.
        rebuilt = RunRecord(
            **{
                k: type(getattr(record(), k))(v)
                for k, v in rows[0].items()
            }
        )
        assert rebuilt.net_static_energy == pytest.approx(
            record().net_static_energy
        )
        assert rebuilt.total_energy == pytest.approx(record().total_energy)

    def test_save_csv_empty(self, tmp_path):
        from repro.experiments.common import save_csv

        path = str(tmp_path / "empty.csv")
        save_csv([], path)
        assert open(path).read() == ""
