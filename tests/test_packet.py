"""Tests for messages, packets and flits."""


from repro.noc import VirtualNetwork, control_packet, data_packet
from repro.noc.packet import make_flits, reset_packet_ids


class TestPacketConstruction:
    def test_control_packet_is_single_flit(self):
        p = control_packet(0, 5, VirtualNetwork.REQUEST, 10)
        assert p.size_flits == 1
        assert p.created_at == 10

    def test_data_packet_is_five_flits(self):
        # 64B block on a 128-bit link: 4 payload flits + 1 head.
        p = data_packet(0, 5, VirtualNetwork.RESPONSE, 0)
        assert p.size_flits == 5

    def test_packet_ids_unique_and_monotonic(self):
        reset_packet_ids()
        a = control_packet(0, 1, VirtualNetwork.REQUEST, 0)
        b = control_packet(0, 1, VirtualNetwork.REQUEST, 0)
        assert b.packet_id == a.packet_id + 1

    def test_payload_carried(self):
        token = object()
        p = control_packet(0, 1, VirtualNetwork.FORWARD, 0, payload=token)
        assert p.payload is token


class TestFlits:
    def test_make_flits_marks_head_and_tail(self):
        p = data_packet(0, 1, VirtualNetwork.RESPONSE, 0)
        flits = make_flits(p)
        assert len(flits) == 5
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])

    def test_single_flit_packet_is_head_and_tail(self):
        p = control_packet(0, 1, VirtualNetwork.REQUEST, 0)
        (flit,) = make_flits(p)
        assert flit.is_head and flit.is_tail

    def test_flits_reference_packet(self):
        p = data_packet(2, 3, VirtualNetwork.RESPONSE, 0)
        for f in make_flits(p):
            assert f.packet is p


class TestLatencyProperties:
    def test_latencies_none_until_delivered(self):
        p = control_packet(0, 1, VirtualNetwork.REQUEST, 5)
        assert p.network_latency is None
        assert p.total_latency is None

    def test_latency_computation(self):
        p = control_packet(0, 1, VirtualNetwork.REQUEST, 5)
        p.injected_at = 9
        p.delivered_at = 30
        assert p.network_latency == 21
        assert p.total_latency == 25

    def test_blocking_measurement_defaults(self):
        p = control_packet(0, 1, VirtualNetwork.REQUEST, 0)
        assert p.blocked_routers == set()
        assert p.wakeup_wait_cycles == 0

    def test_blocked_routers_is_a_set(self):
        p = control_packet(0, 1, VirtualNetwork.REQUEST, 0)
        p.blocked_routers.add(4)
        p.blocked_routers.add(4)
        assert len(p.blocked_routers) == 1


class TestVirtualNetworks:
    def test_three_vnets(self):
        assert len(VirtualNetwork) == 3

    def test_vnet_values(self):
        assert int(VirtualNetwork.REQUEST) == 0
        assert int(VirtualNetwork.FORWARD) == 1
        assert int(VirtualNetwork.RESPONSE) == 2
