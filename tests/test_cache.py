"""Tests for the set-associative cache structure."""

import pytest

from repro.system import SetAssociativeCache


def make(size=1024, ways=2, block=64):
    return SetAssociativeCache(size, ways, block)


class TestGeometry:
    def test_l1_geometry(self):
        # 32KB, 2-way, 64B blocks -> 256 sets (paper Table 2).
        cache = make(32 * 1024, 2)
        assert cache.num_sets == 256
        assert cache.capacity_blocks == 512

    def test_l2_bank_geometry(self):
        # 256KB, 16-way -> 256 sets per bank.
        cache = make(256 * 1024, 16)
        assert cache.num_sets == 256
        assert cache.capacity_blocks == 4096

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            make(1000, 3)


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = make()
        assert cache.lookup(5) is None
        cache.insert(5, "line5")
        assert cache.lookup(5) == "line5"
        assert cache.contains(5)

    def test_insert_returns_eviction(self):
        cache = make(256, 2, 64)  # 2 sets, 2 ways
        cache.insert(0, "a")
        cache.insert(2, "b")  # same set (block % 2 == 0)
        assert cache.insert(4, "c") == (0, "a")
        assert not cache.contains(0)

    def test_different_sets_do_not_conflict(self):
        cache = make(256, 2, 64)
        cache.insert(0, "a")
        cache.insert(1, "b")
        cache.insert(2, "c")
        cache.insert(3, "d")
        assert all(cache.contains(b) for b in range(4))

    def test_reinsert_updates_no_eviction(self):
        cache = make(256, 2, 64)
        cache.insert(0, "a")
        cache.insert(2, "b")
        assert cache.insert(0, "a2") is None
        assert cache.lookup(0) == "a2"


class TestLRU:
    def test_lru_order(self):
        cache = make(256, 2, 64)
        cache.insert(0, "a")
        cache.insert(2, "b")
        cache.lookup(0)  # refresh 0; 2 becomes LRU
        assert cache.victim_for(4) == (2, "b")

    def test_lookup_without_touch(self):
        cache = make(256, 2, 64)
        cache.insert(0, "a")
        cache.insert(2, "b")
        cache.lookup(0, touch=False)
        assert cache.victim_for(4) == (0, "a")

    def test_victim_respects_evictable_filter(self):
        cache = make(256, 2, 64)
        cache.insert(0, "a")
        cache.insert(2, "b")
        assert cache.victim_for(4, evictable=lambda b: b != 0) == (2, "b")

    def test_victim_raises_when_all_vetoed(self):
        cache = make(256, 2, 64)
        cache.insert(0, "a")
        cache.insert(2, "b")
        with pytest.raises(RuntimeError):
            cache.victim_for(4, evictable=lambda b: False)

    def test_no_victim_needed_when_room(self):
        cache = make(256, 2, 64)
        cache.insert(0, "a")
        assert cache.victim_for(2) is None

    def test_no_victim_needed_when_present(self):
        cache = make(256, 2, 64)
        cache.insert(0, "a")
        cache.insert(2, "b")
        assert cache.victim_for(0) is None


class TestRemove:
    def test_remove(self):
        cache = make()
        cache.insert(7, "x")
        assert cache.remove(7) == "x"
        assert cache.remove(7) is None
        assert cache.occupancy() == 0
